//! Dynamic membership (§3, Fig. 7): servers crash and join while the
//! system keeps agreeing.
//!
//! ```text
//! cargo run --release --example membership_churn
//! ```
//!
//! Demonstrates both halves of AllConcur's membership story:
//!
//! * **failures** — the failure detector notices the crash, the early
//!   termination mechanism lets the survivors finish the round *without*
//!   the dead server's message, and the protocol tags it out of the
//!   overlay — no leader election, ever;
//! * **joins** — a reconfiguration (computed deterministically by every
//!   member via [`allconcur_core::membership::plan_reconfiguration`])
//!   moves the deployment to a fresh overlay that includes the joiner.

use allconcur::prelude::*;
use allconcur_core::config::FdMode;
use allconcur_core::membership::plan_reconfiguration;
use allconcur_graph::ReliabilityModel;
use allconcur_sim::SimTime;
use bytes::Bytes;

fn payloads(n: usize, round: usize) -> Vec<Bytes> {
    (0..n).map(|i| Bytes::from(format!("r{round}-s{i}"))).collect()
}

fn main() {
    let model = ReliabilityModel::paper_default();
    let n0 = 8usize;
    let overlay = gs_digraph(n0, 3).expect("GS(8,3)");
    println!("initial deployment: {} servers, overlay degree {}", n0, overlay.degree());

    let mut cluster = SimCluster::builder(overlay)
        .network(NetworkModel::ib_verbs())
        .fd_detection_delay(SimTime::from_ms(1))
        .build();

    // Two healthy rounds.
    for round in 0..2 {
        let out = cluster.run_round(&payloads(n0, round)).expect("healthy rounds");
        println!(
            "round {round}: {} messages agreed in {}",
            out.delivered[&0].len(),
            out.agreement_latency()
        );
    }

    // Server 5 crashes mid-operation.
    println!("\n--- server 5 crashes ---");
    cluster.schedule_crash(cluster.clock(), 5);
    let out = cluster.run_round(&payloads(n0, 2)).expect("crash tolerated: f=1 < k=3");
    println!(
        "round 2: survivors agreed on {} messages (server 5 excluded) in {}",
        out.delivered[&0].len(),
        out.agreement_latency()
    );
    assert!(!out.delivered.contains_key(&5));
    assert_eq!(out.delivered[&0].len(), n0 - 1);

    // The survivors now agree (via atomic broadcast — here condensed) to
    // admit two new servers; every member derives the same plan.
    println!("\n--- two servers join ---");
    let members: Vec<u32> = cluster.live_servers();
    let plan = plan_reconfiguration(&members, &[], 2, &model, 6.0, FdMode::Perfect);
    let n1 = plan.config.n();
    println!(
        "reconfiguration: {} survivors + 2 joiners → {} servers, overlay degree {}",
        members.len(),
        n1,
        plan.config.graph.degree()
    );
    let mut cluster = SimCluster::builder((*plan.config.graph).clone())
        .network(NetworkModel::ib_verbs())
        .fd_detection_delay(SimTime::from_ms(1))
        .start_clock(cluster.clock() + SimTime::from_ms(80)) // connection setup
        .build();
    for round in 0..2 {
        let out = cluster.run_round(&payloads(n1, round + 3)).expect("post-join rounds");
        println!(
            "round {}: {} messages agreed in {} (all {} members participating)",
            round + 3,
            out.delivered[&0].len(),
            out.agreement_latency(),
            n1
        );
        assert_eq!(out.delivered.len(), n1);
    }
    println!("\nmembership changes handled without any leader election ✓");
}
