//! Dynamic membership (§3, Fig. 7): servers crash and join while the
//! system keeps agreeing — driven through the typed `Service` API, so
//! the replicated state itself demonstrably survives the churn.
//!
//! ```text
//! cargo run --release --example membership_churn
//! ```
//!
//! Demonstrates both halves of AllConcur's membership story:
//!
//! * **failures** — the failure detector notices the crash, the early
//!   termination mechanism lets the survivors finish the round *without*
//!   the dead server's message, and the protocol tags it out of the
//!   overlay — no leader election, ever;
//! * **joins** — a reconfiguration (computed deterministically by every
//!   member via [`allconcur::core::membership::plan_reconfiguration`])
//!   moves the deployment to a fresh overlay that includes the joiners,
//!   who catch up from a snapshot instead of replaying history.
#![deny(deprecated)]

use allconcur::core::config::FdMode;
use allconcur::core::membership::plan_reconfiguration;
use allconcur::prelude::*;
use allconcur_sim::network::NetworkModel;
use allconcur_sim::SimTime;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn put(key: impl Into<Bytes>, value: impl Into<Bytes>) -> KvCommand {
    KvCommand::Put { key: key.into(), value: value.into() }
}

fn write_epoch(kv: &mut Service<KvStore>, epoch: usize, rounds: usize) {
    for r in 0..rounds {
        for s in kv.live_servers() {
            kv.submit(s, &put(format!("e{epoch}-r{r}-s{s}"), format!("{s}"))).expect("submit");
        }
        kv.sync(TIMEOUT).expect("round agreed");
    }
}

fn main() {
    let model = ReliabilityModel::paper_default();
    let n0 = 8usize;
    let overlay = gs_digraph(n0, 3).expect("GS(8,3)");
    println!("initial deployment: {} servers, overlay degree {}", n0, overlay.degree());

    let cluster = Cluster::sim_with(
        overlay,
        SimOptions {
            network: NetworkModel::ib_verbs(),
            fd_delay: SimTime::from_ms(1),
            ..SimOptions::default()
        },
    );
    let mut kv = Service::new(cluster, &KvStore::default()).expect("service");

    // Two healthy epochs of writes.
    write_epoch(&mut kv, 0, 2);
    println!("epoch 0: 2 rounds agreed by all {n0} servers");

    // Server 5 crashes mid-operation; the survivors keep agreeing
    // without it — no leader election, the FD + early termination do it.
    println!("\n--- server 5 crashes ---");
    kv.crash(5).expect("crash");
    write_epoch(&mut kv, 1, 1);
    let survivors = kv.live_servers();
    println!(
        "epoch 1: {} survivors agreed (server 5 excluded), state intact: e0-r0-s5 = {:?}",
        survivors.len(),
        kv.query_local(0)
            .expect("replica")
            .get_local(b"e0-r0-s5")
            .map(|v| String::from_utf8_lossy(v).into_owned())
    );

    // The survivors now agree to admit two new servers; every member
    // derives the same plan, and the joiners catch up from a snapshot —
    // no history replay.
    println!("\n--- two servers join ---");
    let plan = plan_reconfiguration(&survivors, &[], 2, &model, 6.0, FdMode::Perfect);
    let n1 = plan.config.n();
    println!(
        "reconfiguration: {} survivors + 2 joiners → {} servers, overlay degree {}",
        survivors.len(),
        n1,
        plan.config.graph.degree()
    );
    kv.reconfigure((*plan.config.graph).clone(), TIMEOUT).expect("reconfigure");

    // A joiner (highest new id) already holds the full replicated state.
    let joiner = (n1 - 1) as u32;
    let carried = kv.query_local(joiner).expect("joiner replica");
    assert_eq!(carried.get_local(b"e0-r0-s0"), Some(&b"0"[..]));
    println!(
        "joiner {joiner} caught up via snapshot: {} keys, zero rounds replayed",
        carried.len()
    );

    // The new configuration keeps agreeing, all members participating.
    write_epoch(&mut kv, 2, 2);
    let reference = kv.query_local(0).expect("replica").clone();
    for s in 0..n1 as u32 {
        assert_eq!(kv.query_local(s).expect("replica"), &reference, "server {s} diverged");
    }
    println!(
        "epoch 2: 2 rounds agreed by all {} members ({} keys replicated everywhere)",
        n1,
        reference.len()
    );
    println!("\nmembership changes handled without any leader election ✓");
}
