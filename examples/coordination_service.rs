//! A ZooKeeper-style coordination service over real TCP sockets: a
//! replicated key-value store where every server answers local reads and
//! any server accepts writes — the §1 "coordination services" use case,
//! assembled from the public API end to end.
//!
//! ```text
//! cargo run --release --example coordination_service
//! ```

use allconcur::prelude::*;
use allconcur_core::batch::Batcher;
use bytes::Bytes;
use std::time::Duration;

fn main() {
    const N: usize = 5;
    let overlay =
        allconcur_core::membership::build_overlay(N, &ReliabilityModel::paper_default(), 6.0);
    println!("coordination service: {N} servers over TCP, overlay degree {}", overlay.degree());
    let mut cluster = Cluster::tcp(overlay).expect("local cluster");
    let mut replicas: Vec<Replica<KvStore>> =
        (0..N).map(|_| Replica::new(KvStore::default())).collect();

    // Round 0: different servers register different services.
    let mut round_payloads: Vec<Bytes> = Vec::new();
    for s in 0..N {
        let mut batch = Batcher::new();
        batch.push(KvStore::put_command(
            format!("/services/node-{s}").as_bytes(),
            format!("127.0.0.1:90{s:02}").as_bytes(),
        ));
        if s == 0 {
            batch.push(KvStore::put_command(b"/config/leader-free", b"true"));
        }
        round_payloads.push(batch.take_batch());
    }
    apply_round(&mut cluster, &mut replicas, &round_payloads, 0);

    // Round 1: server 3 updates the config; others submit nothing.
    let mut payloads: Vec<Bytes> = vec![Bytes::new(); N];
    let mut batch = Batcher::new();
    batch.push(KvStore::put_command(b"/config/epoch", b"2"));
    batch.push(KvStore::delete_command(b"/services/node-1"));
    payloads[3] = batch.take_batch();
    apply_round(&mut cluster, &mut replicas, &payloads, 1);

    // Every replica answers local reads identically (≤ 1 round stale).
    for (s, r) in replicas.iter().enumerate() {
        assert_eq!(r.query().get_local(b"/config/epoch"), Some(&b"2"[..]), "server {s}");
        assert_eq!(r.query().get_local(b"/services/node-1"), None, "server {s}");
        assert_eq!(
            r.query().get_local(b"/services/node-4"),
            Some(&b"127.0.0.1:9004"[..]),
            "server {s}"
        );
    }
    println!(
        "all {N} replicas identical after {} commands across 2 rounds ✓",
        replicas[0].applied_commands()
    );
    println!("local read from any server: /config/epoch = 2 (no coordination needed)");
    cluster.shutdown().expect("clean shutdown");
}

fn apply_round(
    cluster: &mut Cluster,
    replicas: &mut [Replica<KvStore>],
    payloads: &[Bytes],
    round: u64,
) {
    let deliveries = cluster
        .run_round(payloads, Duration::from_secs(15))
        .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
    for (s, replica) in replicas.iter_mut().enumerate() {
        let d = &deliveries[&(s as u32)];
        assert_eq!(d.round, round);
        replica.apply_round(round, &d.messages, true);
    }
}
