//! A ZooKeeper-style coordination service over real TCP sockets: a
//! replicated key-value store where every server answers local reads and
//! any server accepts writes — the §1 "coordination services" use case,
//! assembled from the typed `Service` API end to end: no payload bytes,
//! no delivery pumping, no response correlation by hand.
//!
//! ```text
//! cargo run --release --example coordination_service
//! ```
#![deny(deprecated)]

use allconcur::prelude::*;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(15);

fn put(key: impl Into<Bytes>, value: impl Into<Bytes>) -> KvCommand {
    KvCommand::Put { key: key.into(), value: value.into() }
}

fn main() {
    const N: usize = 5;
    let overlay =
        allconcur::core::membership::build_overlay(N, &ReliabilityModel::paper_default(), 6.0);
    println!("coordination service: {N} servers over TCP, overlay degree {}", overlay.degree());
    let cluster = Cluster::tcp(overlay).expect("local cluster");
    let mut kv = Service::new(cluster, &KvStore::default()).expect("service");

    // Wave 1: different servers register different services; server 0
    // also flips a config flag — both commands batch into its round
    // payload automatically.
    let mut registrations = Vec::new();
    for s in 0..N as u32 {
        registrations.push(
            kv.submit(s, &put(format!("/services/node-{s}"), format!("127.0.0.1:90{s:02}")))
                .expect("submit"),
        );
    }
    let flag = kv.submit(0, &put("/config/leader-free", "true")).expect("submit");

    // Wave 2: server 3 updates the config and deregisters node 1.
    let epoch = kv.submit(3, &put("/config/epoch", "2")).expect("submit");
    kv.submit(3, &KvCommand::Delete { key: b"/services/node-1".to_vec().into() }).expect("submit");

    // Redeem the typed responses: each handle resolves with the outcome
    // of exactly its command, in whatever round carried it.
    for handle in &registrations {
        assert_eq!(kv.wait(handle, TIMEOUT).expect("registration"), KvResponse::Ack);
    }
    assert_eq!(kv.wait(&flag, TIMEOUT).expect("flag"), KvResponse::Ack);
    assert_eq!(kv.wait(&epoch, TIMEOUT).expect("epoch"), KvResponse::Ack);
    kv.sync(TIMEOUT).expect("all replicas caught up");

    // Every replica answers local reads identically (≤ 1 round stale).
    for s in 0..N as u32 {
        let state = kv.query_local(s).expect("replica");
        assert_eq!(state.get_local(b"/config/epoch"), Some(&b"2"[..]), "server {s}");
        assert_eq!(state.get_local(b"/services/node-1"), None, "server {s}");
        assert_eq!(state.get_local(b"/services/node-4"), Some(&b"127.0.0.1:9004"[..]));
    }

    // A linearizable read through an arbitrary server: the query rides
    // atomic broadcast and is answered at the agreed point.
    let strong = kv
        .query_linearizable(
            2,
            &KvCommand::Get { key: b"/config/leader-free".to_vec().into() },
            TIMEOUT,
        )
        .expect("linearizable read");
    assert_eq!(strong, KvResponse::Value(Some(b"true".to_vec().into())));

    println!(
        "all {N} replicas identical after {} commands ✓",
        kv.replica(0).expect("replica").applied_commands()
    );
    println!("local read from any server: /config/epoch = 2 (no coordination needed)");
    println!("linearizable read via server 2: /config/leader-free = true (rode a round)");
    kv.shutdown().expect("clean shutdown");
}
