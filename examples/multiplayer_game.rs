//! Multiplayer game state agreement (§1.1): hundreds of players sharing
//! one global, strongly consistent world, on the typed `Service` API.
//!
//! ```text
//! cargo run --release --example multiplayer_game [players]
//! ```
//!
//! One server per player; every 50 ms frame (20 frames/s — the paper's
//! figure for modern games), each server A-broadcasts its player's
//! actions (40-byte updates, ~200 APM). Agreement must finish inside the
//! frame budget; the paper's "epic battles" claim is 512 players at
//! 38 ms. Every server then applies all actions in the agreed order, so
//! the worlds never diverge — and each player's client gets its own
//! agreed position back, typed.
#![deny(deprecated)]

use allconcur::core::membership::build_overlay;
use allconcur::prelude::*;
use allconcur_sim::SimTime;
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A 40-byte action: player position/velocity update (the paper cites
/// Donnybrook's typical update size).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Action {
    player: u32,
    x: f32,
    y: f32,
    dx: f32,
    dy: f32,
    kind: u32,
    _pad: [u32; 4],
}

/// 40-byte wire format mirroring [`Action`] field order.
#[derive(Debug, Clone, Copy, Default)]
struct ActionCodec;

impl Codec for ActionCodec {
    type Item = Action;

    fn encode(&self, a: &Action) -> Bytes {
        let mut b = BytesMut::with_capacity(40);
        b.put_u32_le(a.player);
        b.put_f32_le(a.x);
        b.put_f32_le(a.y);
        b.put_f32_le(a.dx);
        b.put_f32_le(a.dy);
        b.put_u32_le(a.kind);
        for p in a._pad {
            b.put_u32_le(p);
        }
        b.freeze()
    }

    fn decode(&self, c: &Bytes) -> Result<Action, DecodeError> {
        if c.len() != 40 {
            return Err(DecodeError("action must be exactly 40 bytes"));
        }
        let f = |at: usize| f32::from_le_bytes(c[at..at + 4].try_into().expect("sized"));
        let u = |at: usize| u32::from_le_bytes(c[at..at + 4].try_into().expect("sized"));
        Ok(Action {
            player: u(0),
            x: f(4),
            y: f(8),
            dx: f(12),
            dy: f(16),
            kind: u(20),
            _pad: [u(24), u(28), u(32), u(36)],
        })
    }
}

/// World state: player positions, updated deterministically from the
/// agreed action sequence.
#[derive(Debug, Clone, PartialEq)]
struct World {
    positions: Vec<(f32, f32)>,
    applied: u64,
}

impl World {
    fn new(players: usize) -> Self {
        World { positions: vec![(0.0, 0.0); players], applied: 0 }
    }
}

impl StateMachine for World {
    type Command = Action;
    /// The player's agreed position after the action — what the client
    /// renders, identical no matter which server it is connected to.
    type Response = (f32, f32);
    type Codec = ActionCodec;

    fn apply(&mut self, _origin: ServerId, a: Action) -> (f32, f32) {
        let players = self.positions.len();
        let p = &mut self.positions[a.player as usize % players];
        p.0 += a.dx;
        p.1 += a.dy;
        self.applied += 1;
        *p
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + self.positions.len() * 8 + 8);
        buf.put_u32_le(self.positions.len() as u32);
        for &(x, y) in &self.positions {
            buf.put_f32_le(x);
            buf.put_f32_le(y);
        }
        buf.put_u64_le(self.applied);
        buf.freeze()
    }

    fn restore(snapshot: &[u8]) -> Result<Self, DecodeError> {
        let err = DecodeError("world snapshot truncated");
        if snapshot.len() < 4 {
            return Err(err);
        }
        let players = u32::from_le_bytes(snapshot[0..4].try_into().expect("sized")) as usize;
        if snapshot.len() != 4 + players * 8 + 8 {
            return Err(err);
        }
        let positions = (0..players)
            .map(|i| {
                let at = 4 + i * 8;
                (
                    f32::from_le_bytes(snapshot[at..at + 4].try_into().expect("sized")),
                    f32::from_le_bytes(snapshot[at + 4..at + 8].try_into().expect("sized")),
                )
            })
            .collect();
        let tail = 4 + players * 8;
        Ok(World {
            positions,
            applied: u64::from_le_bytes(snapshot[tail..tail + 8].try_into().expect("sized")),
        })
    }
}

fn main() {
    let players: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    const FRAME_MS: f64 = 50.0; // 20 frames per second
    const FRAMES: usize = 10;

    let overlay = build_overlay(players, &ReliabilityModel::paper_default(), 6.0);
    println!(
        "{players} players, overlay degree {} (6-nines), frame budget {FRAME_MS} ms",
        overlay.degree()
    );
    let mut game = Service::new(Cluster::sim(overlay), &World::new(players)).expect("service");
    let mut rng = StdRng::seed_from_u64(99);

    let clock = |game: &mut Service<World>| -> SimTime {
        game.cluster_mut().sim_transport_mut().expect("sim backend").cluster().clock()
    };

    let mut worst_ms = 0.0f64;
    for frame in 0..FRAMES {
        // ~200 APM → one action roughly every 18 frames; emulate by
        // giving each player an action with probability 1/18 per frame.
        let mut handles = Vec::new();
        for p in 0..players {
            if rng.gen_ratio(1, 18) {
                let action = Action {
                    player: p as u32,
                    x: 0.0,
                    y: 0.0,
                    dx: rng.gen_range(-1.0..1.0),
                    dy: rng.gen_range(-1.0..1.0),
                    kind: 1,
                    _pad: [0; 4],
                };
                handles.push(game.submit(p as u32, &action).expect("submit"));
            }
        }
        // Agreement latency in *simulated* time: how long the frame's
        // round took every server to deliver and apply.
        let before = clock(&mut game);
        game.sync(TIMEOUT).expect("frame agreed");
        let ms = (clock(&mut game) - before).as_ms_f64();
        for handle in &handles {
            let (x, y) = game.wait(handle, TIMEOUT).expect("agreed position");
            assert!(x.is_finite() && y.is_finite());
        }
        if !handles.is_empty() {
            worst_ms = worst_ms.max(ms);
        }
        if frame < 3 {
            println!("frame {frame}: {} actions agreed in {:.2} ms", handles.len(), ms);
        }
    }

    let reference = game.query_local(0).expect("replica").clone();
    for s in 0..players as u32 {
        assert_eq!(
            game.query_local(s).expect("replica"),
            &reference,
            "world {s} diverged — consistency broken"
        );
    }
    println!(
        "{FRAMES} frames, worst agreement latency {:.2} ms — {}",
        worst_ms,
        if worst_ms < FRAME_MS {
            "inside the 50 ms frame budget ✓ (epic battle viable)"
        } else {
            "OVER the frame budget ✗"
        }
    );
    println!("all {players} worlds identical after {} applied actions ✓", reference.applied);
}
