//! Multiplayer game state agreement (§1.1): hundreds of players sharing
//! one global, strongly consistent world.
//!
//! ```text
//! cargo run --release --example multiplayer_game [players]
//! ```
//!
//! One server per player; every 50 ms frame (20 frames/s — the paper's
//! figure for modern games), each server A-broadcasts its player's
//! actions (40-byte updates, ~200 APM). Agreement must finish inside the
//! frame budget; the paper's "epic battles" claim is 512 players at
//! 38 ms. Every server then applies all actions in the agreed order, so
//! the worlds never diverge — no area-of-interest filtering needed.

use allconcur::prelude::*;
use allconcur_core::membership::build_overlay;
use allconcur_graph::ReliabilityModel;
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 40-byte action: player position/velocity update (the paper cites
/// Donnybrook's typical update size).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Action {
    player: u32,
    x: f32,
    y: f32,
    dx: f32,
    dy: f32,
    kind: u32,
    _pad: [u32; 4],
}

fn encode(a: &Action) -> Bytes {
    let mut b = BytesMut::with_capacity(40);
    b.put_u32_le(a.player);
    b.put_f32_le(a.x);
    b.put_f32_le(a.y);
    b.put_f32_le(a.dx);
    b.put_f32_le(a.dy);
    b.put_u32_le(a.kind);
    for p in a._pad {
        b.put_u32_le(p);
    }
    b.freeze()
}

/// World state: player positions, updated deterministically from the
/// agreed action sequence.
#[derive(Debug, Clone, PartialEq)]
struct World {
    positions: Vec<(f32, f32)>,
    applied: u64,
}

impl World {
    fn new(players: usize) -> Self {
        World { positions: vec![(0.0, 0.0); players], applied: 0 }
    }
    fn apply(&mut self, payload: &[u8]) {
        // Each payload is a concatenation of 40-byte actions.
        let players = self.positions.len();
        for chunk in payload.chunks_exact(40) {
            let player = u32::from_le_bytes(chunk[0..4].try_into().expect("sized")) as usize;
            let dx = f32::from_le_bytes(chunk[12..16].try_into().expect("sized"));
            let dy = f32::from_le_bytes(chunk[16..20].try_into().expect("sized"));
            let p = &mut self.positions[player % players];
            p.0 += dx;
            p.1 += dy;
            self.applied += 1;
        }
    }
}

fn main() {
    let players: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    const FRAME_MS: f64 = 50.0; // 20 frames per second
    const FRAMES: usize = 10;

    let overlay = build_overlay(players, &ReliabilityModel::paper_default(), 6.0);
    println!(
        "{players} players, overlay degree {} (6-nines), frame budget {FRAME_MS} ms",
        overlay.degree()
    );
    let mut cluster = SimCluster::builder(overlay).network(NetworkModel::tcp_cluster()).build();
    let mut worlds: Vec<World> = vec![World::new(players); players];
    let mut rng = StdRng::seed_from_u64(99);

    let mut worst_ms = 0.0f64;
    for frame in 0..FRAMES {
        // ~200 APM → one action roughly every 18 frames; emulate by
        // giving each player an action with probability 1/18 per frame.
        let payloads: Vec<Bytes> = (0..players)
            .map(|p| {
                if rng.gen_ratio(1, 18) {
                    encode(&Action {
                        player: p as u32,
                        x: 0.0,
                        y: 0.0,
                        dx: rng.gen_range(-1.0..1.0),
                        dy: rng.gen_range(-1.0..1.0),
                        kind: 1,
                        _pad: [0; 4],
                    })
                } else {
                    Bytes::new() // nothing this frame — empty message
                }
            })
            .collect();
        let outcome = cluster.run_round(&payloads).expect("failure-free frames");
        let ms = outcome.agreement_latency().as_ms_f64();
        worst_ms = worst_ms.max(ms);
        for (server, world) in worlds.iter_mut().enumerate() {
            for (_, payload) in &outcome.delivered[&(server as u32)] {
                world.apply(payload);
            }
        }
        if frame < 3 {
            println!("frame {frame}: agreed in {:.2} ms", ms);
        }
    }

    for (i, w) in worlds.iter().enumerate() {
        assert_eq!(w, &worlds[0], "world {i} diverged — consistency broken");
    }
    println!(
        "{FRAMES} frames, worst agreement latency {:.2} ms — {}",
        worst_ms,
        if worst_ms < FRAME_MS {
            "inside the 50 ms frame budget ✓ (epic battle viable)"
        } else {
            "OVER the frame budget ✗"
        }
    );
    println!("all {players} worlds identical after {} applied actions ✓", worlds[0].applied);
}
