//! Quickstart: agreement among 8 servers, both simulated (LogP) and over
//! real TCP sockets on loopback — the *same* driving code for both,
//! through the unified `Cluster` facade.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The overlay is GS(8,3) — the paper's Fig. 1b example: degree 3,
//! diameter 2, vertex-connectivity 3, so the deployment survives any two
//! simultaneous crashes.
#![deny(deprecated)]

use allconcur::prelude::*;
use bytes::Bytes;
use std::time::Duration;

/// One agreement round over whichever backend `cluster` wraps.
fn demo_round(mut cluster: Cluster, payloads: &[Bytes]) -> Delivery {
    let round = cluster
        .run_round(payloads, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{} round failed: {e}", cluster.backend()));
    let reference = round[&0].clone();
    for (server, delivery) in &round {
        assert_eq!(
            delivery.messages, reference.messages,
            "total order violated at server {server}"
        );
    }
    println!(
        "[{}] round {}: all {} servers delivered the same {} messages",
        cluster.backend(),
        reference.round,
        round.len(),
        reference.messages.len(),
    );
    cluster.shutdown().expect("clean shutdown");
    reference
}

fn main() {
    let overlay = gs_digraph(8, 3).expect("GS(8,3) is a valid parameterisation");
    println!("overlay: GS(8,3) — degree {}, diameter {:?}", overlay.degree(), overlay.diameter());
    let payloads: Vec<Bytes> =
        (0..8u8).map(|i| Bytes::from(format!("update-from-server-{i}"))).collect();

    // ---- 1. Simulated deployment (the paper's IBV LogP profile) --------
    let sim = Cluster::sim_with(
        overlay.clone(),
        SimOptions { network: NetworkModel::ib_verbs(), ..SimOptions::default() },
    );
    let simulated = demo_round(sim, &payloads);
    for (origin, payload) in &simulated.messages {
        println!("  [{origin}] {}", String::from_utf8_lossy(payload));
    }

    // ---- 2. The same protocol over real TCP sockets ---------------------
    println!("\nnow over real TCP on 127.0.0.1 ...");
    let tcp = Cluster::tcp(overlay).expect("loopback cluster");
    let real = demo_round(tcp, &payloads);

    // The paper's claim, as an assertion: simulation and deployment run
    // the same algorithm, so they agree byte-for-byte.
    assert_eq!(simulated.messages, real.messages, "sim and TCP agree");
    println!("\nsimulated and TCP delivery sequences are byte-identical ✓");
}
