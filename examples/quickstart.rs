//! Quickstart: agreement among 8 servers, both simulated (LogP) and over
//! real TCP sockets on loopback.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The overlay is GS(8,3) — the paper's Fig. 1b example: degree 3,
//! diameter 2, vertex-connectivity 3, so the deployment survives any two
//! simultaneous crashes.

use allconcur::net::runtime::RuntimeOptions;
use allconcur::net::LocalCluster;
use allconcur::prelude::*;
use bytes::Bytes;
use std::time::Duration;

fn main() {
    let overlay = gs_digraph(8, 3).expect("GS(8,3) is a valid parameterisation");
    println!("overlay: GS(8,3) — degree {}, diameter {:?}", overlay.degree(), overlay.diameter());

    // ---- 1. Simulated deployment (the paper's IBV LogP profile) --------
    let mut sim = SimCluster::builder(overlay.clone())
        .network(NetworkModel::ib_verbs())
        .build();
    let payloads: Vec<Bytes> =
        (0..8u8).map(|i| Bytes::from(format!("update-from-server-{i}"))).collect();
    let outcome = sim.run_round(&payloads).expect("failure-free round");
    println!("\nsimulated round 0 agreed in {}", outcome.agreement_latency());
    let reference = &outcome.delivered[&0];
    for (server, delivered) in &outcome.delivered {
        assert_eq!(delivered, reference, "total order violated at server {server}");
    }
    println!("all 8 servers delivered the same {} messages, in the same order:", reference.len());
    for (origin, payload) in reference {
        println!("  [{origin}] {}", String::from_utf8_lossy(payload));
    }

    // ---- 2. The same protocol over real TCP sockets ---------------------
    println!("\nnow over real TCP on 127.0.0.1 ...");
    let cluster =
        LocalCluster::spawn(overlay, RuntimeOptions::default()).expect("loopback cluster");
    let deliveries = cluster.run_round(&payloads, Duration::from_secs(10));
    let first = deliveries[0].as_ref().expect("server 0 delivered");
    for (i, d) in deliveries.iter().enumerate() {
        let d = d.as_ref().unwrap_or_else(|| panic!("server {i} timed out"));
        assert_eq!(d.messages, first.messages, "total order violated at server {i}");
    }
    println!("TCP round {} delivered {} messages on every server ✓", first.round, first.messages.len());
    cluster.shutdown();
}
