//! Distributed exchange (§1.1): a fair, geographically distributable
//! order book.
//!
//! ```text
//! cargo run --release --example distributed_exchange
//! ```
//!
//! Fairness is AllConcur's selling point here: with no leader, every
//! server is equivalent ("server-transitivity"), so clients connecting to
//! *any* server with equal latency get equal treatment — no co-location
//! arms race around a central exchange host. Orders from all servers are
//! totally ordered by atomic broadcast and matched deterministically, so
//! all books stay identical.

use allconcur::prelude::*;
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A 40-byte limit order (the paper's §1.1 client-request size).
#[derive(Debug, Clone, Copy)]
struct Order {
    id: u64,
    price_cents: u32,
    quantity: u32,
    is_buy: bool,
}

fn encode(orders: &[Order]) -> Bytes {
    let mut b = BytesMut::with_capacity(orders.len() * 40);
    for o in orders {
        b.put_u64_le(o.id);
        b.put_u32_le(o.price_cents);
        b.put_u32_le(o.quantity);
        b.put_u8(u8::from(o.is_buy));
        b.put_bytes(0, 23); // pad to 40 bytes
    }
    b.freeze()
}

fn decode(payload: &[u8]) -> Vec<Order> {
    payload
        .chunks_exact(40)
        .map(|c| Order {
            id: u64::from_le_bytes(c[0..8].try_into().expect("sized")),
            price_cents: u32::from_le_bytes(c[8..12].try_into().expect("sized")),
            quantity: u32::from_le_bytes(c[12..16].try_into().expect("sized")),
            is_buy: c[16] != 0,
        })
        .collect()
}

/// A price-time-priority matching engine. Deterministic given the order
/// stream, so identical on every server.
#[derive(Debug, Clone, PartialEq, Default)]
struct OrderBook {
    bids: BTreeMap<u32, Vec<(u64, u32)>>, // price → [(order id, qty)]
    asks: BTreeMap<u32, Vec<(u64, u32)>>,
    trades: u64,
    volume: u64,
}

impl OrderBook {
    fn submit(&mut self, o: Order) {
        let mut remaining = o.quantity;
        if o.is_buy {
            // Match against asks from the lowest price up.
            while remaining > 0 {
                let Some((&price, _)) = self.asks.iter().next() else { break };
                if price > o.price_cents {
                    break;
                }
                let queue = self.asks.get_mut(&price).expect("present");
                while remaining > 0 && !queue.is_empty() {
                    let (maker, qty) = &mut queue[0];
                    let fill = remaining.min(*qty);
                    remaining -= fill;
                    *qty -= fill;
                    self.trades += 1;
                    self.volume += fill as u64;
                    let _ = maker;
                    if *qty == 0 {
                        queue.remove(0);
                    }
                }
                if queue.is_empty() {
                    self.asks.remove(&price);
                }
            }
            if remaining > 0 {
                self.bids.entry(o.price_cents).or_default().push((o.id, remaining));
            }
        } else {
            while remaining > 0 {
                let Some((&price, _)) = self.bids.iter().next_back() else { break };
                if price < o.price_cents {
                    break;
                }
                let queue = self.bids.get_mut(&price).expect("present");
                while remaining > 0 && !queue.is_empty() {
                    let (_, qty) = &mut queue[0];
                    let fill = remaining.min(*qty);
                    remaining -= fill;
                    *qty -= fill;
                    self.trades += 1;
                    self.volume += fill as u64;
                    if *qty == 0 {
                        queue.remove(0);
                    }
                }
                if queue.is_empty() {
                    self.bids.remove(&price);
                }
            }
            if remaining > 0 {
                self.asks.entry(o.price_cents).or_default().push((o.id, remaining));
            }
        }
    }
}

fn main() {
    const N: usize = 8;
    const ROUNDS: usize = 25;
    let overlay = gs_digraph(N, 3).expect("GS(8,3)");
    let mut cluster = SimCluster::builder(overlay).network(NetworkModel::tcp_cluster()).build();
    let mut books: Vec<OrderBook> = vec![OrderBook::default(); N];
    let mut rng = StdRng::seed_from_u64(7);
    let mut next_id = 0u64;
    let mut latencies = Vec::new();

    for _ in 0..ROUNDS {
        let payloads: Vec<Bytes> = (0..N)
            .map(|server| {
                let orders: Vec<Order> = (0..rng.gen_range(1..6))
                    .map(|_| {
                        next_id += 1;
                        Order {
                            id: (next_id << 8) | server as u64,
                            price_cents: 10_000 + rng.gen_range(0u32..200),
                            quantity: rng.gen_range(1..100),
                            is_buy: rng.gen_bool(0.5),
                        }
                    })
                    .collect();
                encode(&orders)
            })
            .collect();
        let outcome = cluster.run_round(&payloads).expect("failure-free trading");
        latencies.push(outcome.agreement_latency().as_us_f64());
        for (server, book) in books.iter_mut().enumerate() {
            for (_, payload) in &outcome.delivered[&(server as u32)] {
                for order in decode(payload) {
                    book.submit(order);
                }
            }
        }
    }

    for (i, b) in books.iter().enumerate() {
        assert_eq!(b, &books[0], "order book {i} diverged — fairness broken");
    }
    let median = allconcur::sim::stats::median(&latencies);
    println!("{N} exchange servers, {ROUNDS} rounds of 40-byte orders");
    println!("median agreement latency: {median:.1} µs");
    println!(
        "books identical everywhere ✓ — {} trades, {} shares matched",
        books[0].trades, books[0].volume
    );
}
