//! Distributed exchange (§1.1): a fair, geographically distributable
//! order book, on the typed `Service` API.
//!
//! ```text
//! cargo run --release --example distributed_exchange
//! ```
//!
//! Fairness is AllConcur's selling point here: with no leader, every
//! server is equivalent ("server-transitivity"), so clients connecting to
//! *any* server with equal latency get equal treatment — no co-location
//! arms race around a central exchange host. Orders from all servers are
//! totally ordered by atomic broadcast and matched deterministically, so
//! all books stay identical — and each submitting client receives a
//! typed execution report for exactly its order.
#![deny(deprecated)]

use allconcur::prelude::*;
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A 40-byte limit order (the paper's §1.1 client-request size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Order {
    id: u64,
    price_cents: u32,
    quantity: u32,
    is_buy: bool,
}

/// What the submitting client learns about its own order, typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExecutionReport {
    /// Fills executed against resting orders.
    trades: u32,
    /// Quantity matched immediately.
    filled: u32,
    /// Quantity left resting on the book.
    resting: u32,
}

/// 40-byte wire format: id, price, quantity, side, zero padding.
#[derive(Debug, Clone, Copy, Default)]
struct OrderCodec;

impl Codec for OrderCodec {
    type Item = Order;

    fn encode(&self, o: &Order) -> Bytes {
        let mut b = BytesMut::with_capacity(40);
        b.put_u64_le(o.id);
        b.put_u32_le(o.price_cents);
        b.put_u32_le(o.quantity);
        b.put_u8(u8::from(o.is_buy));
        b.put_bytes(0, 23); // pad to 40 bytes
        b.freeze()
    }

    fn decode(&self, c: &Bytes) -> Result<Order, DecodeError> {
        if c.len() != 40 {
            return Err(DecodeError("order must be exactly 40 bytes"));
        }
        Ok(Order {
            id: u64::from_le_bytes(c[0..8].try_into().expect("sized")),
            price_cents: u32::from_le_bytes(c[8..12].try_into().expect("sized")),
            quantity: u32::from_le_bytes(c[12..16].try_into().expect("sized")),
            is_buy: c[16] != 0,
        })
    }
}

/// A price-time-priority matching engine. Deterministic given the order
/// stream, so identical on every server.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct OrderBook {
    bids: BTreeMap<u32, Vec<(u64, u32)>>, // price → [(order id, qty)]
    asks: BTreeMap<u32, Vec<(u64, u32)>>,
    trades: u64,
    volume: u64,
}

impl OrderBook {
    /// Match `remaining` against one side of the book; returns
    /// (trades, filled) executed.
    fn match_against(
        book: &mut BTreeMap<u32, Vec<(u64, u32)>>,
        remaining: &mut u32,
        crosses: impl Fn(u32) -> bool,
        best_is_max: bool,
    ) -> (u32, u32) {
        let mut trades = 0u32;
        let mut filled = 0u32;
        while *remaining > 0 {
            let best = if best_is_max {
                book.iter().next_back().map(|(&p, _)| p)
            } else {
                book.iter().next().map(|(&p, _)| p)
            };
            let Some(price) = best else { break };
            if !crosses(price) {
                break;
            }
            let queue = book.get_mut(&price).expect("present");
            while *remaining > 0 && !queue.is_empty() {
                let (_, qty) = &mut queue[0];
                let fill = (*remaining).min(*qty);
                *remaining -= fill;
                *qty -= fill;
                trades += 1;
                filled += fill;
                if *qty == 0 {
                    queue.remove(0);
                }
            }
            if queue.is_empty() {
                book.remove(&price);
            }
        }
        (trades, filled)
    }
}

impl StateMachine for OrderBook {
    type Command = Order;
    type Response = ExecutionReport;
    type Codec = OrderCodec;

    fn apply(&mut self, _origin: ServerId, o: Order) -> ExecutionReport {
        let mut remaining = o.quantity;
        let (trades, filled) = if o.is_buy {
            Self::match_against(&mut self.asks, &mut remaining, |p| p <= o.price_cents, false)
        } else {
            Self::match_against(&mut self.bids, &mut remaining, |p| p >= o.price_cents, true)
        };
        self.trades += trades as u64;
        self.volume += filled as u64;
        if remaining > 0 {
            let side = if o.is_buy { &mut self.bids } else { &mut self.asks };
            side.entry(o.price_cents).or_default().push((o.id, remaining));
        }
        ExecutionReport { trades, filled, resting: remaining }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        for side in [&self.bids, &self.asks] {
            buf.put_u32_le(side.len() as u32);
            for (&price, queue) in side {
                buf.put_u32_le(price);
                buf.put_u32_le(queue.len() as u32);
                for &(id, qty) in queue {
                    buf.put_u64_le(id);
                    buf.put_u32_le(qty);
                }
            }
        }
        buf.put_u64_le(self.trades);
        buf.put_u64_le(self.volume);
        buf.freeze()
    }

    fn restore(snapshot: &[u8]) -> Result<Self, DecodeError> {
        let err = DecodeError("order book snapshot truncated");
        let mut at = 0usize;
        let read_u32 = |at: &mut usize| -> Result<u32, DecodeError> {
            let Some(c) = snapshot.get(*at..*at + 4) else { return Err(err) };
            *at += 4;
            Ok(u32::from_le_bytes(c.try_into().expect("sized")))
        };
        let read_side = |at: &mut usize| -> Result<BTreeMap<u32, Vec<(u64, u32)>>, DecodeError> {
            let mut side = BTreeMap::new();
            for _ in 0..read_u32(at)? {
                let price = read_u32(at)?;
                let depth = read_u32(at)?;
                let mut queue = Vec::with_capacity(depth as usize);
                for _ in 0..depth {
                    let Some(c) = snapshot.get(*at..*at + 8) else { return Err(err) };
                    let id = u64::from_le_bytes(c.try_into().expect("sized"));
                    *at += 8;
                    queue.push((id, read_u32(at)?));
                }
                side.insert(price, queue);
            }
            Ok(side)
        };
        let bids = read_side(&mut at)?;
        let asks = read_side(&mut at)?;
        let Some(c) = snapshot.get(at..at + 16) else { return Err(err) };
        Ok(OrderBook {
            bids,
            asks,
            trades: u64::from_le_bytes(c[0..8].try_into().expect("sized")),
            volume: u64::from_le_bytes(c[8..16].try_into().expect("sized")),
        })
    }
}

fn main() {
    const N: usize = 8;
    const ROUNDS: usize = 25;
    let overlay = gs_digraph(N, 3).expect("GS(8,3)");
    let mut exchange = Service::new(Cluster::sim(overlay), &OrderBook::default()).expect("service");
    let mut rng = StdRng::seed_from_u64(7);
    let mut next_id = 0u64;
    let mut immediate_fills = 0u64;
    let mut rested = 0u64;

    for _ in 0..ROUNDS {
        let mut handles = Vec::new();
        for server in 0..N as u32 {
            for _ in 0..rng.gen_range(1..6) {
                next_id += 1;
                let order = Order {
                    id: (next_id << 8) | server as u64,
                    price_cents: 10_000 + rng.gen_range(0u32..200),
                    quantity: rng.gen_range(1..100),
                    is_buy: rng.gen_bool(0.5),
                };
                handles.push(exchange.submit(server, &order).expect("submit"));
            }
        }
        for handle in handles {
            let report = exchange.wait(&handle, TIMEOUT).expect("execution report");
            immediate_fills += report.filled as u64;
            if report.resting > 0 {
                rested += 1;
            }
        }
    }
    exchange.sync(TIMEOUT).expect("books caught up");

    let reference = exchange.query_local(0).expect("replica").clone();
    for s in 0..N as u32 {
        assert_eq!(
            exchange.query_local(s).expect("replica"),
            &reference,
            "order book {s} diverged — fairness broken"
        );
    }
    assert_eq!(reference.volume, immediate_fills, "typed reports match the replicated tape");
    println!("{N} exchange servers, {ROUNDS} rounds of 40-byte orders");
    println!(
        "books identical everywhere ✓ — {} trades, {} shares matched, {} orders resting",
        reference.trades, reference.volume, rested
    );
}
