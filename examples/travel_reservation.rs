//! Travel reservation system (§1.1): strongly consistent bookings with
//! locally answered queries.
//!
//! ```text
//! cargo run --release --example travel_reservation
//! ```
//!
//! The scenario: clients issue many *queries* (seat availability) per
//! *update* (booking). Queries are answered from each server's local
//! replica — AllConcur guarantees a server's view "cannot fall behind
//! more than one round" (§1) — while updates go through atomic broadcast
//! so that two clients can never book the last seat twice, no matter
//! which server they talk to.

use allconcur::prelude::*;
use allconcur::sim::harness::SimCluster as Cluster;
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A booking request: flight id + seats wanted, issued via some server.
#[derive(Debug, Clone, Copy)]
struct Booking {
    flight: u16,
    seats: u16,
}

fn encode(bookings: &[Booking]) -> Bytes {
    let mut buf = BytesMut::with_capacity(bookings.len() * 4);
    for b in bookings {
        buf.put_u16_le(b.flight);
        buf.put_u16_le(b.seats);
    }
    buf.freeze()
}

fn decode(mut payload: &[u8]) -> Vec<Booking> {
    let mut out = Vec::new();
    while payload.len() >= 4 {
        let flight = u16::from_le_bytes([payload[0], payload[1]]);
        let seats = u16::from_le_bytes([payload[2], payload[3]]);
        out.push(Booking { flight, seats });
        payload = &payload[4..];
    }
    out
}

/// The replicated state: seats left per flight. Deterministic updates in
/// delivery order keep every replica identical.
#[derive(Debug, Clone, PartialEq)]
struct Inventory {
    seats_left: BTreeMap<u16, u32>,
    accepted: u64,
    rejected: u64,
}

impl Inventory {
    fn new(flights: u16, capacity: u32) -> Self {
        Inventory {
            seats_left: (0..flights).map(|f| (f, capacity)).collect(),
            accepted: 0,
            rejected: 0,
        }
    }

    fn apply(&mut self, b: Booking) {
        let left = self.seats_left.get_mut(&b.flight).expect("known flight");
        if *left >= b.seats as u32 {
            *left -= b.seats as u32;
            self.accepted += 1;
        } else {
            self.rejected += 1; // sold out: consistently rejected everywhere
        }
    }

    /// A locally answered query — no coordination.
    fn query(&self, flight: u16) -> u32 {
        self.seats_left[&flight]
    }
}

fn main() {
    const N: usize = 8;
    const FLIGHTS: u16 = 4;
    const CAPACITY: u32 = 120;
    const ROUNDS: usize = 20;

    let overlay = gs_digraph(N, 3).expect("GS(8,3)");
    let mut cluster = Cluster::builder(overlay).network(NetworkModel::ib_verbs()).build();
    let mut replicas: Vec<Inventory> = vec![Inventory::new(FLIGHTS, CAPACITY); N];
    let mut rng = StdRng::seed_from_u64(2017);

    let mut total_queries = 0u64;
    for round in 0..ROUNDS {
        // Each server first serves a burst of local queries (the
        // read-heavy part), then batches the bookings it received.
        let mut payloads = Vec::with_capacity(N);
        for replica in replicas.iter() {
            let queries: u64 = rng.gen_range(50..200);
            total_queries += queries;
            let _availability: Vec<u32> = (0..FLIGHTS).map(|f| replica.query(f)).collect(); // local, stale ≤ 1 round
            let bookings: Vec<Booking> = (0..rng.gen_range(1..5))
                .map(|_| Booking { flight: rng.gen_range(0..FLIGHTS), seats: rng.gen_range(1..4) })
                .collect();
            payloads.push(encode(&bookings));
        }
        let outcome = cluster.run_round(&payloads).expect("failure-free run");
        // Apply the agreed bookings in delivery order on every replica.
        for (server, replica) in replicas.iter_mut().enumerate() {
            let delivered = &outcome.delivered[&(server as u32)];
            for (_, payload) in delivered {
                for booking in decode(payload) {
                    replica.apply(booking);
                }
            }
        }
        if round == 0 {
            println!("round 0 agreed in {}", outcome.agreement_latency());
        }
    }

    // Strong consistency: every replica is byte-identical.
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r, &replicas[0], "replica {i} diverged");
    }
    let r = &replicas[0];
    println!(
        "after {ROUNDS} rounds: {} bookings accepted, {} rejected (sold out), {} local queries served",
        r.accepted, r.rejected, total_queries
    );
    for f in 0..FLIGHTS {
        println!("  flight {f}: {} seats left", r.query(f));
    }
    let booked: u64 = (0..FLIGHTS).map(|f| (CAPACITY - r.query(f)) as u64).sum();
    println!("no flight oversold ✓ ({} seats booked in total)", booked);
}
