//! Travel reservation system (§1.1): strongly consistent bookings with
//! locally answered queries, on the typed `Service` API.
//!
//! ```text
//! cargo run --release --example travel_reservation
//! ```
//!
//! The scenario: clients issue many *queries* (seat availability) per
//! *update* (booking). Queries are answered from each server's local
//! replica — AllConcur guarantees a server's view "cannot fall behind
//! more than one round" (§1) — while updates go through atomic broadcast
//! so that two clients can never book the last seat twice, no matter
//! which server they talk to. The booking outcome comes back *typed*:
//! the submitting client learns Confirmed/SoldOut for its own request.
#![deny(deprecated)]

use allconcur::prelude::*;
use allconcur_sim::network::NetworkModel;
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A booking request: flight id + seats wanted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Booking {
    flight: u16,
    seats: u16,
}

/// Typed outcome the submitting client gets back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BookingOutcome {
    /// Seats reserved; how many remain after this booking.
    Confirmed { remaining: u32 },
    /// Not enough seats left at the agreed point.
    SoldOut,
}

/// 4-byte wire format: flight, seats (little-endian u16 each).
#[derive(Debug, Clone, Copy, Default)]
struct BookingCodec;

impl Codec for BookingCodec {
    type Item = Booking;

    fn encode(&self, b: &Booking) -> Bytes {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u16_le(b.flight);
        buf.put_u16_le(b.seats);
        buf.freeze()
    }

    fn decode(&self, bytes: &Bytes) -> Result<Booking, DecodeError> {
        if bytes.len() != 4 {
            return Err(DecodeError("booking must be exactly 4 bytes"));
        }
        Ok(Booking {
            flight: u16::from_le_bytes([bytes[0], bytes[1]]),
            seats: u16::from_le_bytes([bytes[2], bytes[3]]),
        })
    }
}

/// The replicated state: seats left per flight. Deterministic updates in
/// agreement order keep every replica identical.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Inventory {
    seats_left: BTreeMap<u16, u32>,
    accepted: u64,
    rejected: u64,
}

impl Inventory {
    fn new(flights: u16, capacity: u32) -> Self {
        Inventory {
            seats_left: (0..flights).map(|f| (f, capacity)).collect(),
            accepted: 0,
            rejected: 0,
        }
    }

    /// A locally answered query — no coordination.
    fn available(&self, flight: u16) -> u32 {
        self.seats_left.get(&flight).copied().unwrap_or(0)
    }
}

impl StateMachine for Inventory {
    type Command = Booking;
    type Response = BookingOutcome;
    type Codec = BookingCodec;

    fn apply(&mut self, _origin: ServerId, b: Booking) -> BookingOutcome {
        let Some(left) = self.seats_left.get_mut(&b.flight) else {
            self.rejected += 1;
            return BookingOutcome::SoldOut; // unknown flight: consistently rejected
        };
        if *left >= b.seats as u32 {
            *left -= b.seats as u32;
            self.accepted += 1;
            BookingOutcome::Confirmed { remaining: *left }
        } else {
            self.rejected += 1; // sold out: consistently rejected everywhere
            BookingOutcome::SoldOut
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.seats_left.len() as u32);
        for (&flight, &left) in &self.seats_left {
            buf.put_u16_le(flight);
            buf.put_u32_le(left);
        }
        buf.put_u64_le(self.accepted);
        buf.put_u64_le(self.rejected);
        buf.freeze()
    }

    fn restore(snapshot: &[u8]) -> Result<Self, DecodeError> {
        let err = DecodeError("inventory snapshot truncated");
        if snapshot.len() < 4 {
            return Err(err);
        }
        let count = u32::from_le_bytes(snapshot[0..4].try_into().unwrap()) as usize;
        if snapshot.len() != 4 + count * 6 + 16 {
            return Err(err);
        }
        let mut seats_left = BTreeMap::new();
        for i in 0..count {
            let at = 4 + i * 6;
            let flight = u16::from_le_bytes(snapshot[at..at + 2].try_into().unwrap());
            let left = u32::from_le_bytes(snapshot[at + 2..at + 6].try_into().unwrap());
            seats_left.insert(flight, left);
        }
        let tail = 4 + count * 6;
        Ok(Inventory {
            seats_left,
            accepted: u64::from_le_bytes(snapshot[tail..tail + 8].try_into().unwrap()),
            rejected: u64::from_le_bytes(snapshot[tail + 8..tail + 16].try_into().unwrap()),
        })
    }
}

fn main() {
    const N: usize = 8;
    const FLIGHTS: u16 = 4;
    const CAPACITY: u32 = 120;
    const ROUNDS: usize = 20;

    let overlay = gs_digraph(N, 3).expect("GS(8,3)");
    let cluster = Cluster::sim_with(
        overlay,
        SimOptions { network: NetworkModel::ib_verbs(), ..SimOptions::default() },
    );
    let mut service = Service::new(cluster, &Inventory::new(FLIGHTS, CAPACITY)).expect("service");
    let mut rng = StdRng::seed_from_u64(2017);

    let mut total_queries = 0u64;
    let mut confirmed = 0u64;
    let mut sold_out = 0u64;
    for _ in 0..ROUNDS {
        // Each server first serves a burst of local queries (the
        // read-heavy part), then submits the bookings it received — all
        // of a server's bookings batch into one round payload.
        let mut handles = Vec::new();
        for s in 0..N as u32 {
            let queries: u64 = rng.gen_range(50..200);
            total_queries += queries;
            let replica = service.query_local(s).expect("replica");
            let _availability: Vec<u32> = (0..FLIGHTS).map(|f| replica.available(f)).collect(); // local, stale ≤ 1 round
            for _ in 0..rng.gen_range(1..5) {
                let booking =
                    Booking { flight: rng.gen_range(0..FLIGHTS), seats: rng.gen_range(1..4) };
                handles.push(service.submit(s, &booking).expect("submit"));
            }
        }
        // Each client learns the fate of exactly its booking, typed.
        for handle in handles {
            match service.wait(&handle, TIMEOUT).expect("booking outcome") {
                BookingOutcome::Confirmed { .. } => confirmed += 1,
                BookingOutcome::SoldOut => sold_out += 1,
            }
        }
    }
    service.sync(TIMEOUT).expect("replicas caught up");

    // Strong consistency: every replica is identical.
    let reference = service.query_local(0).expect("replica").clone();
    for s in 0..N as u32 {
        assert_eq!(service.query_local(s).expect("replica"), &reference, "replica {s} diverged");
    }
    assert_eq!(reference.accepted, confirmed, "typed outcomes match replicated counters");
    assert_eq!(reference.rejected, sold_out);

    println!(
        "after {ROUNDS} rounds: {confirmed} bookings confirmed, {sold_out} rejected (sold out), \
         {total_queries} local queries served"
    );
    for f in 0..FLIGHTS {
        println!("  flight {f}: {} seats left", reference.available(f));
    }
    let booked: u64 = (0..FLIGHTS).map(|f| (CAPACITY - reference.available(f)) as u64).sum();
    println!("no flight oversold ✓ ({booked} seats booked in total)");
}
