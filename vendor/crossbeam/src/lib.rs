//! Offline, API-compatible subset of the [`crossbeam`] crate.
//!
//! Only [`channel`] is provided, implemented over `std::sync::mpsc`. The
//! workspace uses multi-producer/single-consumer channels exclusively, so
//! the std primitive is a faithful substitute.

pub mod channel {
    //! MPSC channels with the `crossbeam-channel` API surface the
    //! workspace uses: `unbounded`, cloneable [`Sender`], and a
    //! [`Receiver`] with blocking, timed, and non-blocking receives.

    use std::sync::{mpsc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half; cheap to clone.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half. Like crossbeam's receiver (and unlike std's)
    /// it is `Sync`: receives from several threads serialize through an
    /// internal mutex.
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        fn with<R>(&self, f: impl FnOnce(&mpsc::Receiver<T>) -> R) -> R {
            f(&self.inner.lock().unwrap_or_else(|e| e.into_inner()))
        }

        /// Block until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.with(|rx| rx.recv())
        }

        /// Block up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.with(|rx| rx.recv_timeout(timeout))
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.with(|rx| rx.try_recv())
        }

        /// Drain everything currently queued.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Mutex::new(rx) })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42u32).unwrap());
            assert_eq!(rx.recv().unwrap(), 42);
            drop(tx);
            assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        }
    }
}
