//! Offline, API-compatible subset of the [`crossbeam`] crate.
//!
//! Only [`channel`] is provided, implemented over `std::sync::mpsc`. The
//! workspace uses multi-producer/single-consumer channels exclusively, so
//! the std primitives (`channel` / `sync_channel`) are a faithful
//! substitute for both the unbounded and bounded flavours.

pub mod channel {
    //! MPSC channels with the `crossbeam-channel` API surface the
    //! workspace uses: `unbounded` and `bounded` constructors, a
    //! cloneable [`Sender`] with blocking, non-blocking, and timed
    //! sends, and a [`Receiver`] with blocking, timed, and non-blocking
    //! receives.

    use std::sync::{mpsc, Mutex};
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Error of [`Sender::try_send`], mirroring
    /// `crossbeam_channel::TrySendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    /// Error of [`Sender::send_timeout`], mirroring
    /// `crossbeam_channel::SendTimeoutError`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed at capacity for the whole timeout.
        Timeout(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half; cheap to clone.
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking while a bounded channel is full;
        /// errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(tx) => tx.send(value),
                SenderKind::Bounded(tx) => tx.send(value),
            }
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] when a
        /// bounded channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v))
                }
                SenderKind::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }

        /// Send with a patience bound: retries a full bounded channel
        /// until `timeout` elapses. (std's `SyncSender` has no native
        /// timed send; short poll slices approximate it faithfully for
        /// the millisecond-scale patience windows the workspace uses.)
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut value = value;
            loop {
                match self.try_send(value) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Disconnected(v)) => {
                        return Err(SendTimeoutError::Disconnected(v))
                    }
                    Err(TrySendError::Full(v)) => {
                        if Instant::now() >= deadline {
                            return Err(SendTimeoutError::Timeout(v));
                        }
                        value = v;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
        }
    }

    /// The receiving half. Like crossbeam's receiver (and unlike std's)
    /// it is `Sync`: receives from several threads serialize through an
    /// internal mutex.
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        fn with<R>(&self, f: impl FnOnce(&mpsc::Receiver<T>) -> R) -> R {
            f(&self.inner.lock().unwrap_or_else(|e| e.into_inner()))
        }

        /// Block until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.with(|rx| rx.recv())
        }

        /// Block up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.with(|rx| rx.recv_timeout(timeout))
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.with(|rx| rx.try_recv())
        }

        /// Drain everything currently queued.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: SenderKind::Unbounded(tx) }, Receiver { inner: Mutex::new(rx) })
    }

    /// A bounded MPSC channel holding at most `cap` queued values;
    /// senders block (or fail, for the non-blocking variants) while it
    /// is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: SenderKind::Bounded(tx) }, Receiver { inner: Mutex::new(rx) })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42u32).unwrap());
            assert_eq!(rx.recv().unwrap(), 42);
            drop(tx);
            assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        }

        #[test]
        fn bounded_backpressure_and_timed_send() {
            let (tx, rx) = bounded(2);
            tx.try_send(1u32).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert!(matches!(
                tx.send_timeout(3, Duration::from_millis(5)),
                Err(SendTimeoutError::Timeout(3))
            ));
            assert_eq!(rx.try_recv().unwrap(), 1);
            tx.send_timeout(3, Duration::from_millis(5)).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv().unwrap(), 3);
            drop(rx);
            assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
        }
    }
}
