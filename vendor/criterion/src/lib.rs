//! Offline, API-compatible subset of the [`criterion`] benchmark crate.
//!
//! The build environment has no crates.io access, so this minimal
//! stand-in keeps the workspace's `benches/` targets compiling and
//! running. It measures each benchmark with plain `Instant` timing over a
//! fixed number of iterations and prints one line per benchmark — no
//! statistics, plots, or HTML reports. Good enough to smoke-run the
//! benches and eyeball relative magnitudes; swap in the real crate for
//! publishable numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the measured routine receives its per-iteration input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values: batch them generously.
    SmallInput,
    /// Large setup values: one at a time.
    LargeInput,
    /// Let the harness decide per call.
    PerIteration,
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

const MEASURE_ITERS: u64 = 10;

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    /// Total measured time, accumulated by `iter`/`iter_batched`.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { elapsed: Duration::ZERO, iters: 0 }
    }

    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += MEASURE_ITERS;
    }

    /// Time `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Like `iter_batched`, taking the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..MEASURE_ITERS {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("bench {id:<48} (no iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / self.iters as u128;
        println!("bench {id:<48} {per_iter:>12} ns/iter ({} iters)", self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stub ignores it.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stub ignores it.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stub ignores it.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// End the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.to_string());
        self
    }
}

/// Mirrors criterion's `criterion_group!`: defines a function running the
/// listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Mirrors criterion's `criterion_main!`: defines `main` running the
/// listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
