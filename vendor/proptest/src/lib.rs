//! Offline, API-compatible subset of the [`proptest`] crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the property-testing surface its test suites use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / `Just`
//! / tuple / `collection::vec` / `prop_oneof!` strategies, `any::<T>()`,
//! and the `prop_assert!` family. Differences from the real crate:
//! cases are generated from a deterministic per-case seed and **failing
//! inputs are not shrunk** — the failure message reports the exact
//! inputs instead.
//!
//! Two pieces of the real crate's workflow *are* supported:
//!
//! * the `PROPTEST_CASES` environment variable overrides the configured
//!   case count (CI runs extended sweeps without code changes);
//! * failing case seeds persist to `proptest-regressions/<file>.txt`
//!   next to the crate's manifest (`cc <test_name> <seed>` lines) and
//!   replay *first* on subsequent runs — commit the file and a shrunk
//!   failure keeps regressing until fixed, exactly like upstream's
//!   regression files.

pub mod test_runner {
    //! Case generation and the test-loop configuration.

    use rand::prelude::*;

    /// Source of randomness handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic per-case generator.
        pub fn deterministic(case: u64) -> TestRng {
            // Decorrelate consecutive case indices.
            TestRng(StdRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA55A))
        }

        /// Uniform sample from a range (delegates to the vendored rand).
        pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
            self.0.gen_range(range)
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The effective case count: the `PROPTEST_CASES` environment
    /// variable when set and parseable, else the configured default —
    /// matching the real crate's env handling.
    pub fn env_cases(default_cases: u32) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_cases)
    }

    /// Persisted failing case seeds for one test, stored as
    /// `cc <test_name> <seed>` lines in
    /// `<manifest>/proptest-regressions/<source file stem>.txt` — the
    /// offline analogue of upstream proptest's regression files.
    /// Committed files make a found failure replay first on every
    /// subsequent run until fixed.
    pub struct Regressions {
        path: std::path::PathBuf,
        name: &'static str,
        seeds: Vec<u64>,
    }

    impl Regressions {
        /// Load the seeds recorded for `name` (none if no file exists).
        pub fn load(manifest_dir: &str, source_file: &str, name: &'static str) -> Regressions {
            let stem = std::path::Path::new(source_file)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("tests");
            let path = std::path::Path::new(manifest_dir)
                .join("proptest-regressions")
                .join(format!("{stem}.txt"));
            let mut seeds = Vec::new();
            if let Ok(contents) = std::fs::read_to_string(&path) {
                for line in contents.lines() {
                    let mut parts = line.split_whitespace();
                    if parts.next() != Some("cc") {
                        continue; // comment or blank
                    }
                    if let (Some(n), Some(seed)) = (parts.next(), parts.next()) {
                        if n == name {
                            if let Ok(seed) = seed.parse() {
                                seeds.push(seed);
                            }
                        }
                    }
                }
            }
            Regressions { path, name, seeds }
        }

        /// Seeds recorded for this test, oldest first.
        pub fn seeds(&self) -> &[u64] {
            &self.seeds
        }

        /// Append a newly failing seed (idempotent). Returns whether the
        /// file now holds it — persistence failures are swallowed so a
        /// read-only checkout still reports the test failure itself.
        pub fn record(&self, seed: u64) -> bool {
            use std::io::Write;
            if self.seeds.contains(&seed) {
                return true;
            }
            if let Some(dir) = self.path.parent() {
                if std::fs::create_dir_all(dir).is_err() {
                    return false;
                }
            }
            let header = !self.path.exists();
            let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)
            else {
                return false;
            };
            if header {
                let _ = writeln!(
                    f,
                    "# Seeds for failure cases proptest found for this source file.\n\
                     # Each line is `cc <test_name> <case seed>`; recorded failures\n\
                     # replay first on every run. Commit this file so they persist."
                );
            }
            writeln!(f, "cc {} {}", self.name, seed).is_ok()
        }
    }

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Global `prop_assume!` rejection budget before the run fails.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65536 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from randomness.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Produce one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Uniform choice among boxed strategies — the engine behind
    /// [`crate::prop_oneof!`].
    pub struct Union<T: Debug> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    /// Strategies are usable through references (lets `proptest!` take
    /// the strategy expression by value or reference alike).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Sample the full domain uniformly.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T: Arbitrary>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() { 0 } else { rng.gen_range(self.size.clone()) };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use test_runner::{ProptestConfig, TestCaseError};

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])* fn $name $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            // `#[test]` arrives through `$meta` (matching it literally is
            // ambiguous with the attribute repetition).
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = $crate::test_runner::env_cases(config.cases);
                let regressions = $crate::test_runner::Regressions::load(
                    env!("CARGO_MANIFEST_DIR"), file!(), stringify!($name));
                // Persisted failing seeds replay first, *in addition to*
                // the configured case budget (matching upstream); fresh
                // generation then skips the already-replayed seeds so a
                // committed regression never shrinks new-input coverage.
                let recorded: ::std::vec::Vec<u64> = regressions.seeds().to_vec();
                let mut replay: ::std::vec::Vec<u64> = recorded.clone();
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut next_seed: u64 = 0;
                loop {
                    let (case_seed, is_replay) = match replay.pop() {
                        ::core::option::Option::Some(seed) => (seed, true),
                        ::core::option::Option::None => {
                            if passed >= cases {
                                break;
                            }
                            while recorded.contains(&next_seed) {
                                next_seed += 1;
                            }
                            let seed = next_seed;
                            next_seed += 1;
                            (seed, false)
                        }
                    };
                    let mut rng = $crate::test_runner::TestRng::deterministic(case_seed);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    let inputs: ::std::string::String =
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", ");
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        // Replayed regressions run on top of the budget;
                        // only fresh cases consume it.
                        ::core::result::Result::Ok(()) => {
                            if !is_replay {
                                passed += 1;
                            }
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest `{}`: too many prop_assume! rejections (last: {})",
                                    stringify!($name), why
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            let persisted = regressions.record(case_seed);
                            panic!(
                                "proptest `{}` failed after {} passing case(s) (case seed {}{}): {}\n  inputs: {}",
                                stringify!($name), passed, case_seed,
                                if persisted { ", persisted to proptest-regressions/" } else { "" },
                                msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regressions_persist_and_replay() {
        let dir = std::env::temp_dir().join(format!("proptest-regress-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap();
        let r = crate::test_runner::Regressions::load(dir_s, "tests/foo.rs", "my_test");
        assert!(r.seeds().is_empty());
        assert!(r.record(42));
        assert!(r.record(7));
        let replayed = crate::test_runner::Regressions::load(dir_s, "tests/foo.rs", "my_test");
        assert_eq!(replayed.seeds(), &[42, 7]);
        assert!(replayed.record(7), "a seed already on file is not appended again");
        let reloaded = crate::test_runner::Regressions::load(dir_s, "tests/foo.rs", "my_test");
        assert_eq!(reloaded.seeds(), &[42, 7]);
        let other = crate::test_runner::Regressions::load(dir_s, "tests/foo.rs", "other_test");
        assert!(other.seeds().is_empty(), "seeds are per test name");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn env_cases_prefers_the_environment() {
        // Note: reads the real environment — harness runs set
        // PROPTEST_CASES globally, so only assert the fallback when the
        // variable is absent.
        match std::env::var("PROPTEST_CASES") {
            Err(_) => assert_eq!(crate::test_runner::env_cases(17), 17),
            Ok(v) => {
                let parsed: u32 = v.parse().unwrap();
                assert_eq!(crate::test_runner::env_cases(17), parsed);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(x in 1u32..50, v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_tuples(choice in prop_oneof![Just(1u8), Just(2u8)], pair in (0u8..4, 0u8..4)) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }
}
