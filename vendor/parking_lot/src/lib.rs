//! Offline, API-compatible subset of the [`parking_lot`] crate.
//!
//! [`Mutex`] wraps `std::sync::Mutex` and exposes parking_lot's
//! panic-free `lock()` (poisoning is ignored: a poisoned std mutex still
//! yields its guard, matching parking_lot's no-poisoning semantics).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A mutual-exclusion lock with parking_lot's `lock() -> guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never panics on poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: StdRwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }
}
