//! Offline, API-compatible subset of the [`rand`] crate (0.8 surface).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of `rand` it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen_range`, `gen_bool`, `gen_ratio`) and [`seq::SliceRandom`]'s
//! `shuffle`. The generator is xoshiro256** — a different stream than the
//! real `StdRng` (ChaCha12), but every in-repo use only relies on
//! *determinism for a fixed seed*, which holds.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be uniformly sampled into a `T` by [`Rng::gen_range`].
/// Generic over the output type (like real rand's `SampleRange<T>`) so
/// that integer-literal inference flows from the use site into the range.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + unit * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension methods available on every generator (the `rand 0.8`
/// surface the workspace uses).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator, "gen_ratio: invalid ratio");
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seeded PRNG (xoshiro256** under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed, per the xoshiro
            // authors' recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
