//! Offline, API-compatible subset of the `mio` crate (the build
//! environment has no crates.io access — same policy as the vendored
//! `bytes`/`crossbeam`): a level-triggered Linux epoll readiness
//! poller, just large enough for an event-loop TCP runtime.
//!
//! * [`Poll`] — owns the epoll instance; register/reregister/deregister
//!   any `AsRawFd` source under a [`Token`] with an [`Interest`] set.
//! * [`Events`] — reusable buffer filled by [`Poll::poll`].
//! * [`Waker`] — eventfd-backed cross-thread wakeup, registered like
//!   any other source.
//! * [`net::connect_nonblocking`] — start a TCP connect without
//!   blocking; completion is observed as writability plus
//!   `TcpStream::take_error` (the classic `EINPROGRESS`/`SO_ERROR`
//!   handshake), which is what lets a reactor retire dedicated
//!   connect/reconnect threads.
//!
//! Only level-triggered mode is offered: the real mio defaults to
//! edge-triggered, but level-triggered lets a reactor bound per-wake
//! work (stop reading after N frames; epoll re-reports what remains)
//! without the lost-wakeup hazards of edge semantics.

mod sys;

use std::io;
use std::net::TcpStream;
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::time::Duration;

/// Opaque per-source identifier, echoed back in every [`Event`]. The
/// poller never interprets it; callers typically pack a slab index plus
/// a generation counter so events for a recycled slot are detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness interest set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (includes peer hangup).
    pub const READABLE: Interest = Interest(1);
    /// Interest in write readiness (also connect completion).
    pub const WRITABLE: Interest = Interest(2);

    /// Union of two interest sets.
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does the set include read interest?
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Does the set include write interest?
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    fn to_epoll(self) -> u32 {
        let mut ev = sys::EPOLLRDHUP;
        if self.is_readable() {
            ev |= sys::EPOLLIN;
        }
        if self.is_writable() {
            ev |= sys::EPOLLOUT;
        }
        ev
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event out of [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    flags: u32,
}

impl Event {
    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness — data, EOF, or peer shutdown of its write half.
    pub fn is_readable(&self) -> bool {
        self.flags & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0
    }

    /// Write readiness (for a connecting socket: connect completed,
    /// successfully or not — check `take_error`).
    pub fn is_writable(&self) -> bool {
        self.flags & sys::EPOLLOUT != 0
    }

    /// Error or hangup. Always delivered regardless of interest set;
    /// the source should be read (to collect the error/EOF) or torn
    /// down.
    pub fn is_error(&self) -> bool {
        self.flags & (sys::EPOLLERR | sys::EPOLLHUP) != 0
    }
}

/// Reusable event buffer.
pub struct Events {
    raw: Vec<sys::epoll_event>,
    len: usize,
}

impl Events {
    /// Buffer holding at most `cap` events per poll (clamped to ≥ 1).
    pub fn with_capacity(cap: usize) -> Events {
        Events { raw: vec![sys::epoll_event { events: 0, data: 0 }; cap.max(1)], len: 0 }
    }

    /// Events delivered by the last [`Poll::poll`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len]
            .iter()
            .map(|e| Event { token: Token(e.data as usize), flags: e.events })
    }

    /// Whether the last poll returned no events (pure timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance plus the registry of sources watched through it.
pub struct Poll {
    epfd: sys::c_int,
}

impl Poll {
    /// Fresh epoll instance.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll { epfd: sys::sys_epoll_create()? })
    }

    /// Watch `source` for `interest`, tagging its events with `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.register_raw(source.as_raw_fd(), token, interest)
    }

    fn register_raw(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let ev = sys::epoll_event { events: interest.to_epoll(), data: token.0 as u64 };
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Some(ev))
    }

    /// Change an already-registered source's token or interest.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let ev = sys::epoll_event { events: interest.to_epoll(), data: token.0 as u64 };
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, source.as_raw_fd(), Some(ev))
    }

    /// Stop watching a source. (Closing the fd deregisters implicitly;
    /// an explicit deregister keeps the sequence race-free when the fd
    /// might be recycled.)
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Block until at least one event, the timeout, or a wake. `None`
    /// blocks indefinitely. A signal interruption returns successfully
    /// with zero events.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let ms: sys::c_int = match timeout {
            None => -1,
            Some(t) => {
                // Round up so a 100µs deadline does not spin at 0ms.
                let ms =
                    t.as_millis().saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0));
                sys::c_int::try_from(ms).unwrap_or(sys::c_int::MAX)
            }
        };
        events.len = sys::sys_epoll_wait(self.epfd, &mut events.raw, ms)?;
        Ok(())
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

/// Cross-thread wakeup for a [`Poll`], backed by an eventfd. `wake` is
/// async-signal-safe cheap (one `write`); the poller sees a readable
/// event under the registered token and should call [`Waker::drain`]
/// before going back to sleep.
pub struct Waker {
    fd: sys::c_int,
}

// An eventfd write is atomic; concurrent wakes from many threads are
// exactly its use case.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Create a waker registered with `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let fd = sys::sys_eventfd()?;
        if let Err(e) = poll.register_raw(fd, token, Interest::READABLE) {
            sys::sys_close(fd);
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Wake the poller (idempotent; safe from any thread).
    pub fn wake(&self) -> io::Result<()> {
        sys::sys_eventfd_write(self.fd)
    }

    /// Clear pending wakes so level-triggered polling stops reporting
    /// the waker readable. Call from the poll thread on the waker's
    /// event.
    pub fn drain(&self) {
        sys::sys_eventfd_drain(self.fd)
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::sys_close(self.fd);
    }
}

/// Non-blocking socket construction.
pub mod net {
    use super::*;

    /// Start a non-blocking TCP connect. The returned stream is already
    /// in non-blocking mode with the connect in progress (or complete).
    /// Register it for [`Interest::WRITABLE`]; on the writable event,
    /// `stream.take_error()` reports `None` for success or the
    /// `SO_ERROR` of a failed connect.
    pub fn connect_nonblocking(addr: std::net::SocketAddr) -> io::Result<TcpStream> {
        let fd = sys::sys_connect_nonblocking(&addr)?;
        // Safety: fd is a freshly created, unowned socket.
        Ok(unsafe { TcpStream::from_raw_fd(fd) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    #[test]
    fn poll_reports_readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.register(&server, Token(7), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().next().expect("readable event");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());

        let mut buf = [0u8; 8];
        let mut server_nb = server;
        assert_eq!(server_nb.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn nonblocking_connect_completes_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = net::connect_nonblocking(addr).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.register(&stream, Token(1), Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().next().expect("connect completion");
        assert!(ev.is_writable());
        assert!(stream.take_error().unwrap().is_none(), "connect must succeed");
        assert!(stream.peer_addr().is_ok());
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_error() {
        // Bind-then-drop gives a port with (very likely) no listener.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let stream = match net::connect_nonblocking(dead) {
            Ok(s) => s,
            // Immediate refusal is also a valid failure mode.
            Err(_) => return,
        };
        let mut poll = Poll::new().unwrap();
        poll.register(&stream, Token(2), Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(!events.is_empty(), "failed connect must still report");
        assert!(stream.take_error().unwrap().is_some(), "SO_ERROR must carry the refusal");
    }

    #[test]
    fn waker_wakes_and_drains() {
        let poll0 = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll0, Token(99)).unwrap());
        let mut poll = poll0;
        let mut events = Events::with_capacity(8);

        let w2 = waker.clone();
        let t = std::thread::spawn(move || w2.wake().unwrap());
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        t.join().unwrap();
        let ev = events.iter().next().expect("wake event");
        assert_eq!(ev.token(), Token(99));
        waker.drain();

        // Drained: the next short poll is quiet.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn reregister_toggles_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let _server = listener.accept().unwrap();

        let mut poll = Poll::new().unwrap();
        // An idle connected socket is writable but not readable.
        poll.register(&client, Token(3), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "no read interest satisfied");

        poll.reregister(&client, Token(3), Interest::READABLE | Interest::WRITABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().next().expect("writable after reregister");
        assert!(ev.is_writable());

        poll.deregister(&client).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "deregistered source must stay silent");
    }
}
