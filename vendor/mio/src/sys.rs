//! Raw Linux syscall surface for the poller.
//!
//! The vendoring policy forbids external crates, including `libc` — but
//! `std` already links the platform libc, so the handful of symbols the
//! poller needs are declared directly. Everything here is Linux-only
//! (epoll, eventfd), which is the only platform this workspace targets;
//! the constants below are the x86_64/aarch64 values (they differ on
//! some historical architectures such as mips/sparc).

#![allow(non_camel_case_types)]

use std::io;
use std::net::SocketAddr;

pub type c_int = i32;
pub type socklen_t = u32;

/// Kernel ABI struct for `epoll_ctl`/`epoll_wait`. Packed: the kernel's
/// x86_64 ABI has no padding between `events` and `data`, and glibc
/// declares the struct `__attribute__((packed))` on every architecture.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

pub const AF_INET: c_int = 2;
pub const AF_INET6: c_int = 10;
pub const SOCK_STREAM: c_int = 1;
pub const SOCK_NONBLOCK: c_int = 0o4000;
pub const SOCK_CLOEXEC: c_int = 0o2000000;

pub const EINPROGRESS: i32 = 115;
pub const EINTR: i32 = 4;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const u8, len: socklen_t) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(rc: c_int) -> io::Result<c_int> {
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(rc)
    }
}

pub fn sys_epoll_create() -> io::Result<c_int> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

pub fn sys_epoll_ctl(epfd: c_int, op: c_int, fd: c_int, ev: Option<epoll_event>) -> io::Result<()> {
    // DEL ignores the event argument, but pre-2.6.9 kernels required it
    // non-null; passing a dummy either way is harmless.
    let mut ev = ev.unwrap_or(epoll_event { events: 0, data: 0 });
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Wait for events. `timeout_ms = -1` blocks indefinitely. An `EINTR`
/// is reported as zero events rather than an error, matching mio.
pub fn sys_epoll_wait(
    epfd: c_int,
    events: &mut [epoll_event],
    timeout_ms: c_int,
) -> io::Result<usize> {
    let max = c_int::try_from(events.len()).unwrap_or(c_int::MAX).max(1);
    let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), max, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINTR) {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

pub fn sys_eventfd() -> io::Result<c_int> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Bump the eventfd counter. `EAGAIN` (counter at max) is success: the
/// fd is already readable, which is all a wake needs.
pub fn sys_eventfd_write(fd: c_int) -> io::Result<()> {
    let one: u64 = 1;
    let rc = unsafe { write(fd, one.to_ne_bytes().as_ptr(), 8) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        return Err(err);
    }
    Ok(())
}

/// Drain the eventfd counter so level-triggered polling stops reporting
/// it readable. Errors (including `EAGAIN` on an already-drained fd)
/// are ignored.
pub fn sys_eventfd_drain(fd: c_int) {
    let mut buf = [0u8; 8];
    let _ = unsafe { read(fd, buf.as_mut_ptr(), 8) };
}

pub fn sys_close(fd: c_int) {
    let _ = unsafe { close(fd) };
}

/// `sockaddr_in`, hand-built: the vendoring policy leaves no libc crate
/// to supply it.
#[repr(C)]
struct sockaddr_in {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

#[repr(C)]
struct sockaddr_in6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

/// Begin a non-blocking TCP connect to `addr`. Returns the socket fd
/// with the connect either complete or in progress; the caller polls
/// for writability and checks `SO_ERROR` (via
/// `TcpStream::take_error`) to learn the outcome.
pub fn sys_connect_nonblocking(addr: &SocketAddr) -> io::Result<c_int> {
    let (domain, raw, len): (c_int, Vec<u8>, socklen_t) = match addr {
        SocketAddr::V4(v4) => {
            let sa = sockaddr_in {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            let bytes = unsafe {
                std::slice::from_raw_parts(
                    (&sa as *const sockaddr_in).cast::<u8>(),
                    std::mem::size_of::<sockaddr_in>(),
                )
            }
            .to_vec();
            (AF_INET, bytes, std::mem::size_of::<sockaddr_in>() as socklen_t)
        }
        SocketAddr::V6(v6) => {
            let sa = sockaddr_in6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            let bytes = unsafe {
                std::slice::from_raw_parts(
                    (&sa as *const sockaddr_in6).cast::<u8>(),
                    std::mem::size_of::<sockaddr_in6>(),
                )
            }
            .to_vec();
            (AF_INET6, bytes, std::mem::size_of::<sockaddr_in6>() as socklen_t)
        }
    };
    let fd = cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let rc = unsafe { connect(fd, raw.as_ptr(), len) };
    if rc == 0 {
        return Ok(fd);
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        return Ok(fd);
    }
    sys_close(fd);
    Err(err)
}
