//! Offline, API-compatible subset of the [`bytes`] crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small slice of `bytes` it actually uses:
//! [`Bytes`] (a cheaply cloneable, sliceable byte buffer backed by an
//! `Arc<[u8]>`), [`BytesMut`] (a growable builder that freezes into
//! `Bytes`), and the [`Buf`]/[`BufMut`] cursor traits. Semantics match
//! the real crate for this subset; `Bytes::clone` is O(1) and
//! `split_to`/`slice` share the underlying allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Shared `b"..."`-style Debug body for `Bytes` and `BytesMut`.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_slice() {
                match b {
                    b'"' => write!(f, "\\\"")?,
                    b'\\' => write!(f, "\\\\")?,
                    0x20..=0x7e => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\x{b:02x}")?,
                }
            }
            write!(f, "\"")
        }
    };
}

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<[u8]>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes { data: None, start: 0, end: 0 }
    }

    /// A buffer over a static slice. (The vendored version copies; the
    /// observable behaviour is identical.)
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.start..self.end],
            None => &[],
        }
    }

    /// A sub-buffer sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: self.data.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Split off and return the bytes from `at` onwards; `self` keeps the
    /// prefix.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes { data: self.data.clone(), start: self.start + at, end: self.end };
        self.end = self.start + at;
        tail
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Some(Arc::from(v)), start: 0, end }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.buf.extend_from_slice(other);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clear the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Grow or shrink to `new_len`, filling new bytes with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Read cursor over a byte buffer (little-endian accessors as used by the
/// AllConcur codec).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Borrow the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte buffer (little-endian writers as used
/// by the AllConcur codec).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_data() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn buf_cursor_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64_le(42);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 13);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert!(!b.has_remaining());
    }

    #[test]
    fn empty_is_cheap() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert_eq!(b, Bytes::from(Vec::new()));
    }
}
