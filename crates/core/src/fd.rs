//! Failure-detector accuracy model (§3.2).
//!
//! AllConcur's FD is heartbeat-based: every server sends heartbeats to
//! its overlay successors with period `Δ_hb`; a server that hears nothing
//! from a predecessor for `Δ_to` suspects it. *Completeness* (every crash
//! eventually detected) is guaranteed by construction; *accuracy* (no
//! false suspicion) can only be guaranteed probabilistically, because
//! message delays are unbounded in an asynchronous system.
//!
//! When delays follow a known distribution `T`, the probability that the
//! whole deployment behaves like a perfect FD for one detection window is
//! at least
//!
//! ```text
//! (1 − Π_{k=1}^{⌊Δto/Δhb⌋} Pr[T > Δto − k·Δhb])^(n·d)
//! ```
//!
//! — a server is falsely suspected only if *all* `⌊Δto/Δhb⌋` heartbeats
//! in the window are late, there are `d` monitored predecessors per
//! server and `n` servers. Together with `Pr[< k(G) failures]`
//! ([`allconcur_graph::reliability`]) this defines AllConcur's overall
//! reliability.

/// A delay distribution `T`, queried for tail probabilities.
pub trait DelayDistribution {
    /// `Pr[T > t]` for a delay in the same time unit as the heartbeat
    /// parameters.
    fn tail(&self, t: f64) -> f64;
}

/// Exponential delays with the given mean — the memoryless baseline used
/// in the evaluation's probabilistic analysis.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialDelay {
    /// Mean delay.
    pub mean: f64,
}

impl DelayDistribution for ExponentialDelay {
    fn tail(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-t / self.mean).exp()
        }
    }
}

/// Pareto-tailed delays: `Pr[T > t] = (scale / t)^shape` for `t > scale`.
/// Heavy tails model congested networks, where FD accuracy degrades much
/// faster than the exponential model suggests.
#[derive(Debug, Clone, Copy)]
pub struct ParetoDelay {
    /// Minimum delay (the distribution's scale).
    pub scale: f64,
    /// Tail exponent (the distribution's shape); heavier tails for
    /// smaller values.
    pub shape: f64,
}

impl DelayDistribution for ParetoDelay {
    fn tail(&self, t: f64) -> f64 {
        if t <= self.scale {
            1.0
        } else {
            (self.scale / t).powf(self.shape)
        }
    }
}

/// Heartbeat FD parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatFd {
    /// Heartbeat period `Δ_hb`.
    pub heartbeat_period: f64,
    /// Suspicion timeout `Δ_to`.
    pub timeout: f64,
}

impl HeartbeatFd {
    /// The evaluation's setting (Fig. 7): `Δ_hb = 10 ms`, `Δ_to = 100 ms`,
    /// in milliseconds.
    pub fn paper_default() -> Self {
        HeartbeatFd { heartbeat_period: 10.0, timeout: 100.0 }
    }

    /// Probability that one specific monitor falsely suspects one specific
    /// predecessor within a window: all `⌊Δto/Δhb⌋` heartbeats must exceed
    /// their slack.
    pub fn false_suspicion_probability<D: DelayDistribution>(&self, delays: &D) -> f64 {
        let k_max = (self.timeout / self.heartbeat_period).floor() as usize;
        let mut p = 1.0;
        for k in 1..=k_max {
            p *= delays.tail(self.timeout - k as f64 * self.heartbeat_period);
        }
        p
    }

    /// §3.2's lower bound on the probability that the FD is accurate
    /// across the whole deployment: `n` servers each monitoring `d`
    /// predecessors.
    pub fn accuracy_probability<D: DelayDistribution>(
        &self,
        delays: &D,
        n: usize,
        degree: usize,
    ) -> f64 {
        let single = self.false_suspicion_probability(delays);
        (1.0 - single).powi((n * degree) as i32)
    }

    /// Overall per-window reliability: accurate FD **and** fewer than
    /// `k(G)` crashes (§3.2's closing remark).
    pub fn system_reliability<D: DelayDistribution>(
        &self,
        delays: &D,
        n: usize,
        degree: usize,
        connectivity: usize,
        failure_model: &allconcur_graph::ReliabilityModel,
    ) -> f64 {
        self.accuracy_probability(delays, n, degree) * failure_model.reliability(n, connectivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_tail() {
        let d = ExponentialDelay { mean: 2.0 };
        assert!((d.tail(2.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(d.tail(0.0), 1.0);
        assert_eq!(d.tail(-1.0), 1.0);
    }

    #[test]
    fn pareto_tail() {
        let d = ParetoDelay { scale: 1.0, shape: 2.0 };
        assert_eq!(d.tail(0.5), 1.0);
        assert!((d.tail(2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn false_suspicion_needs_all_heartbeats_late() {
        // Δto/Δhb = 10 heartbeats; exponential mean 1ms, slacks 90..0ms:
        // the product is astronomically small.
        let fd = HeartbeatFd::paper_default();
        let p = fd.false_suspicion_probability(&ExponentialDelay { mean: 1.0 });
        assert!(p < 1e-100, "p = {p}");
    }

    #[test]
    fn accuracy_decreases_with_system_size() {
        let fd = HeartbeatFd { heartbeat_period: 10.0, timeout: 30.0 };
        let delays = ExponentialDelay { mean: 8.0 };
        let small = fd.accuracy_probability(&delays, 8, 3);
        let large = fd.accuracy_probability(&delays, 512, 8);
        assert!(small > large);
        assert!(small > 0.0 && small < 1.0);
    }

    #[test]
    fn longer_timeout_improves_accuracy() {
        let delays = ExponentialDelay { mean: 8.0 };
        let short = HeartbeatFd { heartbeat_period: 10.0, timeout: 30.0 };
        let long = HeartbeatFd { heartbeat_period: 10.0, timeout: 100.0 };
        assert!(
            long.accuracy_probability(&delays, 64, 5) > short.accuracy_probability(&delays, 64, 5)
        );
    }

    #[test]
    fn faster_heartbeats_improve_accuracy() {
        let delays = ExponentialDelay { mean: 8.0 };
        let sparse = HeartbeatFd { heartbeat_period: 25.0, timeout: 50.0 };
        let dense = HeartbeatFd { heartbeat_period: 5.0, timeout: 50.0 };
        assert!(
            dense.accuracy_probability(&delays, 64, 5)
                > sparse.accuracy_probability(&delays, 64, 5)
        );
    }

    #[test]
    fn heavy_tails_hurt() {
        let fd = HeartbeatFd { heartbeat_period: 10.0, timeout: 40.0 };
        let exp = fd.accuracy_probability(&ExponentialDelay { mean: 5.0 }, 64, 5);
        let pareto = fd.accuracy_probability(&ParetoDelay { scale: 5.0, shape: 1.5 }, 64, 5);
        assert!(pareto < exp, "pareto {pareto} should be worse than exponential {exp}");
    }

    #[test]
    fn system_reliability_composes() {
        let fd = HeartbeatFd::paper_default();
        let delays = ExponentialDelay { mean: 1.0 };
        let model = allconcur_graph::ReliabilityModel::paper_default();
        let r = fd.system_reliability(&delays, 8, 3, 3, &model);
        assert!(r > 0.999_99 && r <= 1.0, "r = {r}");
    }
}
