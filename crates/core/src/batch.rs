//! Request batching (§5).
//!
//! AllConcur agrees on one message per server per round; applications
//! buffer individual requests while a round is in flight and pack them
//! into the next round's message ("the requests are buffered until the
//! current agreement round is completed; then, they are packed into a
//! message that is A-broadcast in the next round"). The *batching factor*
//! — requests per message — is the x-axis of Fig. 10.
//!
//! The encoding is length-prefixed requests; for fixed-size requests (the
//! paper's 8/40/64-byte workloads) [`encode_fixed`] skips the prefixes.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A queue of pending requests plus the packing policy.
#[derive(Debug, Clone, Default)]
pub struct Batcher {
    pending: std::collections::VecDeque<Bytes>,
    pending_bytes: usize,
    /// Optional cap on requests per batch; `None` = unbounded (the paper
    /// notes unbounded batching makes the system unstable once the offered
    /// rate exceeds the agreement throughput — Fig. 8's discussion).
    max_requests: Option<usize>,
}

impl Batcher {
    /// Unbounded batcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batcher that packs at most `max_requests` per round.
    pub fn with_max_requests(max_requests: usize) -> Self {
        Batcher { max_requests: Some(max_requests), ..Self::default() }
    }

    /// Enqueue one request.
    pub fn push(&mut self, request: Bytes) {
        self.pending_bytes += request.len();
        self.pending.push_back(request);
    }

    /// Number of requests waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total bytes waiting.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Drain up to the batch cap into a round payload (length-prefixed).
    /// Returns an empty payload when nothing is pending — the server still
    /// participates in the round with an empty message.
    pub fn take_batch(&mut self) -> Bytes {
        let take = self.max_requests.unwrap_or(usize::MAX).min(self.pending.len());
        let mut buf =
            BytesMut::with_capacity(self.pending.iter().take(take).map(|r| 4 + r.len()).sum());
        for _ in 0..take {
            let r = self.pending.pop_front().expect("len checked");
            self.pending_bytes -= r.len();
            buf.put_u32_le(r.len() as u32);
            buf.put_slice(&r);
        }
        buf.freeze()
    }
}

/// Decode a length-prefixed batch back into requests.
///
/// Collects into a `Vec`; the replication hot path uses [`iter_batch`]
/// instead, which yields the same requests without the intermediate
/// allocation.
pub fn decode_batch(payload: Bytes) -> Result<Vec<Bytes>, crate::message::CodecError> {
    iter_batch(payload).collect()
}

/// Iterate a length-prefixed batch without collecting it: each item is a
/// zero-copy [`Bytes`] slice of the payload (shared refcount, no data
/// copied, no per-request allocation). Malformed framing yields one
/// `Err` and then ends the iteration.
pub fn iter_batch(payload: Bytes) -> BatchIter {
    BatchIter { payload, failed: false }
}

/// Iterator returned by [`iter_batch`].
#[derive(Debug, Clone)]
pub struct BatchIter {
    payload: Bytes,
    failed: bool,
}

impl Iterator for BatchIter {
    type Item = Result<Bytes, crate::message::CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || !self.payload.has_remaining() {
            return None;
        }
        if self.payload.remaining() < 4 {
            self.failed = true;
            return Some(Err(crate::message::CodecError::Truncated));
        }
        let len = self.payload.get_u32_le() as usize;
        if self.payload.remaining() < len {
            self.failed = true;
            return Some(Err(crate::message::CodecError::Truncated));
        }
        Some(Ok(self.payload.split_to(len)))
    }
}

/// Pack `count` copies of a fixed-size request without prefixes — the
/// paper's fixed-size benchmark messages ("each server delivers a
/// fixed-size message per round"). `batch_bytes = count × request_size`.
pub fn encode_fixed(count: usize, request_size: usize, fill: u8) -> Bytes {
    let mut buf = BytesMut::with_capacity(count * request_size);
    buf.resize(count * request_size, fill);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrip() {
        let mut b = Batcher::new();
        b.push(Bytes::from_static(b"alpha"));
        b.push(Bytes::from_static(b"bb"));
        b.push(Bytes::from_static(b""));
        assert_eq!(b.len(), 3);
        assert_eq!(b.pending_bytes(), 7);
        let batch = b.take_batch();
        assert!(b.is_empty());
        assert_eq!(b.pending_bytes(), 0);
        let reqs = decode_batch(batch).unwrap();
        assert_eq!(
            reqs,
            vec![Bytes::from_static(b"alpha"), Bytes::from_static(b"bb"), Bytes::new()]
        );
    }

    #[test]
    fn empty_batch_is_empty_payload() {
        let mut b = Batcher::new();
        assert!(b.take_batch().is_empty());
    }

    #[test]
    fn max_requests_cap_respected() {
        let mut b = Batcher::with_max_requests(2);
        for i in 0..5u8 {
            b.push(Bytes::from(vec![i]));
        }
        let first = decode_batch(b.take_batch()).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(b.len(), 3);
        let second = decode_batch(b.take_batch()).unwrap();
        assert_eq!(second.len(), 2);
        let third = decode_batch(b.take_batch()).unwrap();
        assert_eq!(third.len(), 1);
        assert_eq!(third[0], Bytes::from(vec![4]));
    }

    #[test]
    fn fixed_encoding_size() {
        // Fig 10's largest point: 2^15 requests of 8 bytes.
        let batch = encode_fixed(1 << 15, 8, 0xAB);
        assert_eq!(batch.len(), (1 << 15) * 8);
    }

    #[test]
    fn iter_batch_is_zero_copy_and_matches_decode() {
        let mut b = Batcher::new();
        b.push(Bytes::from_static(b"alpha"));
        b.push(Bytes::from_static(b"bb"));
        let batch = b.take_batch();
        let collected: Vec<Bytes> = iter_batch(batch.clone()).map(Result::unwrap).collect();
        assert_eq!(collected, decode_batch(batch.clone()).unwrap());
        // Zero-copy: the items alias the batch buffer.
        assert_eq!(collected[0].as_ptr(), batch[4..].as_ptr());
    }

    #[test]
    fn iter_batch_reports_truncation_once() {
        let mut buf = bytes::BytesMut::new();
        buf.put_u32_le(100);
        buf.put_slice(b"short");
        let items: Vec<_> = iter_batch(buf.freeze()).collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_batch(Bytes::from_static(&[1, 2])).is_err());
        let mut buf = bytes::BytesMut::new();
        buf.put_u32_le(100);
        buf.put_slice(b"short");
        assert!(decode_batch(buf.freeze()).is_err());
    }
}
