//! The AllConcur server state machine — Algorithm 1, plus round iteration
//! (§3 "Iterating AllConcur") and the eventually-perfect-FD termination
//! protocol (§3.3.2).
//!
//! [`Server`] is deliberately **transport-agnostic and deterministic**: it
//! consumes [`Event`]s (application broadcasts, received messages, local
//! failure-detector suspicions) and emits [`Action`]s (sends and
//! deliveries). Feeding two servers the same event sequence produces the
//! same actions, which the property tests and the replayable simulator
//! both exploit. The TCP runtime drives the *same* state machine over
//! real sockets.
//!
//! ## Round lifecycle
//!
//! 1. The application submits a round's (possibly empty) payload with
//!    [`Event::ABroadcast`]; a server that receives someone else's
//!    `BCAST` first auto-broadcasts an empty message (Algorithm 1 line
//!    15), so one willing sender suffices to start the round.
//! 2. `BCAST`s flood the overlay with per-origin deduplication;
//!    [`Event::Suspect`] suspicions turn into `FAIL` notifications that
//!    drive the tracking digraphs ([`crate::tracking`]).
//! 3. When every tracking digraph is empty the round terminates: under a
//!    perfect FD the server emits [`Action::Deliver`] with the message
//!    set in deterministic (origin-id) order; under `◇P` it first runs
//!    the FWD/BWD majority-partition protocol.
//! 4. Advancing tags servers whose messages were missing as failed
//!    (removing them from the overlay view), carries the still-relevant
//!    failure notifications into the following round, and re-sends them
//!    (Algorithm 1 lines 9–13).
//!
//! ## Round pipelining (the sliding window)
//!
//! Rounds are pipelined: up to [`Config::round_window`] consecutive
//! rounds — the frontier round plus `W − 1` successors — are **open
//! concurrently**, each with its own dense round state progressing
//! independently through dissemination, tracking and early termination
//! (the extended AllConcur design: every message carries its round tag,
//! so round `r + 1` disseminates while `r` completes). The invariants:
//!
//! * **In-order delivery** — only the frontier round may emit
//!   [`Action::Deliver`]. A later round that terminates first freezes
//!   its message set (phase `Ready`, mirroring the post-delivery
//!   stale-drop of the sequential protocol) and delivers the moment it
//!   becomes the frontier.
//! * **Failure notifications propagate forward** — a notification
//!   received for round `r` is applied to every open round `≥ r`
//!   (flooded under each round's own tag, deduplicated per round), a
//!   local suspicion is applied to every open round, and opening a new
//!   round seeds it with the youngest round's still-relevant
//!   notifications — the windowed generalisation of lines 12–13's
//!   carry-over.
//! * **Tagging is uniform** — when the frontier delivery tags a server
//!   failed (message missing from the agreed set), the server is
//!   scrubbed from every still-open round: its tracking digraph is
//!   dropped and any already-received message of a later round is
//!   discarded. Every correct server delivers rounds in order, so every
//!   correct server performs the same scrub before delivering any later
//!   round — later sets agree even when the scrubbed message reached
//!   only some of them.
//! * Application payloads fill rounds in submission order: a submission
//!   targets the earliest open round without one, opens a new round when
//!   the window has room, and queues otherwise.
//!
//! With `round_window == 1` (the default) the state machine is
//! observationally identical to the sequential protocol — byte-for-byte,
//! as pinned by the golden-transcript test.
//!
//! ## Data layout
//!
//! All per-round state is **dense and id-indexed** (ids are `u32 < n`)
//! and lives in a [`RoundState`] pooled and re-armed in place across
//! rounds: `M_i` is a `Vec<Option<Bytes>>`, the notification set `F_i`
//! an [`IdPairSet`] bitset, the FWD/BWD votes and suspicion sets
//! [`IdSet`]s, and one pre-allocated tracking digraph per origin.
//! Delivery *moves* the round's payloads out of `M_i` instead of cloning
//! them, so a steady-state round performs no per-event heap allocation
//! (measured by the `core_rounds` bench). Every set iterates in
//! ascending id order — the same order the original sorted-map layout
//! produced — so replayable-sim determinism and cross-backend parity are
//! unaffected (golden-transcript test).

use crate::bitset::{IdPairSet, IdSet};
use crate::config::{Config, FdMode};
use crate::message::Message;
use crate::tracking::{TrackingContext, TrackingDigraph};
use crate::{Round, ServerId};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Input to the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The application submits a round payload (one per round; empty
    /// payloads are fine — §2.3 footnote 2). Payloads fill rounds in
    /// submission order; with a round window `> 1` a submission may open
    /// a round ahead of the delivery frontier.
    ABroadcast(Bytes),
    /// A message arrived from direct predecessor `from`.
    Receive {
        /// The overlay predecessor the message came from (not necessarily
        /// the origin — messages are flooded).
        from: ServerId,
        /// The message itself.
        msg: Message,
    },
    /// The local failure detector suspects predecessor `suspect` to have
    /// failed. Equivalent to receiving `⟨FAIL, suspect, self⟩` from the
    /// local FD (Algorithm 1 line 21's `k = i` case). Applied to every
    /// open round.
    Suspect {
        /// The suspected predecessor.
        suspect: ServerId,
    },
}

/// Output of the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Hand `msg` to the transport, addressed to overlay neighbour `to`.
    Send {
        /// Destination server.
        to: ServerId,
        /// Message to transmit.
        msg: Message,
    },
    /// Round `round` reached agreement: deliver `messages` to the
    /// application, already in deterministic (origin-id) order. Empty
    /// payloads from servers with nothing to say are included; servers
    /// whose messages are absent have been tagged as failed. Deliveries
    /// are emitted strictly in round order regardless of the window.
    Deliver {
        /// The completed round.
        round: Round,
        /// `(origin, payload)` pairs, ascending by origin.
        messages: Vec<(ServerId, Bytes)>,
    },
}

/// Termination phase within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Collecting messages and tracking (Algorithm 1 proper).
    Gathering,
    /// `◇P` only: message set decided, awaiting FWD/BWD majority
    /// (§3.3.2).
    Deciding,
    /// Terminated ahead of the delivery frontier: the message set is
    /// frozen (further `BCAST`s are dropped, exactly as the sequential
    /// protocol drops post-delivery stragglers) and the round delivers
    /// when it becomes the frontier. Unreachable at `round_window == 1`.
    Ready,
}

/// Space-usage snapshot of one server — the data structures of Table 2,
/// aggregated over every open round of the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceUsage {
    /// Bytes held by the overlay digraph `G` (`O(n·d)`).
    pub graph_bytes: usize,
    /// Messages currently held across open rounds (`O(W·n)`).
    pub messages: usize,
    /// Payload bytes held across open rounds.
    pub message_bytes: usize,
    /// Failure notifications across open rounds (`O(W·f·d)`).
    pub fail_notifications: usize,
    /// Live tracking digraphs (`≤ W·n`, only `O(f)` ever grow).
    pub tracking_digraphs: usize,
    /// Total vertices across tracking digraphs (`O(f²·d)` worst case).
    pub tracking_vertices: usize,
    /// Total edges across tracking digraphs.
    pub tracking_edges: usize,
    /// High-water mark of vertices in any single tracking digraph.
    pub peak_tracking_vertices: usize,
}

/// Dense per-round protocol state, pooled and re-armed in place as the
/// window slides (see the module docs' data-layout notes).
#[derive(Debug, Clone)]
struct RoundState {
    /// `M_i`: payload by origin (`None` = not yet received).
    msgs: Vec<Option<Bytes>>,
    /// Number of `Some` entries in `msgs`.
    msgs_len: usize,
    /// Total payload bytes in `msgs`.
    msg_bytes: usize,
    /// Whether our own message has been A-broadcast in this round.
    own_sent: bool,
    /// `F_i`: (failed, detector) notifications seen for this round.
    fails: IdPairSet,
    /// Servers with at least one notification in `F_i`.
    known_failed: IdSet,
    /// Predecessors whose `BCAST`s we ignore this round (suspected —
    /// §3.3.2 rule).
    suspected_preds: IdSet,
    /// `g_i[p*]` for every origin, pre-allocated; `tracking_active`
    /// marks the origins whose message is still outstanding.
    tracking: Vec<TrackingDigraph>,
    tracking_active: IdSet,
    phase: Phase,
    /// `◇P`: servers whose FWD / BWD we have seen this round.
    fwd_seen: IdSet,
    bwd_seen: IdSet,
}

impl RoundState {
    fn new(n: usize) -> RoundState {
        RoundState {
            msgs: vec![None; n],
            msgs_len: 0,
            msg_bytes: 0,
            own_sent: false,
            fails: IdPairSet::new(n),
            known_failed: IdSet::with_capacity(n),
            suspected_preds: IdSet::with_capacity(n),
            tracking: (0..n as ServerId).map(TrackingDigraph::new).collect(),
            tracking_active: IdSet::with_capacity(n),
            phase: Phase::Gathering,
            fwd_seen: IdSet::with_capacity(n),
            bwd_seen: IdSet::with_capacity(n),
        }
    }

    /// Re-arm for a fresh round under the current overlay view, reusing
    /// every allocation. Handles a membership-size change (pool states
    /// surviving a reconfiguration) by re-sizing the dense storage.
    fn reset(&mut self, n: usize, alive: &[bool], id: ServerId) {
        if self.msgs.len() != n {
            self.msgs.clear();
            self.msgs.resize(n, None);
            self.fails.reset(n);
            self.tracking = (0..n as ServerId).map(TrackingDigraph::new).collect();
        } else {
            for slot in &mut self.msgs {
                *slot = None;
            }
            self.fails.clear();
        }
        self.msgs_len = 0;
        self.msg_bytes = 0;
        self.own_sent = false;
        self.known_failed.clear();
        self.suspected_preds.clear();
        self.phase = Phase::Gathering;
        self.fwd_seen.clear();
        self.bwd_seen.clear();
        self.tracking_active.clear();
        for p in 0..n as ServerId {
            if p != id && alive[p as usize] {
                self.tracking[p as usize].reset();
                self.tracking_active.insert(p);
            }
        }
    }
}

/// Spare round states kept beyond the window for reuse, and the bound on
/// pooled future-round queues beyond the window (see
/// [`Server::recycle_queue`]) — a small slack so bursty future traffic
/// cannot grow the pools without bound.
const POOL_SLACK: usize = 4;

/// One AllConcur server (Algorithm 1's `p_i`).
#[derive(Debug, Clone)]
pub struct Server {
    cfg: Config,
    id: ServerId,
    /// Delivery frontier: the round `rounds[0]` holds; the next round to
    /// A-deliver.
    round: Round,
    /// Current round-window size `W` (≥ 1): how many consecutive rounds
    /// may be open at once. Initialised from [`Config::round_window`],
    /// adjustable at runtime via [`Server::set_round_window`].
    window: usize,
    /// Overlay view: false once a server is tagged failed (line 11).
    alive: Vec<bool>,
    /// Cached ascending list of alive ids (rebuilt on round advance /
    /// reconfiguration) — backs [`Server::alive_members`] without a
    /// per-call allocation.
    alive_ids: Vec<ServerId>,
    /// Alive successors per vertex under the current view; refilled in
    /// place on round advance. Indexed by ServerId.
    succ_view: Vec<Vec<ServerId>>,
    /// Alive predecessors of `self` (transpose successors — also the
    /// targets of `BWD` floods).
    pred_view: Vec<ServerId>,
    /// Open rounds of the window: `rounds[i]` is round `round + i`.
    /// Never empty — the frontier round is always open.
    rounds: VecDeque<RoundState>,
    /// Recycled round states awaiting reuse (bounded: the window slides
    /// one state per round, so one spare plus slack suffices).
    round_pool: Vec<RoundState>,
    /// Application payloads submitted while every open round already has
    /// one and the window is full. Popped in order as rounds open, so a
    /// queued payload always beats the line-15 empty-message reaction.
    /// This is the paper's request batching (§5) hoisted into the state
    /// machine, where the simulator and the TCP runtime share it.
    pending_payloads: VecDeque<Bytes>,
    /// Events for rounds beyond the window.
    future: BTreeMap<Round, VecDeque<(ServerId, Message)>>,
    /// Drained future-round queues, kept for reuse (bounded to the
    /// window size plus slack) so pipelined rounds do not reallocate
    /// buffers and bursty future traffic cannot grow the pool without
    /// bound.
    future_pool: Vec<VecDeque<(ServerId, Message)>>,
    /// Scratch for the notifications carried across a round advance.
    carried_scratch: Vec<(ServerId, ServerId)>,
    /// Scratch for the subset of carried notifications newly recorded in
    /// a round during [`Server::seed_round_notifications`].
    seed_scratch: Vec<(ServerId, ServerId)>,
    /// Scratch for the servers tagged failed by a frontier delivery.
    tagged_scratch: Vec<ServerId>,
    /// Peak single-digraph vertex count across the server's lifetime.
    peak_tracking: usize,
    /// Rounds delivered so far.
    rounds_delivered: u64,
}

/// Borrowed view implementing [`TrackingContext`] against one round's
/// state (disjoint from the tracking digraphs themselves).
struct RoundCtx<'a> {
    succ_view: &'a [Vec<ServerId>],
    fails: &'a IdPairSet,
    known_failed: &'a IdSet,
}

impl TrackingContext for RoundCtx<'_> {
    fn successors(&self, p: ServerId) -> &[ServerId] {
        &self.succ_view[p as usize]
    }
    fn is_known_failed(&self, p: ServerId) -> bool {
        self.known_failed.contains(p)
    }
    fn has_notification(&self, failed: ServerId, detector: ServerId) -> bool {
        self.fails.contains(failed, detector)
    }
}

impl Server {
    /// Create server `id` of a fresh deployment at round 0.
    pub fn new(cfg: Config, id: ServerId) -> Self {
        let n = cfg.n();
        assert!((id as usize) < n, "server id {id} outside configuration of {n}");
        let window = cfg.round_window.max(1);
        let mut s = Server {
            id,
            round: 0,
            window,
            alive: vec![true; n],
            alive_ids: Vec::with_capacity(n),
            succ_view: vec![Vec::new(); n],
            pred_view: Vec::new(),
            rounds: VecDeque::with_capacity(window),
            round_pool: Vec::new(),
            pending_payloads: VecDeque::new(),
            future: BTreeMap::new(),
            future_pool: Vec::new(),
            carried_scratch: Vec::new(),
            seed_scratch: Vec::new(),
            tagged_scratch: Vec::new(),
            peak_tracking: 0,
            rounds_delivered: 0,
            cfg,
        };
        rebuild_views(&s.cfg, &s.alive, s.id, &mut s.succ_view, &mut s.pred_view, &mut s.alive_ids);
        let mut frontier = RoundState::new(n);
        frontier.reset(n, &s.alive, s.id);
        s.rounds.push_back(frontier);
        s
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Current delivery frontier: the next round to A-deliver (also the
    /// oldest open round).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Current round-window size.
    pub fn round_window(&self) -> usize {
        self.window
    }

    /// Adjust the round window at runtime (clamped to ≥ 1). Shrinking
    /// below the number of currently open rounds lets the extra rounds
    /// complete; no new round opens until the window has room again.
    pub fn set_round_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Number of rounds currently open (frontier included); always in
    /// `1..=window` except transiently after shrinking the window.
    pub fn open_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the application's payload for the *frontier* round has
    /// been A-broadcast.
    pub fn has_broadcast(&self) -> bool {
        self.rounds[0].own_sent
    }

    /// The first round not yet covered by an application payload —
    /// neither broadcast in an open round nor queued. Transports use
    /// this to gate peers' `BCAST`s of genuinely-unsubmitted rounds (the
    /// `app_grace` window) without delaying rounds the application has
    /// already submitted ahead for.
    pub fn next_unsubmitted_round(&self) -> Round {
        let mut budget = self.pending_payloads.len();
        for (i, rs) in self.rounds.iter().enumerate() {
            if !rs.own_sent {
                if budget == 0 {
                    return self.round + i as Round;
                }
                budget -= 1;
            }
        }
        self.round + self.rounds.len() as Round + budget as Round
    }

    /// Application payloads queued for rounds beyond the open window.
    pub fn queued_payloads(&self) -> usize {
        self.pending_payloads.len()
    }

    /// Servers still in the overlay view (not tagged failed), ascending.
    /// Borrows a cache maintained across round advances — no allocation.
    pub fn alive_members(&self) -> &[ServerId] {
        &self.alive_ids
    }

    /// Whether `p` is still in the overlay view.
    pub fn is_alive(&self, p: ServerId) -> bool {
        self.alive[p as usize]
    }

    /// Number of rounds this server has delivered.
    pub fn rounds_delivered(&self) -> u64 {
        self.rounds_delivered
    }

    /// Alive predecessors of this server — the set its failure detector
    /// must monitor (§3.2).
    pub fn monitored_predecessors(&self) -> &[ServerId] {
        &self.pred_view
    }

    /// Table 2 snapshot, aggregated over the open rounds of the window.
    pub fn space_usage(&self) -> SpaceUsage {
        let mut usage = SpaceUsage {
            graph_bytes: self.cfg.graph.memory_bytes(),
            peak_tracking_vertices: self.peak_tracking,
            ..SpaceUsage::default()
        };
        for rs in &self.rounds {
            usage.messages += rs.msgs_len;
            usage.message_bytes += rs.msg_bytes;
            usage.fail_notifications += rs.fails.len();
            usage.tracking_digraphs += rs.tracking_active.len();
            for p in rs.tracking_active.iter() {
                let g = &rs.tracking[p as usize];
                usage.tracking_vertices += g.vertex_count();
                usage.tracking_edges += g.edge_count();
            }
        }
        usage
    }

    /// Replace the configuration (agreed membership change, §3): fresh
    /// overlay, all members alive, every open round discarded and a new
    /// frontier opened at `round`. Cross-configuration failure
    /// notifications are dropped — the new overlay has different edges,
    /// so old (failed, detector) pairs are meaningless under it. Queued
    /// application payloads are dropped too: they were submitted against
    /// the old membership; the application resubmits on the new
    /// configuration. The round window resets to the new
    /// configuration's [`Config::round_window`].
    pub fn reconfigure(&mut self, cfg: Config, round: Round) {
        let n = cfg.n();
        assert!((self.id as usize) < n, "server id lost in reconfiguration");
        self.cfg = cfg;
        self.round = round;
        self.window = self.cfg.round_window.max(1);
        self.alive.clear();
        self.alive.resize(n, true);
        self.succ_view.resize_with(n, Vec::new);
        rebuild_views(
            &self.cfg,
            &self.alive,
            self.id,
            &mut self.succ_view,
            &mut self.pred_view,
            &mut self.alive_ids,
        );
        // Old-configuration round states may be sized for a different n;
        // `RoundState::reset` re-sizes them, so pooling them is fine.
        while let Some(rs) = self.rounds.pop_front() {
            self.recycle_round(rs);
        }
        let mut frontier = self.round_pool.pop().unwrap_or_else(|| RoundState::new(n));
        frontier.reset(n, &self.alive, self.id);
        self.rounds.push_back(frontier);
        self.pending_payloads.clear();
        self.future.retain(|&r, _| r >= round);
    }

    /// Feed one event; actions are appended to `out`.
    // lint:hot_path — every protocol event funnels through here
    pub fn handle_into(&mut self, event: Event, out: &mut Vec<Action>) {
        match event {
            Event::ABroadcast(payload) => self.submit_payload(payload, out),
            Event::Receive { from, msg } => self.handle_receive(from, msg, out),
            Event::Suspect { suspect } => {
                if self.alive[suspect as usize] {
                    debug_assert!(
                        self.cfg.graph.predecessors(self.id).contains(&suspect),
                        "FD suspicion for non-predecessor {suspect}"
                    );
                    // §3.3.2 ignore-rule and the notification itself both
                    // apply to every open round (the failure is
                    // permanent); rounds opened later inherit via the
                    // carried seed (detector == self).
                    for rs in self.rounds.iter_mut() {
                        rs.suspected_preds.insert(suspect);
                    }
                    self.apply_fail_from(0, suspect, self.id, out);
                }
            }
        }
    }

    /// Feed one event; returns the resulting actions.
    ///
    /// Allocates the action vector per call; hot loops should prefer
    /// [`Server::handle_into`] with a reused scratch vector.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_into(event, &mut out);
        out
    }

    // ---- internals ------------------------------------------------------

    fn recycle_round(&mut self, rs: RoundState) {
        if self.round_pool.len() < self.window + POOL_SLACK {
            self.round_pool.push(rs);
        }
    }

    fn recycle_queue(&mut self, mut queue: VecDeque<(ServerId, Message)>) {
        if self.future_pool.len() < self.window + POOL_SLACK {
            queue.clear();
            self.future_pool.push(queue);
        }
    }

    fn send_to_successors(&self, msg: &Message, out: &mut Vec<Action>) {
        for &s in &self.succ_view[self.id as usize] {
            out.push(Action::Send { to: s, msg: msg.clone() });
        }
    }

    fn send_to_predecessors(&self, msg: &Message, out: &mut Vec<Action>) {
        for &p in &self.pred_view {
            out.push(Action::Send { to: p, msg: msg.clone() });
        }
    }

    /// Algorithm 1 lines 1–4, windowed.
    ///
    /// One message per server per round: the payload targets the
    /// earliest open round without one; when every open round has its
    /// payload a new round opens (window permitting) or the payload
    /// queues for the next one — the paper's request-batching flow (§5).
    /// Queued payloads take priority over the reactive empty broadcast
    /// when rounds open, so pipelined submissions are never silently
    /// displaced.
    fn submit_payload(&mut self, payload: Bytes, out: &mut Vec<Action>) {
        if let Some(idx) = self.rounds.iter().position(|rs| !rs.own_sent) {
            self.broadcast_into(idx, payload, out);
        } else if self.rounds.len() < self.window {
            self.pending_payloads.push_back(payload);
            self.open_next_round(out);
        } else {
            self.pending_payloads.push_back(payload);
        }
    }

    /// A-broadcast `payload` as our message for open round `idx`:
    /// flood it, record it, and re-check termination.
    fn broadcast_into(&mut self, idx: usize, payload: Bytes, out: &mut Vec<Action>) {
        debug_assert!(!self.rounds[idx].own_sent, "one message per server per round");
        self.rounds[idx].own_sent = true;
        let round = self.round + idx as Round;
        let msg = Message::Bcast { round, origin: self.id, payload: payload.clone() };
        self.send_to_successors(&msg, out);
        self.insert_msg(idx, self.id, payload);
        self.check_termination(idx, out);
    }

    fn insert_msg(&mut self, idx: usize, origin: ServerId, payload: Bytes) {
        let rs = &mut self.rounds[idx];
        let slot = &mut rs.msgs[origin as usize];
        debug_assert!(slot.is_none(), "duplicate insert for origin {origin}");
        rs.msgs_len += 1;
        rs.msg_bytes += payload.len();
        *slot = Some(payload);
    }

    /// Route one received message to its round: stale rounds are dropped
    /// (the sender has everything it needs from us or has tagged us
    /// failed — §3), in-window rounds are opened on demand and
    /// dispatched to, and rounds beyond the window buffer in `future`.
    fn handle_receive(&mut self, from: ServerId, msg: Message, out: &mut Vec<Action>) {
        let r = msg.round();
        if r < self.round {
            return;
        }
        if r >= self.round + self.window as Round {
            match self.future.get_mut(&r) {
                Some(queue) => queue.push_back((from, msg)),
                None => {
                    let mut queue = self.future_pool.pop().unwrap_or_default();
                    queue.push_back((from, msg));
                    self.future.insert(r, queue);
                }
            }
            return;
        }
        // Open intermediate rounds up to r. Opening never delivers (a
        // newly opened round is never the frontier here), so indices
        // stay stable.
        while self.round + (self.rounds.len() as Round) <= r {
            self.open_next_round(out);
        }
        let idx = (r - self.round) as usize;
        self.dispatch(from, msg, idx, out);
    }

    fn dispatch(&mut self, from: ServerId, msg: Message, idx: usize, out: &mut Vec<Action>) {
        match msg {
            Message::Bcast { origin, payload, .. } => {
                // §3.3.2: after suspecting a predecessor, ignore its
                // messages (except failure notifications) for the round.
                if self.rounds[idx].suspected_preds.contains(from) {
                    return;
                }
                self.handle_bcast(idx, origin, payload, out);
            }
            Message::Fail { failed, detector, .. } => {
                self.apply_fail_from(idx, failed, detector, out)
            }
            Message::Fwd { origin, .. } => self.handle_fwd(idx, origin, out),
            Message::Bwd { origin, .. } => self.handle_bwd(idx, origin, out),
        }
    }

    /// Algorithm 1 lines 14–20, for open round `idx`.
    fn handle_bcast(
        &mut self,
        idx: usize,
        origin: ServerId,
        payload: Bytes,
        out: &mut Vec<Action>,
    ) {
        if !self.alive[origin as usize] || self.rounds[idx].msgs[origin as usize].is_some() {
            return; // stale origin or duplicate — already forwarded once
        }
        if self.rounds[idx].phase != Phase::Gathering {
            // ◇P Deciding: message set already decided (§3.3.2).
            // Ready: set frozen awaiting the frontier (same stale-drop
            // the sequential protocol applies after delivery).
            return;
        }
        // Line 15: react with our own (empty) message if this round has
        // not broadcast yet; the application can pre-empt this by
        // submitting first (queued payloads were already consumed when
        // the round opened, so the empty reaction is the true fallback).
        if !self.rounds[idx].own_sent {
            self.broadcast_into(idx, Bytes::new(), out);
        }
        self.insert_msg(idx, origin, payload.clone());
        // Lines 17–18: continue dissemination (only this message is new;
        // everything else was forwarded on first receipt).
        let round = self.round + idx as Round;
        let msg = Message::Bcast { round, origin, payload };
        self.send_to_successors(&msg, out);
        // Line 19: stop tracking m_origin.
        if self.rounds[idx].tracking_active.remove(origin) {
            self.rounds[idx].tracking[origin as usize].clear();
        }
        self.check_termination(idx, out);
    }

    /// Algorithm 1 lines 21–41, windowed: a notification for round
    /// `start_idx` applies to that round and every open round after it
    /// (the failure is permanent; each round floods it under its own
    /// tag with per-round dedup). Stops early if a delivery advanced the
    /// frontier — the advance itself re-propagates still-relevant
    /// notifications into the remaining rounds.
    fn apply_fail_from(
        &mut self,
        start_idx: usize,
        failed: ServerId,
        detector: ServerId,
        out: &mut Vec<Action>,
    ) {
        if !self.alive[failed as usize] {
            return; // stale — the server is already out of the overlay
        }
        let frontier = self.round;
        let mut idx = start_idx;
        while idx < self.rounds.len() {
            self.fail_in_round(idx, failed, detector, out);
            if self.round != frontier || !self.alive[failed as usize] {
                // A delivery advanced the window (carry-over took care
                // of the remaining rounds) or tagged `failed` for good.
                return;
            }
            idx += 1;
        }
    }

    /// Process one failure notification within open round `idx`
    /// (R-broadcast dedup, dissemination-first, tracking update).
    fn fail_in_round(
        &mut self,
        idx: usize,
        failed: ServerId,
        detector: ServerId,
        out: &mut Vec<Action>,
    ) {
        if self.rounds[idx].fails.contains(failed, detector) {
            return; // duplicate — R-broadcast dedup
        }
        // Line 22: disseminate first (R-broadcast).
        let round = self.round + idx as Round;
        let msg = Message::Fail { round, failed, detector };
        self.send_to_successors(&msg, out);
        // Line 23: record.
        self.rounds[idx].fails.insert(failed, detector);
        self.rounds[idx].known_failed.insert(failed);
        // Lines 24–40: update every tracking digraph that contains
        // `failed`. A Ready round's digraphs are already settled and
        // cleared; it only records and relays.
        if self.rounds[idx].phase != Phase::Ready {
            self.apply_fail_to_tracking(idx, failed, detector);
        }
        self.check_termination(idx, out);
    }

    fn apply_fail_to_tracking(&mut self, idx: usize, failed: ServerId, detector: ServerId) {
        // Split borrows: the round's digraphs vs its context fields and
        // the shared successor view.
        let rs = &mut self.rounds[idx];
        let ctx = RoundCtx {
            succ_view: &self.succ_view,
            fails: &rs.fails,
            known_failed: &rs.known_failed,
        };
        let mut peak = self.peak_tracking;
        for p in 0..rs.tracking.len() {
            if !rs.tracking_active.contains(p as ServerId) {
                continue;
            }
            let g = &mut rs.tracking[p];
            g.on_failure(failed, detector, &ctx);
            peak = peak.max(g.peak_vertices());
            if g.is_empty() {
                rs.tracking_active.remove(p as ServerId);
            }
        }
        self.peak_tracking = peak;
    }

    /// §3.3.2: a server that decided its set floods FWD over `G`.
    fn handle_fwd(&mut self, idx: usize, origin: ServerId, out: &mut Vec<Action>) {
        if self.cfg.fd_mode != FdMode::EventuallyPerfect || self.rounds[idx].phase == Phase::Ready {
            return;
        }
        if self.rounds[idx].fwd_seen.insert(origin) {
            let msg = Message::Fwd { round: self.round + idx as Round, origin };
            self.send_to_successors(&msg, out);
            self.check_decision(idx, out);
        }
    }

    /// §3.3.2: BWD floods over the transpose of `G`.
    fn handle_bwd(&mut self, idx: usize, origin: ServerId, out: &mut Vec<Action>) {
        if self.cfg.fd_mode != FdMode::EventuallyPerfect || self.rounds[idx].phase == Phase::Ready {
            return;
        }
        if self.rounds[idx].bwd_seen.insert(origin) {
            let msg = Message::Bwd { round: self.round + idx as Round, origin };
            self.send_to_predecessors(&msg, out);
            self.check_decision(idx, out);
        }
    }

    /// Algorithm 1 lines 5–13 (plus the ◇P decision hand-off), for open
    /// round `idx`. Only the frontier delivers; a later round that
    /// terminates freezes as `Ready` until the window slides to it.
    fn check_termination(&mut self, idx: usize, out: &mut Vec<Action>) {
        let rs = &self.rounds[idx];
        if rs.phase != Phase::Gathering || !rs.tracking_active.is_empty() {
            return;
        }
        // Validity guard: our own message must be part of the set. The
        // check is implicit in Algorithm 1 (M_i always contains m_i by
        // the time every other digraph empties) but explicit here because
        // the application drives A-broadcast.
        if !rs.own_sent {
            return;
        }
        match self.cfg.fd_mode {
            FdMode::Perfect => {
                if idx == 0 {
                    self.deliver_and_advance(out);
                } else {
                    self.rounds[idx].phase = Phase::Ready;
                }
            }
            FdMode::EventuallyPerfect => {
                self.rounds[idx].phase = Phase::Deciding;
                // R-broadcast ⟨FWD, p_i⟩ over G and ⟨BWD, p_i⟩ over G^T.
                self.rounds[idx].fwd_seen.insert(self.id);
                self.rounds[idx].bwd_seen.insert(self.id);
                let round = self.round + idx as Round;
                let fwd = Message::Fwd { round, origin: self.id };
                self.send_to_successors(&fwd, out);
                let bwd = Message::Bwd { round, origin: self.id };
                self.send_to_predecessors(&bwd, out);
                self.check_decision(idx, out);
            }
        }
    }

    /// §3.3.2: deliver once ⌊n/2⌋ *other* servers are known to share our
    /// set in both directions (FWD: theirs ⊆ ours; BWD: ours ⊆ theirs) —
    /// a strict majority including ourselves.
    fn check_decision(&mut self, idx: usize, out: &mut Vec<Action>) {
        let rs = &self.rounds[idx];
        if rs.phase != Phase::Deciding {
            return;
        }
        let n = self.alive_ids.len();
        // In the Deciding phase both sets contain `self` (inserted at the
        // phase hand-off), so the word-wise intersection overcounts the
        // "other servers" tally by exactly one.
        let both = rs.fwd_seen.intersection_len(&rs.bwd_seen) - 1;
        if both >= n / 2 {
            if idx == 0 {
                self.deliver_and_advance(out);
            } else {
                self.rounds[idx].phase = Phase::Ready;
            }
        }
    }

    /// Deliver the frontier round and slide the window: tag servers
    /// whose messages were missing, carry still-relevant notifications
    /// forward, scrub tagged servers from every open round, re-check
    /// terminations (cascading deliveries of `Ready` successors), refill
    /// the window from queued payloads, and replay buffered events.
    // lint:hot_path — the round advance; the one sanctioned allocation is
    // the pre-sized delivery Vec (see the core_rounds allocator budget)
    fn deliver_and_advance(&mut self, out: &mut Vec<Action>) {
        let mut rs = self.rounds.pop_front().expect("frontier round is always open");
        // Deliver sort(M_i): ascending-origin scan of the dense slots,
        // *moving* each payload out instead of cloning it (the round
        // state is recycled below anyway). Lines 9–11 fold into the same
        // sweep: an alive server with no message is tagged failed.
        let mut tagged = std::mem::take(&mut self.tagged_scratch);
        tagged.clear();
        let mut messages: Vec<(ServerId, Bytes)> = Vec::with_capacity(rs.msgs_len);
        for p in 0..self.cfg.n() {
            match rs.msgs[p].take() {
                Some(payload) => messages.push((p as ServerId, payload)),
                None => {
                    if self.alive[p] {
                        self.alive[p] = false;
                        tagged.push(p as ServerId);
                    }
                }
            }
        }
        rs.msgs_len = 0;
        rs.msg_bytes = 0;
        out.push(Action::Deliver { round: self.round, messages });
        self.rounds_delivered += 1;

        // Lines 12–13: keep notifications about still-alive servers (they
        // failed *after* A-broadcasting; the following rounds must know).
        let mut carried = std::mem::take(&mut self.carried_scratch);
        carried.clear();
        carried.extend(rs.fails.iter().filter(|&(p, _)| self.alive[p as usize]));

        // Slide the window under the shrunken overlay view.
        self.round += 1;
        rebuild_views(
            &self.cfg,
            &self.alive,
            self.id,
            &mut self.succ_view,
            &mut self.pred_view,
            &mut self.alive_ids,
        );
        self.recycle_round(rs);

        // Scrub servers tagged by this delivery from every still-open
        // round: drop their tracking digraphs and discard any
        // already-received later-round message. Every correct server
        // delivers rounds in order and tags the same set (a function of
        // the agreed round), so every correct server scrubs identically
        // before delivering any later round — which is what keeps later
        // sets uniform even though the scrubbed messages reached only
        // some servers before the tagging.
        if !tagged.is_empty() {
            for open in self.rounds.iter_mut() {
                for &p in tagged.iter() {
                    if open.tracking_active.remove(p) {
                        open.tracking[p as usize].clear();
                    }
                    if let Some(b) = open.msgs[p as usize].take() {
                        open.msgs_len -= 1;
                        open.msg_bytes -= b.len();
                    }
                }
            }
        }
        self.tagged_scratch = tagged;

        if self.rounds.is_empty() {
            // Sequential case (window exhausted): open the next frontier
            // seeded with the carried notifications and the next queued
            // payload — exactly lines 9–13 plus the batching pop.
            self.carried_scratch = carried;
            self.open_next_round(out);
        } else {
            // Pipelined case: the following rounds are already open and
            // were seeded when opened / fed by the forward-application
            // rule, so replaying the carry is normally pure dedup — but
            // it is what guarantees no still-relevant notification is
            // lost when a notification raced the delivery.
            for idx in 0..self.rounds.len() {
                self.seed_round_notifications(idx, &carried, out);
            }
            self.carried_scratch = carried;
        }

        // The scrub / carry may have settled open rounds; re-check them
        // in round order, delivering the new frontier if it is (or just
        // became) complete. A nested advance re-enters this same
        // sequence, so stop as soon as the frontier moves.
        self.settle_open_rounds(out);

        // Refill the window from queued payloads (each open consumes
        // one). No-op at window 1: the open above already popped.
        while !self.pending_payloads.is_empty() && self.rounds.len() < self.window {
            self.open_next_round(out);
        }

        // Replay any buffered events that now fall inside the window.
        self.drain_future(out);
    }

    /// Termination sweep over the open rounds after the window slid:
    /// deliver a `Ready` (or now-complete) frontier, mark later
    /// completed rounds `Ready`. Aborts when a nested advance takes
    /// over.
    fn settle_open_rounds(&mut self, out: &mut Vec<Action>) {
        let frontier = self.round;
        let mut idx = 0;
        while idx < self.rounds.len() && self.round == frontier {
            if idx == 0 && self.rounds[0].phase == Phase::Ready {
                self.deliver_and_advance(out);
                return;
            }
            self.check_termination(idx, out);
            idx += 1;
        }
    }

    /// Replay `carried` (notifications about still-alive servers) into
    /// open round `idx` — Algorithm 1 lines 12–13 generalised to the
    /// window. Batch-insert first so tracking expansions see the full
    /// refutation set, then flood each *newly* recorded pair under the
    /// round's own tag and update its tracking (a `Ready` round's
    /// digraphs are already settled and cleared). Re-seeding an
    /// already-open round is pure dedup; the same helper seeds fresh
    /// rounds in [`Server::open_next_round`]. No termination checks
    /// here — the callers sweep those afterwards, so indices stay
    /// stable.
    fn seed_round_notifications(
        &mut self,
        idx: usize,
        carried: &[(ServerId, ServerId)],
        out: &mut Vec<Action>,
    ) {
        let round = self.round + idx as Round;
        let mut newly = std::mem::take(&mut self.seed_scratch);
        newly.clear();
        for &(p, det) in carried {
            if det == self.id {
                self.rounds[idx].suspected_preds.insert(p);
            }
            if self.rounds[idx].fails.insert(p, det) {
                newly.push((p, det));
            }
            self.rounds[idx].known_failed.insert(p);
        }
        for &(p, det) in newly.iter() {
            let msg = Message::Fail { round, failed: p, detector: det };
            self.send_to_successors(&msg, out);
            if self.rounds[idx].phase != Phase::Ready {
                self.apply_fail_to_tracking(idx, p, det);
            }
        }
        self.seed_scratch = newly;
    }

    /// Open the next round of the window (round `round + rounds.len()`):
    /// arm a pooled round state under the current view, seed it with the
    /// youngest round's still-relevant failure notifications (lines
    /// 12–13 generalised — re-sent under the new round's tag), and give
    /// it the next queued application payload if one is waiting.
    ///
    /// When called with no open rounds (the frontier advance), the carry
    /// source is `carried_scratch`, pre-filled from the just-delivered
    /// round.
    fn open_next_round(&mut self, out: &mut Vec<Action>) {
        let n = self.cfg.n();
        let round = self.round + self.rounds.len() as Round;
        let mut carried = std::mem::take(&mut self.carried_scratch);
        if let Some(prev) = self.rounds.back() {
            carried.clear();
            carried.extend(prev.fails.iter().filter(|&(p, _)| self.alive[p as usize]));
        }
        let mut rs = self.round_pool.pop().unwrap_or_else(|| RoundState::new(n));
        rs.reset(n, &self.alive, self.id);
        self.rounds.push_back(rs);
        let idx = self.rounds.len() - 1;
        debug_assert_eq!(self.round + idx as Round, round);
        self.seed_round_notifications(idx, &carried, out);
        self.carried_scratch = carried;
        // The carried notifications alone may already settle the round's
        // tracking state for long-dead senders, but delivery still waits
        // for our own A-broadcast (the application drives it).

        // A queued application payload opens the round *before* any
        // buffered peer messages replay, so it cannot be displaced by
        // the line-15 empty reaction. (May recurse into an advance when
        // everything else already settled and this is the frontier.)
        if let Some(payload) = self.pending_payloads.pop_front() {
            self.broadcast_into(idx, payload, out);
        }
    }

    /// Replay buffered events that fall inside the current window,
    /// oldest round first. Dispatching can advance the frontier
    /// (nested drains run then), open rounds, or re-buffer nothing —
    /// per-message stale checks make the loop re-entrant.
    fn drain_future(&mut self, out: &mut Vec<Action>) {
        loop {
            // Discard queues for rounds the window already passed.
            while let Some((&r, _)) = self.future.iter().next() {
                if r >= self.round {
                    break;
                }
                let queue = self.future.remove(&r).expect("keyed");
                self.recycle_queue(queue);
            }
            let Some((&r, _)) = self.future.iter().next() else { return };
            if r >= self.round + self.window as Round {
                return;
            }
            let mut queue = self.future.remove(&r).expect("keyed");
            while let Some((from, msg)) = queue.pop_front() {
                // Full routing: the frontier may advance mid-queue, in
                // which case the remaining messages (all tagged `r`)
                // drop as stale — matching the sequential drain.
                self.handle_receive(from, msg, out);
            }
            self.recycle_queue(queue);
        }
    }
}

/// Refill (successor view, self's predecessor view, alive-id cache) in
/// place under an alive mask: dead servers keep their vertex ids but
/// lose every edge. A free function over disjoint `Server` fields so the
/// per-round rebuild borrows cleanly and reuses the existing buffers.
fn rebuild_views(
    cfg: &Config,
    alive: &[bool],
    id: ServerId,
    succ: &mut [Vec<ServerId>],
    pred: &mut Vec<ServerId>,
    alive_ids: &mut Vec<ServerId>,
) {
    let n = cfg.n();
    for v in 0..n {
        succ[v].clear();
        if !alive[v] {
            continue;
        }
        succ[v].extend(
            cfg.graph.successors(v as ServerId).iter().copied().filter(|&s| alive[s as usize]),
        );
    }
    pred.clear();
    pred.extend(cfg.graph.predecessors(id).iter().copied().filter(|&p| alive[p as usize]));
    alive_ids.clear();
    alive_ids.extend((0..n as ServerId).filter(|&p| alive[p as usize]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use allconcur_graph::gs::gs_digraph;
    use allconcur_graph::standard::complete_digraph;
    use std::sync::Arc;

    fn cfg_gs83() -> Config {
        Config::new(Arc::new(gs_digraph(8, 3).unwrap()), 2)
    }

    fn payload(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 8])
    }

    /// Drive a full failure-free round by hand-delivering every Send.
    /// Returns per-server delivered message vectors.
    fn run_lockstep_round(cfg: &Config) -> Vec<Vec<(ServerId, Bytes)>> {
        let n = cfg.n();
        let mut servers: Vec<Server> =
            (0..n as ServerId).map(|i| Server::new(cfg.clone(), i)).collect();
        let mut inbox: VecDeque<(ServerId, ServerId, Message)> = VecDeque::new();
        let mut delivered: Vec<Vec<(ServerId, Bytes)>> = vec![Vec::new(); n];

        for i in 0..n as ServerId {
            for a in servers[i as usize].handle(Event::ABroadcast(payload(i as u8))) {
                match a {
                    Action::Send { to, msg } => inbox.push_back((i, to, msg)),
                    Action::Deliver { .. } => unreachable!("cannot deliver before dissemination"),
                }
            }
        }
        while let Some((from, to, msg)) = inbox.pop_front() {
            for a in servers[to as usize].handle(Event::Receive { from, msg }) {
                match a {
                    Action::Send { to: t2, msg } => inbox.push_back((to, t2, msg)),
                    Action::Deliver { messages, .. } => delivered[to as usize] = messages,
                }
            }
        }
        delivered
    }

    #[test]
    fn failure_free_round_delivers_everything_everywhere() {
        let cfg = cfg_gs83();
        let delivered = run_lockstep_round(&cfg);
        for (i, msgs) in delivered.iter().enumerate() {
            assert_eq!(msgs.len(), 8, "server {i} delivered {} messages", msgs.len());
            // Total order: identical ordered vector everywhere.
            assert_eq!(msgs, &delivered[0], "server {i} delivered a different sequence");
            // Deterministic order = ascending origin.
            let origins: Vec<ServerId> = msgs.iter().map(|&(o, _)| o).collect();
            assert_eq!(origins, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_payloads_are_delivered() {
        let cfg = Config::new(Arc::new(complete_digraph(4)), 1);
        let mut servers: Vec<Server> = (0..4).map(|i| Server::new(cfg.clone(), i)).collect();
        let mut inbox: VecDeque<(ServerId, ServerId, Message)> = VecDeque::new();
        // Only server 0 has something to say; 1–3 stay reactive.
        for a in servers[0].handle(Event::ABroadcast(payload(9))) {
            if let Action::Send { to, msg } = a {
                inbox.push_back((0, to, msg));
            }
        }
        let mut delivered = vec![Vec::new(); 4];
        while let Some((from, to, msg)) = inbox.pop_front() {
            for a in servers[to as usize].handle(Event::Receive { from, msg }) {
                match a {
                    Action::Send { to: t, msg } => inbox.push_back((to, t, msg)),
                    Action::Deliver { messages, .. } => delivered[to as usize] = messages,
                }
            }
        }
        // Servers 1..3 delivered 4 messages (3 empty), all identical; but
        // server 0 may still be waiting for nothing — it delivered too
        // since its own broadcast happened first.
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.len(), 4, "server {i}");
            assert_eq!(d[0].1, payload(9));
            assert!(d[1].1.is_empty() && d[2].1.is_empty() && d[3].1.is_empty());
        }
    }

    #[test]
    fn duplicate_bcast_not_reforwarded() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg.clone(), 0);
        s.handle(Event::ABroadcast(Bytes::new()));
        let pred = cfg.graph.predecessors(0)[0];
        let msg = Message::Bcast { round: 0, origin: 5, payload: Bytes::new() };
        let first = s.handle(Event::Receive { from: pred, msg: msg.clone() });
        assert!(first.iter().any(|a| matches!(a, Action::Send { .. })));
        let second = s.handle(Event::Receive { from: pred, msg });
        assert!(second.is_empty(), "duplicate must be ignored: {second:?}");
    }

    #[test]
    fn suspect_generates_fail_flood() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg.clone(), 0);
        let suspect = cfg.graph.predecessors(0)[0];
        let actions = s.handle(Event::Suspect { suspect });
        let sends: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg: Message::Fail { failed, detector, round } } => {
                    Some((*to, *failed, *detector, *round))
                }
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), cfg.graph.out_degree(0));
        for (_, failed, detector, round) in sends {
            assert_eq!(failed, suspect);
            assert_eq!(detector, 0);
            assert_eq!(round, 0);
        }
    }

    #[test]
    fn bcast_from_suspected_predecessor_is_ignored() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg.clone(), 0);
        s.handle(Event::ABroadcast(Bytes::new()));
        let suspect = cfg.graph.predecessors(0)[0];
        s.handle(Event::Suspect { suspect });
        let msg = Message::Bcast { round: 0, origin: suspect, payload: Bytes::new() };
        let actions = s.handle(Event::Receive { from: suspect, msg });
        assert!(actions.is_empty(), "suspected predecessor's BCAST must be dropped");
    }

    #[test]
    fn future_round_messages_are_buffered() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg.clone(), 0);
        let pred = cfg.graph.predecessors(0)[0];
        let future_msg = Message::Bcast { round: 1, origin: 5, payload: payload(5) };
        let actions = s.handle(Event::Receive { from: pred, msg: future_msg });
        assert!(actions.is_empty(), "round-1 message must be buffered at round 0");
        assert_eq!(s.round(), 0);
    }

    #[test]
    fn stale_round_messages_are_dropped() {
        // Drive a full round on a complete digraph, then replay a round-0
        // message: it must be ignored.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut servers: Vec<Server> = (0..3).map(|i| Server::new(cfg.clone(), i)).collect();
        let mut inbox: VecDeque<(ServerId, ServerId, Message)> = VecDeque::new();
        for i in 0..3u32 {
            for a in servers[i as usize].handle(Event::ABroadcast(Bytes::new())) {
                if let Action::Send { to, msg } = a {
                    inbox.push_back((i, to, msg));
                }
            }
        }
        while let Some((from, to, msg)) = inbox.pop_front() {
            for a in servers[to as usize].handle(Event::Receive { from, msg }) {
                if let Action::Send { to: t, msg } = a {
                    inbox.push_back((to, t, msg));
                }
            }
        }
        assert_eq!(servers[0].round(), 1);
        let stale = Message::Bcast { round: 0, origin: 1, payload: Bytes::new() };
        assert!(servers[0].handle(Event::Receive { from: 1, msg: stale }).is_empty());
    }

    #[test]
    fn no_delivery_before_own_broadcast() {
        // Server 2 in a 2-ring... use complete_digraph(2): server 1 gets
        // server 0's message but must not deliver before its own
        // A-broadcast — which line 15 triggers automatically, so delivery
        // happens but includes server 1's empty message.
        let cfg = Config::new(Arc::new(complete_digraph(2)), 0);
        let mut s1 = Server::new(cfg, 1);
        let msg = Message::Bcast { round: 0, origin: 0, payload: payload(1) };
        let actions = s1.handle(Event::Receive { from: 0, msg });
        let deliver = actions.iter().find_map(|a| match a {
            Action::Deliver { messages, .. } => Some(messages.clone()),
            _ => None,
        });
        let messages = deliver.expect("round complete for n=2");
        assert_eq!(messages.len(), 2);
        assert_eq!(messages[0].0, 0);
        assert_eq!(messages[1].0, 1);
        assert!(messages[1].1.is_empty(), "auto-broadcast is empty");
    }

    #[test]
    fn failed_server_tagged_and_removed_next_round() {
        // Complete digraph n=3; server 2 never broadcasts and is reported
        // failed by everyone. Servers 0/1 must deliver without m2 and tag
        // server 2 as failed.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s0 = Server::new(cfg.clone(), 0);
        let mut acts = Vec::new();
        s0.handle_into(Event::ABroadcast(payload(0)), &mut acts);
        s0.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(1) },
            },
            &mut acts,
        );
        // FD: suspect 2; also receive server 1's notification about 2.
        s0.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
        acts.clear();
        s0.handle_into(
            Event::Receive { from: 1, msg: Message::Fail { round: 0, failed: 2, detector: 1 } },
            &mut acts,
        );
        let deliver = acts.iter().find_map(|a| match a {
            Action::Deliver { round, messages } => Some((*round, messages.clone())),
            _ => None,
        });
        let (round, messages) =
            deliver.expect("tracking digraph for 2 must clear: all holders failed");
        assert_eq!(round, 0);
        assert_eq!(messages.iter().map(|&(o, _)| o).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s0.round(), 1);
        assert!(!s0.is_alive(2), "server 2 tagged failed");
        assert_eq!(s0.alive_members(), &[0, 1][..]);
    }

    #[test]
    fn late_failure_notification_carried_to_next_round() {
        // Server 2 broadcasts, then fails: the round delivers all three
        // messages, and the (2, detector) notification is carried over and
        // re-sent in round 1.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s0 = Server::new(cfg, 0);
        let mut acts = Vec::new();
        s0.handle_into(Event::ABroadcast(payload(0)), &mut acts);
        s0.handle_into(
            Event::Receive {
                from: 2,
                msg: Message::Bcast { round: 0, origin: 2, payload: payload(2) },
            },
            &mut acts,
        );
        s0.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
        acts.clear();
        s0.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(1) },
            },
            &mut acts,
        );
        // All three messages present; tracking for 2 cleared by receipt;
        // delivery includes m2 even though 2 is suspected.
        let deliver = acts.iter().find_map(|a| match a {
            Action::Deliver { messages, .. } => Some(messages.len()),
            _ => None,
        });
        assert_eq!(deliver, Some(3));
        assert_eq!(s0.round(), 1);
        assert!(s0.is_alive(2), "message delivered → not tagged this round");
        // The carried notification must have been re-sent in round 1.
        let carried: Vec<_> = acts
            .iter()
            .filter(|a| {
                matches!(a, Action::Send { msg: Message::Fail { round: 1, failed: 2, .. }, .. })
            })
            .collect();
        assert!(!carried.is_empty(), "carry-over FAIL must be resent in round 1: {acts:?}");
    }

    #[test]
    fn reconfigure_resets_state() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg, 3);
        s.handle(Event::ABroadcast(payload(3)));
        let new_cfg = Config::new(Arc::new(gs_digraph(6, 3).unwrap()), 2);
        s.reconfigure(new_cfg, 7);
        assert_eq!(s.round(), 7);
        assert!(!s.has_broadcast());
        assert_eq!(s.alive_members().len(), 6);
    }

    #[test]
    fn space_usage_reflects_state() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg, 0);
        let before = s.space_usage();
        assert_eq!(before.messages, 0);
        assert_eq!(before.tracking_digraphs, 7);
        assert_eq!(before.tracking_vertices, 7);
        s.handle(Event::ABroadcast(payload(0)));
        let after = s.space_usage();
        assert_eq!(after.messages, 1);
        assert_eq!(after.message_bytes, 8);
        assert!(after.graph_bytes > 0);
    }

    #[test]
    fn single_server_cluster_is_trivial() {
        let g = Arc::new(allconcur_graph::digraph::DigraphBuilder::new(1).build());
        let mut s = Server::new(Config::new(g, 0), 0);
        let acts = s.handle(Event::ABroadcast(payload(7)));
        let deliver = acts.iter().find_map(|a| match a {
            Action::Deliver { round, messages } => Some((*round, messages.len())),
            _ => None,
        });
        assert_eq!(deliver, Some((0, 1)));
        assert_eq!(s.round(), 1);
    }

    #[test]
    fn alive_members_cache_tracks_round_advances() {
        // The cached slice must shrink exactly when the overlay view
        // does, and never allocate per call (API returns a borrow).
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s0 = Server::new(cfg, 0);
        assert_eq!(s0.alive_members(), &[0, 1, 2][..]);
        let mut acts = Vec::new();
        s0.handle_into(Event::ABroadcast(payload(0)), &mut acts);
        s0.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(1) },
            },
            &mut acts,
        );
        s0.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
        s0.handle_into(
            Event::Receive { from: 1, msg: Message::Fail { round: 0, failed: 2, detector: 1 } },
            &mut acts,
        );
        assert_eq!(s0.round(), 1);
        assert_eq!(s0.alive_members(), &[0, 1][..]);
        assert_eq!(s0.monitored_predecessors(), &[1][..]);
    }

    // ---- round-window (pipelining) tests --------------------------------

    fn windowed(cfg: Config, w: usize, id: ServerId) -> Server {
        Server::new(cfg.with_round_window(w), id)
    }

    #[test]
    fn submissions_open_rounds_up_to_the_window() {
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s = windowed(cfg, 3, 0);
        let mut acts = Vec::new();
        for k in 0..5u8 {
            s.handle_into(Event::ABroadcast(payload(k)), &mut acts);
        }
        // Three rounds open (window), two payloads queued beyond it.
        assert_eq!(s.open_rounds(), 3);
        assert_eq!(s.queued_payloads(), 2);
        assert_eq!(s.next_unsubmitted_round(), 5);
        // One BCAST per round went out immediately, tagged 0, 1, 2.
        let mut bcast_rounds: Vec<Round> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Send { msg: Message::Bcast { round, origin: 0, .. }, .. } => Some(*round),
                _ => None,
            })
            .collect();
        bcast_rounds.dedup();
        assert_eq!(bcast_rounds, vec![0, 1, 2]);
    }

    #[test]
    fn windowed_rounds_progress_concurrently_and_deliver_in_order() {
        // 2-server complete digraph, window 3: peer messages for rounds
        // 0..3 can be processed before any delivery, and deliveries come
        // out strictly in round order.
        let cfg = Config::new(Arc::new(complete_digraph(2)), 0);
        let mut s = windowed(cfg, 3, 0);
        let mut acts = Vec::new();
        // Peer completes rounds 1 and 2 first — they become Ready.
        for r in [1u64, 2] {
            s.handle_into(
                Event::Receive {
                    from: 1,
                    msg: Message::Bcast { round: r, origin: 1, payload: payload(r as u8) },
                },
                &mut acts,
            );
        }
        assert!(
            !acts.iter().any(|a| matches!(a, Action::Deliver { .. })),
            "no delivery ahead of the frontier: {acts:?}"
        );
        assert_eq!(s.round(), 0, "frontier unmoved");
        assert_eq!(s.open_rounds(), 3);
        // Round 0 completes last: all three deliver, in order.
        acts.clear();
        s.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(0) },
            },
            &mut acts,
        );
        let delivered: Vec<Round> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![0, 1, 2], "in-order cascade: {acts:?}");
        assert_eq!(s.round(), 3);
    }

    #[test]
    fn ready_round_freezes_its_message_set() {
        // Window 2 on a 3-clique: round 1 terminates (via notifications
        // about a crashed server) while round 0 is still gathering; a
        // late BCAST for the frozen round must be dropped, exactly like
        // a post-delivery straggler.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s = windowed(cfg, 2, 0);
        let mut acts = Vec::new();
        // Rounds 0 and 1 both carry our payloads.
        s.handle_into(Event::ABroadcast(payload(0)), &mut acts);
        s.handle_into(Event::ABroadcast(payload(1)), &mut acts);
        // Round 1: peer 1's message arrives; peer 2 is reported failed
        // by peer 1 and by us — round 1 terminates ahead of round 0.
        s.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 1, origin: 1, payload: payload(11) },
            },
            &mut acts,
        );
        s.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
        acts.clear();
        s.handle_into(
            Event::Receive { from: 1, msg: Message::Fail { round: 1, failed: 2, detector: 1 } },
            &mut acts,
        );
        assert!(
            !acts.iter().any(|a| matches!(a, Action::Deliver { .. })),
            "round 1 must wait for the frontier"
        );
        // Round 1 is now frozen: server 2's late round-1 BCAST is dropped.
        let late = Message::Bcast { round: 1, origin: 2, payload: payload(22) };
        assert!(s.handle(Event::Receive { from: 2, msg: late }).is_empty());
        // Round 0 completes (1's message arrives, and peer 1's
        // notification flood for its round 0 lands): both rounds deliver
        // in order, round 1 without m2.
        acts.clear();
        s.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(10) },
            },
            &mut acts,
        );
        s.handle_into(
            Event::Receive { from: 1, msg: Message::Fail { round: 0, failed: 2, detector: 1 } },
            &mut acts,
        );
        let delivered: Vec<(Round, Vec<ServerId>)> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { round, messages } => {
                    Some((*round, messages.iter().map(|&(o, _)| o).collect()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![(0, vec![0, 1]), (1, vec![0, 1])]);
        assert!(!s.is_alive(2));
    }

    #[test]
    fn tagged_server_scrubbed_from_open_rounds() {
        // Window 2 on a 3-clique: server 2's round-1 message is received
        // while round 0 is open; round 0 then agrees *without* m2 and
        // tags server 2 — the already-buffered round-1 message must be
        // scrubbed so round 1 delivers without it.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s = windowed(cfg, 2, 0);
        let mut acts = Vec::new();
        s.handle_into(Event::ABroadcast(payload(0)), &mut acts);
        s.handle_into(Event::ABroadcast(payload(1)), &mut acts);
        // Server 2's round-1 message arrives early (round 1 is open).
        s.handle_into(
            Event::Receive {
                from: 2,
                msg: Message::Bcast { round: 1, origin: 2, payload: payload(21) },
            },
            &mut acts,
        );
        // Round 0: peer 1 delivers its message; server 2 never speaks in
        // round 0 and is reported failed.
        s.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(10) },
            },
            &mut acts,
        );
        s.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
        acts.clear();
        s.handle_into(
            Event::Receive { from: 1, msg: Message::Fail { round: 0, failed: 2, detector: 1 } },
            &mut acts,
        );
        let delivered: Vec<(Round, Vec<ServerId>)> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { round, messages } => {
                    Some((*round, messages.iter().map(|&(o, _)| o).collect()))
                }
                _ => None,
            })
            .collect();
        // Round 0 excludes m2 and tags server 2; the scrub drops its
        // round-1 message, and round 1 (peer 1's slot still open) waits.
        assert_eq!(delivered, vec![(0, vec![0, 1])]);
        assert!(!s.is_alive(2));
        acts.clear();
        s.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 1, origin: 1, payload: payload(11) },
            },
            &mut acts,
        );
        let round1 = acts
            .iter()
            .find_map(|a| match a {
                Action::Deliver { round: 1, messages } => {
                    Some(messages.iter().map(|&(o, _)| o).collect::<Vec<_>>())
                }
                _ => None,
            })
            .expect("round 1 delivers");
        assert_eq!(round1, vec![0, 1], "scrubbed m2 must not resurface");
    }

    #[test]
    fn window_one_matches_sequential_buffering() {
        // At window 1 the windowed machine must behave exactly like the
        // sequential one: future-round messages buffer, submissions
        // beyond the open round queue.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s = Server::new(cfg, 0);
        assert_eq!(s.round_window(), 1);
        s.handle(Event::ABroadcast(payload(0)));
        s.handle(Event::ABroadcast(payload(1)));
        assert_eq!(s.open_rounds(), 1);
        assert_eq!(s.queued_payloads(), 1);
        let fut = Message::Bcast { round: 1, origin: 1, payload: payload(11) };
        assert!(s.handle(Event::Receive { from: 1, msg: fut }).is_empty());
    }

    #[test]
    fn set_round_window_takes_effect_for_new_submissions() {
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s = Server::new(cfg, 0);
        s.handle(Event::ABroadcast(payload(0)));
        s.handle(Event::ABroadcast(payload(1)));
        assert_eq!(s.open_rounds(), 1);
        assert_eq!(s.queued_payloads(), 1);
        s.set_round_window(4);
        // The queued payload stays queued until the next slide, but new
        // submissions can open rounds now.
        s.handle(Event::ABroadcast(payload(2)));
        assert_eq!(s.open_rounds(), 2, "window growth admits a new round");
    }
}
