//! The AllConcur server state machine — Algorithm 1, plus round iteration
//! (§3 "Iterating AllConcur") and the eventually-perfect-FD termination
//! protocol (§3.3.2).
//!
//! [`Server`] is deliberately **transport-agnostic and deterministic**: it
//! consumes [`Event`]s (application broadcasts, received messages, local
//! failure-detector suspicions) and emits [`Action`]s (sends and
//! deliveries). Feeding two servers the same event sequence produces the
//! same actions, which the property tests and the replayable simulator
//! both exploit. The TCP runtime drives the *same* state machine over
//! real sockets.
//!
//! ## Round lifecycle
//!
//! 1. The application submits this round's (possibly empty) payload with
//!    [`Event::ABroadcast`]; a server that receives someone else's
//!    `BCAST` first auto-broadcasts an empty message (Algorithm 1 line
//!    15), so one willing sender suffices to start the round.
//! 2. `BCAST`s flood the overlay with per-origin deduplication;
//!    [`Event::Suspect`] suspicions turn into `FAIL` notifications that
//!    drive the tracking digraphs ([`crate::tracking`]).
//! 3. When every tracking digraph is empty the round terminates: under a
//!    perfect FD the server immediately emits [`Action::Deliver`] with the
//!    message set in deterministic (origin-id) order; under `◇P` it first
//!    runs the FWD/BWD majority-partition protocol.
//! 4. Advancing tags servers whose messages were missing as failed
//!    (removing them from the overlay view), carries the still-relevant
//!    failure notifications into the new round, and re-sends them
//!    (Algorithm 1 lines 9–13).
//!
//! ## Data layout
//!
//! All per-round state is **dense and id-indexed** (ids are `u32 < n`):
//! `M_i` is a `Vec<Option<Bytes>>`, the notification set `F_i` an
//! [`IdPairSet`] bitset, the FWD/BWD votes and suspicion sets [`IdSet`]s,
//! and one pre-allocated tracking digraph per origin is re-armed in place
//! each round. Advancing a round clears this storage instead of
//! reallocating it, and delivery *moves* the round's payloads out of
//! `M_i` instead of cloning them, so a steady-state round performs no
//! per-event heap allocation (measured by the `core_rounds` bench).
//! Every set iterates in ascending id order — the same order the
//! original sorted-map layout produced — so replayable-sim determinism
//! and cross-backend parity are unaffected (golden-transcript test).

use crate::bitset::{IdPairSet, IdSet};
use crate::config::{Config, FdMode};
use crate::message::Message;
use crate::tracking::{TrackingContext, TrackingDigraph};
use crate::{Round, ServerId};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Input to the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The application submits this round's payload (one per round; empty
    /// payloads are fine — §2.3 footnote 2).
    ABroadcast(Bytes),
    /// A message arrived from direct predecessor `from`.
    Receive {
        /// The overlay predecessor the message came from (not necessarily
        /// the origin — messages are flooded).
        from: ServerId,
        /// The message itself.
        msg: Message,
    },
    /// The local failure detector suspects predecessor `suspect` to have
    /// failed. Equivalent to receiving `⟨FAIL, suspect, self⟩` from the
    /// local FD (Algorithm 1 line 21's `k = i` case).
    Suspect {
        /// The suspected predecessor.
        suspect: ServerId,
    },
}

/// Output of the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Hand `msg` to the transport, addressed to overlay neighbour `to`.
    Send {
        /// Destination server.
        to: ServerId,
        /// Message to transmit.
        msg: Message,
    },
    /// Round `round` reached agreement: deliver `messages` to the
    /// application, already in deterministic (origin-id) order. Empty
    /// payloads from servers with nothing to say are included; servers
    /// whose messages are absent have been tagged as failed.
    Deliver {
        /// The completed round.
        round: Round,
        /// `(origin, payload)` pairs, ascending by origin.
        messages: Vec<(ServerId, Bytes)>,
    },
}

/// Termination phase within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Collecting messages and tracking (Algorithm 1 proper).
    Gathering,
    /// `◇P` only: message set decided, awaiting FWD/BWD majority
    /// (§3.3.2).
    Deciding,
}

/// Space-usage snapshot of one server — the data structures of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceUsage {
    /// Bytes held by the overlay digraph `G` (`O(n·d)`).
    pub graph_bytes: usize,
    /// Messages currently in `M_i` (`O(n)`).
    pub messages: usize,
    /// Payload bytes in `M_i`.
    pub message_bytes: usize,
    /// Failure notifications in `F_i` (`O(f·d)`).
    pub fail_notifications: usize,
    /// Live tracking digraphs (`≤ n`, only `O(f)` ever grow).
    pub tracking_digraphs: usize,
    /// Total vertices across tracking digraphs (`O(f²·d)` worst case).
    pub tracking_vertices: usize,
    /// Total edges across tracking digraphs.
    pub tracking_edges: usize,
    /// High-water mark of vertices in any single tracking digraph.
    pub peak_tracking_vertices: usize,
}

/// One AllConcur server (Algorithm 1's `p_i`).
#[derive(Debug, Clone)]
pub struct Server {
    cfg: Config,
    id: ServerId,
    round: Round,
    /// Overlay view: false once a server is tagged failed (line 11).
    alive: Vec<bool>,
    /// Cached ascending list of alive ids (rebuilt on round advance /
    /// reconfiguration) — backs [`Server::alive_members`] without a
    /// per-call allocation.
    alive_ids: Vec<ServerId>,
    /// Alive successors per vertex under the current view; refilled in
    /// place on round advance. Indexed by ServerId.
    succ_view: Vec<Vec<ServerId>>,
    /// Alive predecessors of `self` (transpose successors — also the
    /// targets of `BWD` floods).
    pred_view: Vec<ServerId>,

    // ---- per-round state (dense, id-indexed, reused across rounds) ----
    /// `M_i`: payload by origin (`None` = not yet received).
    msgs: Vec<Option<Bytes>>,
    /// Number of `Some` entries in `msgs`.
    msgs_len: usize,
    /// Total payload bytes in `msgs`.
    msg_bytes: usize,
    /// Whether our own message has been A-broadcast this round.
    own_sent: bool,
    /// `F_i`: (failed, detector) notifications seen this round.
    fails: IdPairSet,
    /// Servers with at least one notification in `F_i`.
    known_failed: IdSet,
    /// Predecessors whose `BCAST`s we ignore (suspected — §3.3.2 rule).
    suspected_preds: IdSet,
    /// `g_i[p*]` for every origin, pre-allocated; `tracking_active`
    /// marks the origins whose message is still outstanding.
    tracking: Vec<TrackingDigraph>,
    tracking_active: IdSet,
    phase: Phase,
    /// `◇P`: servers whose FWD / BWD we have seen this round.
    fwd_seen: IdSet,
    bwd_seen: IdSet,

    /// Application payloads submitted while this round's message was
    /// already out. Popped one per round on advance — *before* buffered
    /// peer messages are replayed, so a queued payload always beats the
    /// line-15 empty-message reaction. This is the paper's request
    /// batching (§5) hoisted into the state machine, where the simulator
    /// and the TCP runtime share it.
    pending_payloads: VecDeque<Bytes>,
    /// Events for rounds we have not reached yet.
    future: BTreeMap<Round, VecDeque<(ServerId, Message)>>,
    /// Drained future-round queues, kept for reuse so pipelined rounds
    /// do not reallocate buffers.
    future_pool: Vec<VecDeque<(ServerId, Message)>>,
    /// Scratch for the notifications carried across a round advance.
    carried_scratch: Vec<(ServerId, ServerId)>,
    /// Peak single-digraph vertex count across the server's lifetime.
    peak_tracking: usize,
    /// Rounds delivered so far.
    rounds_delivered: u64,
}

/// Borrowed view implementing [`TrackingContext`] against the server's
/// round state (disjoint from the tracking digraphs themselves).
struct RoundCtx<'a> {
    succ_view: &'a [Vec<ServerId>],
    fails: &'a IdPairSet,
    known_failed: &'a IdSet,
}

impl TrackingContext for RoundCtx<'_> {
    fn successors(&self, p: ServerId) -> &[ServerId] {
        &self.succ_view[p as usize]
    }
    fn is_known_failed(&self, p: ServerId) -> bool {
        self.known_failed.contains(p)
    }
    fn has_notification(&self, failed: ServerId, detector: ServerId) -> bool {
        self.fails.contains(failed, detector)
    }
}

impl Server {
    /// Create server `id` of a fresh deployment at round 0.
    pub fn new(cfg: Config, id: ServerId) -> Self {
        let n = cfg.n();
        assert!((id as usize) < n, "server id {id} outside configuration of {n}");
        let mut s = Server {
            id,
            round: 0,
            alive: vec![true; n],
            alive_ids: Vec::with_capacity(n),
            succ_view: vec![Vec::new(); n],
            pred_view: Vec::new(),
            msgs: vec![None; n],
            msgs_len: 0,
            msg_bytes: 0,
            own_sent: false,
            fails: IdPairSet::new(n),
            known_failed: IdSet::with_capacity(n),
            suspected_preds: IdSet::with_capacity(n),
            tracking: (0..n as ServerId).map(TrackingDigraph::new).collect(),
            tracking_active: IdSet::with_capacity(n),
            phase: Phase::Gathering,
            fwd_seen: IdSet::with_capacity(n),
            bwd_seen: IdSet::with_capacity(n),
            pending_payloads: VecDeque::new(),
            future: BTreeMap::new(),
            future_pool: Vec::new(),
            carried_scratch: Vec::new(),
            peak_tracking: 0,
            rounds_delivered: 0,
            cfg,
        };
        rebuild_views(&s.cfg, &s.alive, s.id, &mut s.succ_view, &mut s.pred_view, &mut s.alive_ids);
        s.init_tracking();
        s
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Whether the application already A-broadcast this round.
    pub fn has_broadcast(&self) -> bool {
        self.own_sent
    }

    /// Application payloads queued for rounds after this one (submitted
    /// while the current round's message was already out).
    pub fn queued_payloads(&self) -> usize {
        self.pending_payloads.len()
    }

    /// Servers still in the overlay view (not tagged failed), ascending.
    /// Borrows a cache maintained across round advances — no allocation.
    pub fn alive_members(&self) -> &[ServerId] {
        &self.alive_ids
    }

    /// Whether `p` is still in the overlay view.
    pub fn is_alive(&self, p: ServerId) -> bool {
        self.alive[p as usize]
    }

    /// Number of rounds this server has delivered.
    pub fn rounds_delivered(&self) -> u64 {
        self.rounds_delivered
    }

    /// Alive predecessors of this server — the set its failure detector
    /// must monitor (§3.2).
    pub fn monitored_predecessors(&self) -> &[ServerId] {
        &self.pred_view
    }

    /// Table 2 snapshot.
    pub fn space_usage(&self) -> SpaceUsage {
        let (tracking_vertices, tracking_edges) = self
            .tracking_active
            .iter()
            .map(|p| {
                let g = &self.tracking[p as usize];
                (g.vertex_count(), g.edge_count())
            })
            .fold((0, 0), |(v, e), (gv, ge)| (v + gv, e + ge));
        SpaceUsage {
            graph_bytes: self.cfg.graph.memory_bytes(),
            messages: self.msgs_len,
            message_bytes: self.msg_bytes,
            fail_notifications: self.fails.len(),
            tracking_digraphs: self.tracking_active.len(),
            tracking_vertices,
            tracking_edges,
            peak_tracking_vertices: self.peak_tracking,
        }
    }

    /// Replace the configuration (agreed membership change, §3): fresh
    /// overlay, all members alive, per-round state reset, starting at
    /// `round`. Cross-configuration failure notifications are dropped —
    /// the new overlay has different edges, so old (failed, detector)
    /// pairs are meaningless under it. Queued application payloads are
    /// dropped too: they were submitted against the old membership (and
    /// keeping them while `own_sent` resets would let a peer's first
    /// `BCAST` displace them with the line-15 empty reaction); the
    /// application resubmits on the new configuration.
    pub fn reconfigure(&mut self, cfg: Config, round: Round) {
        let n = cfg.n();
        assert!((self.id as usize) < n, "server id lost in reconfiguration");
        self.cfg = cfg;
        self.round = round;
        // Re-size the dense storage for the new membership.
        self.alive.clear();
        self.alive.resize(n, true);
        self.succ_view.resize_with(n, Vec::new);
        self.msgs.clear();
        self.msgs.resize(n, None);
        self.msgs_len = 0;
        self.msg_bytes = 0;
        self.fails.reset(n);
        self.tracking = (0..n as ServerId).map(TrackingDigraph::new).collect();
        rebuild_views(
            &self.cfg,
            &self.alive,
            self.id,
            &mut self.succ_view,
            &mut self.pred_view,
            &mut self.alive_ids,
        );
        self.reset_round_state();
        self.pending_payloads.clear();
        self.future.retain(|&r, _| r >= round);
    }

    /// Feed one event; actions are appended to `out`.
    pub fn handle_into(&mut self, event: Event, out: &mut Vec<Action>) {
        match event {
            Event::ABroadcast(payload) => self.a_broadcast(payload, out),
            Event::Receive { from, msg } => {
                let r = msg.round();
                if r > self.round {
                    match self.future.get_mut(&r) {
                        Some(queue) => queue.push_back((from, msg)),
                        None => {
                            let mut queue = self.future_pool.pop().unwrap_or_default();
                            queue.push_back((from, msg));
                            self.future.insert(r, queue);
                        }
                    }
                } else if r == self.round {
                    self.dispatch(from, msg, out);
                } // stale rounds are dropped: the sender has everything it
                  // needs from us or has tagged us failed (§3).
            }
            Event::Suspect { suspect } => {
                if self.alive[suspect as usize] {
                    debug_assert!(
                        self.cfg.graph.predecessors(self.id).contains(&suspect),
                        "FD suspicion for non-predecessor {suspect}"
                    );
                    self.suspected_preds.insert(suspect);
                    self.handle_fail(suspect, self.id, out);
                }
            }
        }
    }

    /// Feed one event; returns the resulting actions.
    ///
    /// Allocates the action vector per call; hot loops should prefer
    /// [`Server::handle_into`] with a reused scratch vector.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_into(event, &mut out);
        out
    }

    // ---- internals ------------------------------------------------------

    fn init_tracking(&mut self) {
        self.tracking_active.clear();
        for p in 0..self.cfg.n() as ServerId {
            if p != self.id && self.alive[p as usize] {
                self.tracking[p as usize].reset();
                self.tracking_active.insert(p);
            }
        }
    }

    fn reset_round_state(&mut self) {
        for slot in &mut self.msgs {
            *slot = None;
        }
        self.msgs_len = 0;
        self.msg_bytes = 0;
        self.own_sent = false;
        self.fails.clear();
        self.known_failed.clear();
        self.suspected_preds.clear();
        self.phase = Phase::Gathering;
        self.fwd_seen.clear();
        self.bwd_seen.clear();
        self.init_tracking();
    }

    fn send_to_successors(&self, msg: &Message, out: &mut Vec<Action>) {
        for &s in &self.succ_view[self.id as usize] {
            out.push(Action::Send { to: s, msg: msg.clone() });
        }
    }

    fn send_to_predecessors(&self, msg: &Message, out: &mut Vec<Action>) {
        for &p in &self.pred_view {
            out.push(Action::Send { to: p, msg: msg.clone() });
        }
    }

    /// Algorithm 1 lines 1–4.
    ///
    /// One message per server per round: if this round's message already
    /// went out (either an earlier application submission or the reactive
    /// empty broadcast of line 15), the payload queues and opens a later
    /// round — the paper's request-batching flow (§5). Queued payloads
    /// take priority over the reactive empty broadcast when the round
    /// advances, so pipelined submissions are never silently displaced.
    fn a_broadcast(&mut self, payload: Bytes, out: &mut Vec<Action>) {
        if self.own_sent {
            self.pending_payloads.push_back(payload);
            return;
        }
        self.own_sent = true;
        let msg = Message::Bcast { round: self.round, origin: self.id, payload: payload.clone() };
        self.send_to_successors(&msg, out);
        self.insert_msg(self.id, payload);
        self.check_termination(out);
    }

    fn insert_msg(&mut self, origin: ServerId, payload: Bytes) {
        let slot = &mut self.msgs[origin as usize];
        debug_assert!(slot.is_none(), "duplicate insert for origin {origin}");
        self.msgs_len += 1;
        self.msg_bytes += payload.len();
        *slot = Some(payload);
    }

    fn dispatch(&mut self, from: ServerId, msg: Message, out: &mut Vec<Action>) {
        match msg {
            Message::Bcast { origin, payload, .. } => {
                // §3.3.2: after suspecting a predecessor, ignore its
                // messages (except failure notifications) for the round.
                if self.suspected_preds.contains(from) {
                    return;
                }
                self.handle_bcast(origin, payload, out);
            }
            Message::Fail { failed, detector, .. } => self.handle_fail(failed, detector, out),
            Message::Fwd { origin, .. } => self.handle_fwd(origin, out),
            Message::Bwd { origin, .. } => self.handle_bwd(origin, out),
        }
    }

    /// Algorithm 1 lines 14–20.
    fn handle_bcast(&mut self, origin: ServerId, payload: Bytes, out: &mut Vec<Action>) {
        if !self.alive[origin as usize] || self.msgs[origin as usize].is_some() {
            return; // stale origin or duplicate — already forwarded once
        }
        if self.phase == Phase::Deciding {
            return; // ◇P: message set already decided (§3.3.2)
        }
        // Line 15: react with our own (empty) message if we have not
        // broadcast yet; the application can pre-empt this by calling
        // ABroadcast first.
        if !self.own_sent {
            self.a_broadcast(Bytes::new(), out);
        }
        self.insert_msg(origin, payload.clone());
        // Lines 17–18: continue dissemination (only this message is new;
        // everything else was forwarded on first receipt).
        let msg = Message::Bcast { round: self.round, origin, payload };
        self.send_to_successors(&msg, out);
        // Line 19: stop tracking m_origin.
        if self.tracking_active.remove(origin) {
            self.tracking[origin as usize].clear();
        }
        self.check_termination(out);
    }

    /// Algorithm 1 lines 21–41.
    fn handle_fail(&mut self, failed: ServerId, detector: ServerId, out: &mut Vec<Action>) {
        if !self.alive[failed as usize] || self.fails.contains(failed, detector) {
            return; // stale or duplicate — R-broadcast dedup
        }
        // Line 22: disseminate first (R-broadcast).
        let msg = Message::Fail { round: self.round, failed, detector };
        self.send_to_successors(&msg, out);
        // Line 23: record.
        self.fails.insert(failed, detector);
        self.known_failed.insert(failed);
        // Lines 24–40: update every tracking digraph that contains
        // `failed`.
        self.apply_fail_to_tracking(failed, detector);
        self.check_termination(out);
    }

    fn apply_fail_to_tracking(&mut self, failed: ServerId, detector: ServerId) {
        // Split borrows: the digraphs vs the context fields.
        let ctx = RoundCtx {
            succ_view: &self.succ_view,
            fails: &self.fails,
            known_failed: &self.known_failed,
        };
        let mut peak = self.peak_tracking;
        for p in 0..self.tracking.len() {
            if !self.tracking_active.contains(p as ServerId) {
                continue;
            }
            let g = &mut self.tracking[p];
            g.on_failure(failed, detector, &ctx);
            peak = peak.max(g.peak_vertices());
            if g.is_empty() {
                self.tracking_active.remove(p as ServerId);
            }
        }
        self.peak_tracking = peak;
    }

    /// §3.3.2: a server that decided its set floods FWD over `G`.
    fn handle_fwd(&mut self, origin: ServerId, out: &mut Vec<Action>) {
        if self.cfg.fd_mode != FdMode::EventuallyPerfect {
            return;
        }
        if self.fwd_seen.insert(origin) {
            let msg = Message::Fwd { round: self.round, origin };
            self.send_to_successors(&msg, out);
            self.check_decision(out);
        }
    }

    /// §3.3.2: BWD floods over the transpose of `G`.
    fn handle_bwd(&mut self, origin: ServerId, out: &mut Vec<Action>) {
        if self.cfg.fd_mode != FdMode::EventuallyPerfect {
            return;
        }
        if self.bwd_seen.insert(origin) {
            let msg = Message::Bwd { round: self.round, origin };
            self.send_to_predecessors(&msg, out);
            self.check_decision(out);
        }
    }

    /// Algorithm 1 lines 5–13 (plus the ◇P decision hand-off).
    fn check_termination(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::Gathering || !self.tracking_active.is_empty() {
            return;
        }
        // Validity guard: our own message must be part of the set. The
        // check is implicit in Algorithm 1 (M_i always contains m_i by
        // the time every other digraph empties) but explicit here because
        // the application drives A-broadcast.
        if !self.own_sent {
            return;
        }
        match self.cfg.fd_mode {
            FdMode::Perfect => self.deliver_and_advance(out),
            FdMode::EventuallyPerfect => {
                self.phase = Phase::Deciding;
                // R-broadcast ⟨FWD, p_i⟩ over G and ⟨BWD, p_i⟩ over G^T.
                self.fwd_seen.insert(self.id);
                self.bwd_seen.insert(self.id);
                let fwd = Message::Fwd { round: self.round, origin: self.id };
                self.send_to_successors(&fwd, out);
                let bwd = Message::Bwd { round: self.round, origin: self.id };
                self.send_to_predecessors(&bwd, out);
                self.check_decision(out);
            }
        }
    }

    /// §3.3.2: deliver once ⌊n/2⌋ *other* servers are known to share our
    /// set in both directions (FWD: theirs ⊆ ours; BWD: ours ⊆ theirs) —
    /// a strict majority including ourselves.
    fn check_decision(&mut self, out: &mut Vec<Action>) {
        if self.phase != Phase::Deciding {
            return;
        }
        let n = self.alive_ids.len();
        // In the Deciding phase both sets contain `self` (inserted at the
        // phase hand-off), so the word-wise intersection overcounts the
        // "other servers" tally by exactly one.
        let both = self.fwd_seen.intersection_len(&self.bwd_seen) - 1;
        if both >= n / 2 {
            self.deliver_and_advance(out);
        }
    }

    fn deliver_and_advance(&mut self, out: &mut Vec<Action>) {
        // Deliver sort(M_i): ascending-origin scan of the dense slots,
        // *moving* each payload out instead of cloning it (the round
        // state is reset below anyway). Lines 9–11 fold into the same
        // sweep: an alive server with no message is tagged failed.
        let mut messages: Vec<(ServerId, Bytes)> = Vec::with_capacity(self.msgs_len);
        for p in 0..self.cfg.n() {
            match self.msgs[p].take() {
                Some(payload) => messages.push((p as ServerId, payload)),
                None => {
                    if self.alive[p] {
                        self.alive[p] = false;
                    }
                }
            }
        }
        self.msgs_len = 0;
        self.msg_bytes = 0;
        out.push(Action::Deliver { round: self.round, messages });
        self.rounds_delivered += 1;

        // Lines 12–13: keep notifications about still-alive servers (they
        // failed *after* A-broadcasting; the new round must know).
        let mut carried = std::mem::take(&mut self.carried_scratch);
        carried.clear();
        carried.extend(self.fails.iter().filter(|&(p, _)| self.alive[p as usize]));

        // Enter the next round under the shrunken overlay view.
        self.round += 1;
        rebuild_views(
            &self.cfg,
            &self.alive,
            self.id,
            &mut self.succ_view,
            &mut self.pred_view,
            &mut self.alive_ids,
        );
        self.reset_round_state();

        // Re-derive the ignore-rule for predecessors we ourselves
        // suspected, then replay the carried notifications: batch-insert
        // first so expansions see the full refutation set, then update
        // tracking and resend under the new round's tag.
        for &(p, det) in carried.iter() {
            if det == self.id {
                self.suspected_preds.insert(p);
            }
            self.fails.insert(p, det);
            self.known_failed.insert(p);
        }
        for &(p, det) in carried.iter() {
            let msg = Message::Fail { round: self.round, failed: p, detector: det };
            self.send_to_successors(&msg, out);
            self.apply_fail_to_tracking(p, det);
        }
        self.carried_scratch = carried;
        // The carried notifications alone may already settle the round's
        // tracking state for long-dead senders, but delivery still waits
        // for our own A-broadcast (the application drives it).

        // A queued application payload opens the new round *before* any
        // buffered peer messages replay, so it cannot be displaced by the
        // line-15 empty reaction. (May recurse into another advance when
        // everything else already settled.)
        if let Some(payload) = self.pending_payloads.pop_front() {
            self.a_broadcast(payload, out);
        }

        // Drain any buffered events that now belong to the current round.
        self.drain_future(out);
    }

    fn drain_future(&mut self, out: &mut Vec<Action>) {
        // Delivering inside the drain can advance the round again, so
        // loop until no buffered events remain for the current round.
        loop {
            let Some(mut queue) = self.future.remove(&self.round) else { return };
            let round_before = self.round;
            while let Some((from, msg)) = queue.pop_front() {
                self.dispatch(from, msg, out);
                if self.round != round_before {
                    // Advanced mid-drain; remaining messages are stale for
                    // the new round only if tagged older — they are all
                    // tagged `round_before`, so drop them.
                    break;
                }
            }
            queue.clear();
            self.future_pool.push(queue);
            if self.round == round_before {
                return;
            }
        }
    }
}

/// Refill (successor view, self's predecessor view, alive-id cache) in
/// place under an alive mask: dead servers keep their vertex ids but
/// lose every edge. A free function over disjoint `Server` fields so the
/// per-round rebuild borrows cleanly and reuses the existing buffers.
fn rebuild_views(
    cfg: &Config,
    alive: &[bool],
    id: ServerId,
    succ: &mut [Vec<ServerId>],
    pred: &mut Vec<ServerId>,
    alive_ids: &mut Vec<ServerId>,
) {
    let n = cfg.n();
    for v in 0..n {
        succ[v].clear();
        if !alive[v] {
            continue;
        }
        succ[v].extend(
            cfg.graph.successors(v as ServerId).iter().copied().filter(|&s| alive[s as usize]),
        );
    }
    pred.clear();
    pred.extend(cfg.graph.predecessors(id).iter().copied().filter(|&p| alive[p as usize]));
    alive_ids.clear();
    alive_ids.extend((0..n as ServerId).filter(|&p| alive[p as usize]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use allconcur_graph::gs::gs_digraph;
    use allconcur_graph::standard::complete_digraph;
    use std::sync::Arc;

    fn cfg_gs83() -> Config {
        Config::new(Arc::new(gs_digraph(8, 3).unwrap()), 2)
    }

    fn payload(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 8])
    }

    /// Drive a full failure-free round by hand-delivering every Send.
    /// Returns per-server delivered message vectors.
    fn run_lockstep_round(cfg: &Config) -> Vec<Vec<(ServerId, Bytes)>> {
        let n = cfg.n();
        let mut servers: Vec<Server> =
            (0..n as ServerId).map(|i| Server::new(cfg.clone(), i)).collect();
        let mut inbox: VecDeque<(ServerId, ServerId, Message)> = VecDeque::new();
        let mut delivered: Vec<Vec<(ServerId, Bytes)>> = vec![Vec::new(); n];

        for i in 0..n as ServerId {
            for a in servers[i as usize].handle(Event::ABroadcast(payload(i as u8))) {
                match a {
                    Action::Send { to, msg } => inbox.push_back((i, to, msg)),
                    Action::Deliver { .. } => unreachable!("cannot deliver before dissemination"),
                }
            }
        }
        while let Some((from, to, msg)) = inbox.pop_front() {
            for a in servers[to as usize].handle(Event::Receive { from, msg }) {
                match a {
                    Action::Send { to: t2, msg } => inbox.push_back((to, t2, msg)),
                    Action::Deliver { messages, .. } => delivered[to as usize] = messages,
                }
            }
        }
        delivered
    }

    #[test]
    fn failure_free_round_delivers_everything_everywhere() {
        let cfg = cfg_gs83();
        let delivered = run_lockstep_round(&cfg);
        for (i, msgs) in delivered.iter().enumerate() {
            assert_eq!(msgs.len(), 8, "server {i} delivered {} messages", msgs.len());
            // Total order: identical ordered vector everywhere.
            assert_eq!(msgs, &delivered[0], "server {i} delivered a different sequence");
            // Deterministic order = ascending origin.
            let origins: Vec<ServerId> = msgs.iter().map(|&(o, _)| o).collect();
            assert_eq!(origins, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_payloads_are_delivered() {
        let cfg = Config::new(Arc::new(complete_digraph(4)), 1);
        let mut servers: Vec<Server> = (0..4).map(|i| Server::new(cfg.clone(), i)).collect();
        let mut inbox: VecDeque<(ServerId, ServerId, Message)> = VecDeque::new();
        // Only server 0 has something to say; 1–3 stay reactive.
        for a in servers[0].handle(Event::ABroadcast(payload(9))) {
            if let Action::Send { to, msg } = a {
                inbox.push_back((0, to, msg));
            }
        }
        let mut delivered = vec![Vec::new(); 4];
        while let Some((from, to, msg)) = inbox.pop_front() {
            for a in servers[to as usize].handle(Event::Receive { from, msg }) {
                match a {
                    Action::Send { to: t, msg } => inbox.push_back((to, t, msg)),
                    Action::Deliver { messages, .. } => delivered[to as usize] = messages,
                }
            }
        }
        // Servers 1..3 delivered 4 messages (3 empty), all identical; but
        // server 0 may still be waiting for nothing — it delivered too
        // since its own broadcast happened first.
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.len(), 4, "server {i}");
            assert_eq!(d[0].1, payload(9));
            assert!(d[1].1.is_empty() && d[2].1.is_empty() && d[3].1.is_empty());
        }
    }

    #[test]
    fn duplicate_bcast_not_reforwarded() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg.clone(), 0);
        s.handle(Event::ABroadcast(Bytes::new()));
        let pred = cfg.graph.predecessors(0)[0];
        let msg = Message::Bcast { round: 0, origin: 5, payload: Bytes::new() };
        let first = s.handle(Event::Receive { from: pred, msg: msg.clone() });
        assert!(first.iter().any(|a| matches!(a, Action::Send { .. })));
        let second = s.handle(Event::Receive { from: pred, msg });
        assert!(second.is_empty(), "duplicate must be ignored: {second:?}");
    }

    #[test]
    fn suspect_generates_fail_flood() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg.clone(), 0);
        let suspect = cfg.graph.predecessors(0)[0];
        let actions = s.handle(Event::Suspect { suspect });
        let sends: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg: Message::Fail { failed, detector, round } } => {
                    Some((*to, *failed, *detector, *round))
                }
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), cfg.graph.out_degree(0));
        for (_, failed, detector, round) in sends {
            assert_eq!(failed, suspect);
            assert_eq!(detector, 0);
            assert_eq!(round, 0);
        }
    }

    #[test]
    fn bcast_from_suspected_predecessor_is_ignored() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg.clone(), 0);
        s.handle(Event::ABroadcast(Bytes::new()));
        let suspect = cfg.graph.predecessors(0)[0];
        s.handle(Event::Suspect { suspect });
        let msg = Message::Bcast { round: 0, origin: suspect, payload: Bytes::new() };
        let actions = s.handle(Event::Receive { from: suspect, msg });
        assert!(actions.is_empty(), "suspected predecessor's BCAST must be dropped");
    }

    #[test]
    fn future_round_messages_are_buffered() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg.clone(), 0);
        let pred = cfg.graph.predecessors(0)[0];
        let future_msg = Message::Bcast { round: 1, origin: 5, payload: payload(5) };
        let actions = s.handle(Event::Receive { from: pred, msg: future_msg });
        assert!(actions.is_empty(), "round-1 message must be buffered at round 0");
        assert_eq!(s.round(), 0);
    }

    #[test]
    fn stale_round_messages_are_dropped() {
        // Drive a full round on a complete digraph, then replay a round-0
        // message: it must be ignored.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut servers: Vec<Server> = (0..3).map(|i| Server::new(cfg.clone(), i)).collect();
        let mut inbox: VecDeque<(ServerId, ServerId, Message)> = VecDeque::new();
        for i in 0..3u32 {
            for a in servers[i as usize].handle(Event::ABroadcast(Bytes::new())) {
                if let Action::Send { to, msg } = a {
                    inbox.push_back((i, to, msg));
                }
            }
        }
        while let Some((from, to, msg)) = inbox.pop_front() {
            for a in servers[to as usize].handle(Event::Receive { from, msg }) {
                if let Action::Send { to: t, msg } = a {
                    inbox.push_back((to, t, msg));
                }
            }
        }
        assert_eq!(servers[0].round(), 1);
        let stale = Message::Bcast { round: 0, origin: 1, payload: Bytes::new() };
        assert!(servers[0].handle(Event::Receive { from: 1, msg: stale }).is_empty());
    }

    #[test]
    fn no_delivery_before_own_broadcast() {
        // Server 2 in a 2-ring... use complete_digraph(2): server 1 gets
        // server 0's message but must not deliver before its own
        // A-broadcast — which line 15 triggers automatically, so delivery
        // happens but includes server 1's empty message.
        let cfg = Config::new(Arc::new(complete_digraph(2)), 0);
        let mut s1 = Server::new(cfg, 1);
        let msg = Message::Bcast { round: 0, origin: 0, payload: payload(1) };
        let actions = s1.handle(Event::Receive { from: 0, msg });
        let deliver = actions.iter().find_map(|a| match a {
            Action::Deliver { messages, .. } => Some(messages.clone()),
            _ => None,
        });
        let messages = deliver.expect("round complete for n=2");
        assert_eq!(messages.len(), 2);
        assert_eq!(messages[0].0, 0);
        assert_eq!(messages[1].0, 1);
        assert!(messages[1].1.is_empty(), "auto-broadcast is empty");
    }

    #[test]
    fn failed_server_tagged_and_removed_next_round() {
        // Complete digraph n=3; server 2 never broadcasts and is reported
        // failed by everyone. Servers 0/1 must deliver without m2 and tag
        // server 2 as failed.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s0 = Server::new(cfg.clone(), 0);
        let mut acts = Vec::new();
        s0.handle_into(Event::ABroadcast(payload(0)), &mut acts);
        s0.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(1) },
            },
            &mut acts,
        );
        // FD: suspect 2; also receive server 1's notification about 2.
        s0.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
        acts.clear();
        s0.handle_into(
            Event::Receive { from: 1, msg: Message::Fail { round: 0, failed: 2, detector: 1 } },
            &mut acts,
        );
        let deliver = acts.iter().find_map(|a| match a {
            Action::Deliver { round, messages } => Some((*round, messages.clone())),
            _ => None,
        });
        let (round, messages) =
            deliver.expect("tracking digraph for 2 must clear: all holders failed");
        assert_eq!(round, 0);
        assert_eq!(messages.iter().map(|&(o, _)| o).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s0.round(), 1);
        assert!(!s0.is_alive(2), "server 2 tagged failed");
        assert_eq!(s0.alive_members(), &[0, 1][..]);
    }

    #[test]
    fn late_failure_notification_carried_to_next_round() {
        // Server 2 broadcasts, then fails: the round delivers all three
        // messages, and the (2, detector) notification is carried over and
        // re-sent in round 1.
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s0 = Server::new(cfg, 0);
        let mut acts = Vec::new();
        s0.handle_into(Event::ABroadcast(payload(0)), &mut acts);
        s0.handle_into(
            Event::Receive {
                from: 2,
                msg: Message::Bcast { round: 0, origin: 2, payload: payload(2) },
            },
            &mut acts,
        );
        s0.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
        acts.clear();
        s0.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(1) },
            },
            &mut acts,
        );
        // All three messages present; tracking for 2 cleared by receipt;
        // delivery includes m2 even though 2 is suspected.
        let deliver = acts.iter().find_map(|a| match a {
            Action::Deliver { messages, .. } => Some(messages.len()),
            _ => None,
        });
        assert_eq!(deliver, Some(3));
        assert_eq!(s0.round(), 1);
        assert!(s0.is_alive(2), "message delivered → not tagged this round");
        // The carried notification must have been re-sent in round 1.
        let carried: Vec<_> = acts
            .iter()
            .filter(|a| {
                matches!(a, Action::Send { msg: Message::Fail { round: 1, failed: 2, .. }, .. })
            })
            .collect();
        assert!(!carried.is_empty(), "carry-over FAIL must be resent in round 1: {acts:?}");
    }

    #[test]
    fn reconfigure_resets_state() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg, 3);
        s.handle(Event::ABroadcast(payload(3)));
        let new_cfg = Config::new(Arc::new(gs_digraph(6, 3).unwrap()), 2);
        s.reconfigure(new_cfg, 7);
        assert_eq!(s.round(), 7);
        assert!(!s.has_broadcast());
        assert_eq!(s.alive_members().len(), 6);
    }

    #[test]
    fn space_usage_reflects_state() {
        let cfg = cfg_gs83();
        let mut s = Server::new(cfg, 0);
        let before = s.space_usage();
        assert_eq!(before.messages, 0);
        assert_eq!(before.tracking_digraphs, 7);
        assert_eq!(before.tracking_vertices, 7);
        s.handle(Event::ABroadcast(payload(0)));
        let after = s.space_usage();
        assert_eq!(after.messages, 1);
        assert_eq!(after.message_bytes, 8);
        assert!(after.graph_bytes > 0);
    }

    #[test]
    fn single_server_cluster_is_trivial() {
        let g = Arc::new(allconcur_graph::digraph::DigraphBuilder::new(1).build());
        let mut s = Server::new(Config::new(g, 0), 0);
        let acts = s.handle(Event::ABroadcast(payload(7)));
        let deliver = acts.iter().find_map(|a| match a {
            Action::Deliver { round, messages } => Some((*round, messages.len())),
            _ => None,
        });
        assert_eq!(deliver, Some((0, 1)));
        assert_eq!(s.round(), 1);
    }

    #[test]
    fn alive_members_cache_tracks_round_advances() {
        // The cached slice must shrink exactly when the overlay view
        // does, and never allocate per call (API returns a borrow).
        let cfg = Config::new(Arc::new(complete_digraph(3)), 1);
        let mut s0 = Server::new(cfg, 0);
        assert_eq!(s0.alive_members(), &[0, 1, 2][..]);
        let mut acts = Vec::new();
        s0.handle_into(Event::ABroadcast(payload(0)), &mut acts);
        s0.handle_into(
            Event::Receive {
                from: 1,
                msg: Message::Bcast { round: 0, origin: 1, payload: payload(1) },
            },
            &mut acts,
        );
        s0.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
        s0.handle_into(
            Event::Receive { from: 1, msg: Message::Fail { round: 0, failed: 2, detector: 1 } },
            &mut acts,
        );
        assert_eq!(s0.round(), 1);
        assert_eq!(s0.alive_members(), &[0, 1][..]);
        assert_eq!(s0.monitored_predecessors(), &[1][..]);
    }
}
