//! Tracking digraphs — the data structure behind early termination (§2.3,
//! Algorithm 1 lines 21–41).
//!
//! Server `p_i` keeps one tracking digraph `g_i[p*]` per server `p*` whose
//! round-`R` message `m*` it has not yet received. The digraph
//! *over-approximates* the possible whereabouts of `m*`:
//!
//! * vertices — servers that (for all `p_i` knows) may hold `m*`;
//! * an edge `(p_j, p_k)` — `p_i`'s suspicion that `p_k` received `m*`
//!   directly from `p_j`.
//!
//! Failure notifications drive the digraph:
//!
//! * the first notification involving a tracked vertex `p_j` with no
//!   successors yet *expands* the digraph — `p_j` may have managed to send
//!   `m*` to any successor before dying (except the notifier, who by FIFO
//!   order would have relayed `m*` before the notification) — recursing
//!   through successors already known to have failed (lines 26–34);
//! * a later notification `(p_j, p_k)` *refutes* the edge `(p_j, p_k)`:
//!   had `p_k` received `m*` from `p_j`, it would have forwarded `m*`
//!   before notifying (lines 35–36);
//! * pruning removes vertices no longer reachable from `p*` (they cannot
//!   have received `m*` — line 37) and clears the digraph entirely when
//!   every remaining vertex is known to have failed: no non-faulty server
//!   holds `m*`, so nobody will ever deliver it (lines 39–40).
//!
//! `p_i` stops tracking `m*` the moment it receives it (line 19). The
//! round terminates when **all** tracking digraphs are empty (line 6).
//!
//! Per Table 2 the digraphs stay small — `O(f·d)` vertices each, and only
//! `O(f)` of them ever grow beyond one vertex — so the layout is **dense**:
//! a vertex bitset plus one adjacency bitset row per vertex (ids are dense
//! `u32 < n`). Membership tests and refutations are single word ops,
//! iteration is ascending-id (the same deterministic order the previous
//! sorted-map layout produced), and `reset` reuses every allocation so a
//! server's per-round re-initialisation costs no allocator traffic.

use crate::bitset::IdSet;
use crate::ServerId;

/// Interface the tracking logic needs from the rest of the server state.
/// Implemented by the round state in [`crate::server`]; kept as a trait so
/// the tracking digraph can be unit-tested in isolation.
pub trait TrackingContext {
    /// Successors of `p` in the current overlay view (alive members only —
    /// dead servers keep their vertex but lose their edges).
    fn successors(&self, p: ServerId) -> &[ServerId];
    /// Whether any failure notification `(p, *)` has been received this
    /// round, i.e. `p` is known to have failed.
    fn is_known_failed(&self, p: ServerId) -> bool;
    /// Whether the specific notification `(failed, detector)` has been
    /// received this round (the `F_i` set).
    fn has_notification(&self, failed: ServerId, detector: ServerId) -> bool;
}

/// The tracking digraph `g_i[p*]` for one tracked origin `p*`.
///
/// Dense layout: `verts` is the vertex set; `adj[v]` the successor set of
/// vertex `v`. Invariant: the adjacency row of a non-vertex is empty, so
/// edge iteration over `verts` sees exactly the digraph's edges. All
/// iteration is ascending-id, keeping the whole server state machine
/// reproducible (the simulator's replayable runs and the golden-transcript
/// test rely on it).
#[derive(Debug, Clone)]
pub struct TrackingDigraph {
    /// The tracked origin `p*`.
    origin: ServerId,
    /// Vertex set.
    verts: IdSet,
    /// Adjacency rows, indexed by vertex id; rows grow on demand and are
    /// kept (cleared) across rounds.
    adj: Vec<IdSet>,
    /// Number of edges (maintained incrementally).
    edges: usize,
    /// Peak vertex count reached — Table 2 instrumentation.
    peak_vertices: usize,
    /// Scratch for the expansion BFS (reused across notifications).
    bfs_queue: Vec<(ServerId, ServerId)>,
    /// Scratch for the pruning reachability sweep.
    reachable: IdSet,
    prune_queue: Vec<ServerId>,
}

impl TrackingDigraph {
    /// Fresh digraph: `V = {p*}`, no edges (Algorithm 1's INIT).
    pub fn new(origin: ServerId) -> Self {
        let mut verts = IdSet::new();
        verts.insert(origin);
        TrackingDigraph {
            origin,
            verts,
            adj: Vec::new(),
            edges: 0,
            peak_vertices: 1,
            bfs_queue: Vec::new(),
            reachable: IdSet::new(),
            prune_queue: Vec::new(),
        }
    }

    /// Re-initialise to the fresh `V = {p*}` state, reusing all storage —
    /// the per-round reset path (the peak survives; it is a lifetime
    /// high-water mark).
    pub fn reset(&mut self) {
        for v in self.verts.iter() {
            // By the row invariant only current vertices can own edges.
            if let Some(row) = self.adj.get_mut(v as usize) {
                row.clear();
            }
        }
        self.verts.clear();
        self.verts.insert(self.origin);
        self.edges = 0;
    }

    /// The tracked origin `p*`.
    pub fn origin(&self) -> ServerId {
        self.origin
    }

    /// Whether the digraph has been emptied — either `m*` was received or
    /// no non-faulty server can hold it.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Current vertex count.
    pub fn vertex_count(&self) -> usize {
        self.verts.len()
    }

    /// Current edge count.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Largest vertex count this digraph ever reached (Table 2).
    pub fn peak_vertices(&self) -> usize {
        self.peak_vertices
    }

    /// Whether `p` is currently a vertex.
    pub fn contains(&self, p: ServerId) -> bool {
        self.verts.contains(p)
    }

    /// Whether the edge `(a, b)` is present.
    pub fn has_edge(&self, a: ServerId, b: ServerId) -> bool {
        self.adj.get(a as usize).is_some_and(|row| row.contains(b))
    }

    /// Stop tracking entirely (message received, or give-up rule).
    pub fn clear(&mut self) {
        for v in self.verts.iter() {
            if let Some(row) = self.adj.get_mut(v as usize) {
                row.clear();
            }
        }
        self.verts.clear();
        self.edges = 0;
    }

    fn row_mut(&mut self, v: ServerId) -> &mut IdSet {
        let idx = v as usize;
        if idx >= self.adj.len() {
            self.adj.resize_with(idx + 1, IdSet::new);
        }
        &mut self.adj[idx]
    }

    fn insert_edge(&mut self, a: ServerId, b: ServerId) -> bool {
        let fresh = self.row_mut(a).insert(b);
        self.edges += usize::from(fresh);
        fresh
    }

    /// Process the failure notification `(failed, detector)` —
    /// Algorithm 1 lines 24–40. Returns `true` if the digraph changed.
    ///
    /// `ctx` supplies the overlay and the notification set `F_i`
    /// (*including* the notification being processed, which Algorithm 1
    /// inserts at line 23 before touching the digraphs).
    pub fn on_failure<C: TrackingContext>(
        &mut self,
        failed: ServerId,
        detector: ServerId,
        ctx: &C,
    ) -> bool {
        if self.is_empty() || !self.contains(failed) {
            return false;
        }
        let had_successors = self.adj.get(failed as usize).is_some_and(|row| !row.is_empty());
        let mut changed = false;

        if !had_successors {
            // Expansion (lines 26–34): `failed` may have sent m* to any
            // successor before dying. BFS through successors that are
            // themselves already known failed. Two exclusions apply: the
            // notifying detector cannot have received m* from `failed`
            // (FIFO channels — it would have relayed m* first), and any
            // (src, dst) pair already refuted by a notification in F_i.
            let mut queue = std::mem::take(&mut self.bfs_queue);
            queue.clear();
            for &p in ctx.successors(failed) {
                if p != detector && !ctx.has_notification(failed, p) {
                    queue.push((failed, p));
                }
            }
            let mut head = 0;
            while head < queue.len() {
                let (src, dst) = queue[head];
                head += 1;
                if !self.contains(dst) {
                    self.verts.insert(dst);
                    self.row_mut(dst).clear();
                    changed = true;
                    if ctx.is_known_failed(dst) {
                        // dst may have relayed m* before failing in turn.
                        for &ps in ctx.successors(dst) {
                            if !ctx.has_notification(dst, ps) {
                                queue.push((dst, ps));
                            }
                        }
                    }
                }
                changed |= self.insert_edge(src, dst);
            }
            self.bfs_queue = queue;
        } else if self.has_edge(failed, detector) {
            // Refutation (lines 35–36): detector has not received m*
            // from `failed`.
            self.adj[failed as usize].remove(detector);
            self.edges -= 1;
            changed = true;
        }

        if changed {
            self.prune(ctx);
            self.peak_vertices = self.peak_vertices.max(self.verts.len());
        }
        changed
    }

    /// Pruning (lines 37–40): drop vertices unreachable from `p*`, then
    /// clear entirely if every surviving vertex is known to have failed.
    fn prune<C: TrackingContext>(&mut self, ctx: &C) {
        if self.verts.is_empty() {
            return;
        }
        if !self.contains(self.origin) {
            // p* was never removable while present; if it is gone the
            // whole digraph is unreachable.
            self.clear();
            return;
        }
        // Reachability from p*.
        let mut reachable = std::mem::take(&mut self.reachable);
        let mut queue = std::mem::take(&mut self.prune_queue);
        reachable.clear();
        queue.clear();
        reachable.insert(self.origin);
        queue.push(self.origin);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            if let Some(row) = self.adj.get(u as usize) {
                for v in row.iter() {
                    if reachable.insert(v) {
                        queue.push(v);
                    }
                }
            }
        }
        if reachable.len() != self.verts.len() {
            // Clear the rows of vertices about to drop (row invariant),
            // then intersect the vertex set and every surviving row.
            for v in self.verts.iter() {
                if !reachable.contains(v) {
                    if let Some(row) = self.adj.get_mut(v as usize) {
                        row.clear();
                    }
                }
            }
            self.verts.intersect_with(&reachable);
            let mut edges = 0;
            for v in self.verts.iter() {
                if let Some(row) = self.adj.get_mut(v as usize) {
                    row.intersect_with(&reachable);
                    edges += row.len();
                }
            }
            self.edges = edges;
        }
        self.reachable = reachable;
        self.prune_queue = queue;
        // Give-up rule: all remaining holders are dead — m* is lost.
        if self.verts.iter().all(|p| ctx.is_known_failed(p)) {
            self.clear();
        }
    }

    /// Vertices currently tracked (sorted). Exposed for tests and
    /// instrumentation.
    pub fn vertices(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.verts.iter()
    }

    /// Edges currently tracked (sorted). Exposed for tests and
    /// instrumentation.
    pub fn edges(&self) -> impl Iterator<Item = (ServerId, ServerId)> + '_ {
        self.verts.iter().flat_map(move |u| {
            self.adj
                .get(u as usize)
                .into_iter()
                .flat_map(move |row| row.iter().map(move |v| (u, v)))
        })
    }

    /// Approximate heap usage in bytes (Table 2 instrumentation) —
    /// counts logical entries, matching the pre-dense accounting so the
    /// Table 2 series stays comparable across PRs.
    pub fn memory_bytes(&self) -> usize {
        self.verts.len() * 16 + self.edge_count() * 4
    }
}

/// Logical graph equality: same origin, vertex set, edges, and peak.
/// Scratch buffers and row capacity are excluded.
impl PartialEq for TrackingDigraph {
    fn eq(&self, other: &TrackingDigraph) -> bool {
        self.origin == other.origin
            && self.peak_vertices == other.peak_vertices
            && self.verts == other.verts
            && self.edges == other.edges
            && self.edges().eq(other.edges())
    }
}

impl Eq for TrackingDigraph {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    /// A test context over an explicit successor map.
    struct Ctx {
        succ: BTreeMap<ServerId, Vec<ServerId>>,
        notifications: BTreeSet<(ServerId, ServerId)>,
    }

    impl Ctx {
        fn new(edges: &[(ServerId, &[ServerId])]) -> Self {
            let succ = edges.iter().map(|&(p, s)| (p, s.to_vec())).collect();
            Ctx { succ, notifications: BTreeSet::new() }
        }
        fn notify(&mut self, failed: ServerId, detector: ServerId) {
            self.notifications.insert((failed, detector));
        }
    }

    impl TrackingContext for Ctx {
        fn successors(&self, p: ServerId) -> &[ServerId] {
            self.succ.get(&p).map(|v| v.as_slice()).unwrap_or(&[])
        }
        fn is_known_failed(&self, p: ServerId) -> bool {
            self.notifications.iter().any(|&(f, _)| f == p)
        }
        fn has_notification(&self, failed: ServerId, detector: ServerId) -> bool {
            self.notifications.contains(&(failed, detector))
        }
    }

    /// Binomial-graph successors for the paper's 9-server example (§2.3,
    /// Fig. 2): p_i connects to i ± {1, 2, 4} mod 9.
    fn binomial9() -> Ctx {
        let mut edges: Vec<(ServerId, Vec<ServerId>)> = Vec::new();
        for i in 0..9u32 {
            let mut s: Vec<ServerId> = [1u32, 2, 4, 5, 7, 8] // ±1,±2,±4 mod 9
                .iter()
                .map(|&o| (i + o) % 9)
                .collect();
            s.sort_unstable();
            edges.push((i, s));
        }
        Ctx { succ: edges.into_iter().collect(), notifications: BTreeSet::new() }
    }

    #[test]
    fn fresh_digraph_tracks_origin_only() {
        let g = TrackingDigraph::new(4);
        assert!(!g.is_empty());
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.contains(4));
    }

    #[test]
    fn paper_figure2_walkthrough() {
        // Fig. 2b, server p6 tracking m0 through failures of p0 and p1.
        let mut ctx = binomial9();
        let mut g0 = TrackingDigraph::new(0);
        let mut g1 = TrackingDigraph::new(1);

        // ⟨FAIL, p0, p2⟩: g6[p0] expands with p0's successors except p2.
        ctx.notify(0, 2);
        assert!(g0.on_failure(0, 2, &ctx));
        let vs: Vec<_> = g0.vertices().collect();
        assert_eq!(vs, vec![0, 1, 4, 5, 7, 8], "p0's successors minus p2, plus p0");
        assert!(g0.has_edge(0, 1));
        assert!(!g0.contains(2));
        // g6[p1] untouched: p0 is not a vertex of g6[p1].
        assert!(!g1.on_failure(0, 2, &ctx));
        assert_eq!(g1.vertex_count(), 1);

        // ⟨FAIL, p0, p5⟩: refutes edge (p0, p5); p5 pruned (unreachable).
        ctx.notify(0, 5);
        assert!(g0.on_failure(0, 5, &ctx));
        assert!(!g0.contains(5));
        assert!(!g0.has_edge(0, 5));

        // ⟨FAIL, p1, p3⟩: g6[p1] expands with p1's successors except p3,
        // recursing through p0 (already known failed) while skipping the
        // already-refuted pairs (p0,p2) and (p0,p5).
        ctx.notify(1, 3);
        assert!(g1.on_failure(1, 3, &ctx));
        // p1's successors: {0,2,3,5,6,8} minus p3 → {0,2,5,6,8}; recursion
        // through p0 adds {4, 7} (p0's successors minus refuted p2, p5).
        let vs: Vec<_> = g1.vertices().collect();
        assert_eq!(vs, vec![0, 1, 2, 4, 5, 6, 7, 8]);
        assert!(g1.has_edge(1, 0));
        assert!(g1.has_edge(0, 4));
        assert!(!g1.has_edge(0, 2), "p2 already refuted receiving from p0");
        // g6[p0] also expands: p1 is a vertex of g0 with no successors.
        assert!(g0.on_failure(1, 3, &ctx));
        assert!(g0.has_edge(1, 0), "p0 ∈ succ(p1): the edge is tracked even toward the origin");

        // ⟨BCAST, m1⟩ arrives: p6 stops tracking m1.
        g1.clear();
        assert!(g1.is_empty());
        assert!(!g0.is_empty(), "m0 still being tracked");
    }

    #[test]
    fn notification_for_untracked_server_is_noop() {
        let ctx = binomial9();
        let mut g = TrackingDigraph::new(0);
        assert!(!g.on_failure(3, 5, &ctx));
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn all_successors_refuted_clears_digraph() {
        // Tiny overlay: 0 → {1, 2}; both notify. After the second
        // notification no vertex can hold m0 (0 failed, 1 and 2 refuted),
        // so the digraph must clear.
        let mut ctx = Ctx::new(&[(0, &[1, 2]), (1, &[0, 2]), (2, &[0, 1])]);
        let mut g = TrackingDigraph::new(0);
        ctx.notify(0, 1);
        g.on_failure(0, 1, &ctx);
        assert_eq!(g.vertices().collect::<Vec<_>>(), vec![0, 2]);
        ctx.notify(0, 2);
        g.on_failure(0, 2, &ctx);
        assert!(g.is_empty(), "no non-faulty server can hold m0");
    }

    #[test]
    fn give_up_when_all_holders_failed() {
        // 0 → 1 → 2 chain; 0 fails having maybe sent to 1; then 1 fails
        // having maybe sent to 2; then 2 fails having maybe sent to... no
        // one (successor is 0, already failed and refuted by its own
        // notifications? keep 2's successors = [0]). Eventually every
        // vertex is failed → digraph clears.
        let mut ctx = Ctx::new(&[(0, &[1]), (1, &[2]), (2, &[0])]);
        let mut g = TrackingDigraph::new(0);
        ctx.notify(0, 9); // detector outside successor set: expansion keeps 1
        g.on_failure(0, 9, &ctx);
        assert!(g.contains(1));
        ctx.notify(1, 9);
        g.on_failure(1, 9, &ctx);
        assert!(g.contains(2));
        ctx.notify(2, 9);
        g.on_failure(2, 9, &ctx);
        // 2's expansion adds 0 (already a vertex, already failed). All of
        // {0,1,2} are known failed → cleared.
        assert!(g.is_empty());
    }

    #[test]
    fn re_expansion_respects_refuted_pairs() {
        // Regression for the line-27 subtlety: if every edge out of a
        // failed vertex has been refuted, a later notification must NOT
        // resurrect refuted edges.
        let mut ctx = Ctx::new(&[(0, &[1, 2, 3]), (1, &[0]), (2, &[0]), (3, &[0])]);
        let mut g = TrackingDigraph::new(0);
        ctx.notify(0, 1);
        g.on_failure(0, 1, &ctx); // expands to {2, 3}
        ctx.notify(0, 2);
        g.on_failure(0, 2, &ctx); // refutes (0,2); 2 pruned
        assert!(!g.contains(2));
        ctx.notify(0, 3);
        g.on_failure(0, 3, &ctx); // refutes (0,3); 3 pruned; only 0 left → clear
        assert!(g.is_empty(), "got vertices {:?}", g.vertices().collect::<Vec<_>>());
    }

    #[test]
    fn unreachable_vertices_pruned_transitively() {
        // 0 fails → expand {1}; 1 fails → expand {4 via 1→4}; then the
        // edge (0,1) is refuted by 1's own earlier... construct: refute
        // (0,1) via second notification from detector 1? detector 1 is
        // the edge target. Chain: 0→1→4; refuting (0,1) must also prune 4.
        let mut ctx = Ctx::new(&[(0, &[1]), (1, &[4]), (4, &[0])]);
        let mut g = TrackingDigraph::new(0);
        ctx.notify(0, 7);
        g.on_failure(0, 7, &ctx); // V = {0,1}, E = {(0,1)}
        ctx.notify(1, 7);
        g.on_failure(1, 7, &ctx); // V = {0,1,4}, E = {(0,1),(1,4)}
        assert!(g.contains(4));
        ctx.notify(0, 1);
        g.on_failure(0, 1, &ctx); // refute (0,1): 1 and 4 unreachable
                                  // 0 is failed and alone → cleared entirely.
        assert!(g.is_empty());
    }

    #[test]
    fn expansion_through_failed_successor_chains() {
        // Line 32: adding a successor that is already known failed
        // recursively adds its successors.
        let mut ctx = Ctx::new(&[(0, &[1]), (1, &[2]), (2, &[3]), (3, &[0])]);
        let mut g = TrackingDigraph::new(0);
        // 1 and 2 already known failed before 0's notification arrives.
        ctx.notify(1, 8);
        ctx.notify(2, 8);
        ctx.notify(0, 8);
        g.on_failure(0, 8, &ctx);
        // 0 → 1 (failed) → 2 (failed) → 3 (alive): all become vertices.
        assert_eq!(g.vertices().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 3));
        assert!(!g.is_empty(), "3 is alive and may hold m0");
    }

    #[test]
    fn clear_is_terminal() {
        let ctx = binomial9();
        let mut g = TrackingDigraph::new(0);
        g.clear();
        assert!(g.is_empty());
        assert!(!g.on_failure(0, 2, &ctx), "cleared digraph ignores notifications");
        assert!(g.is_empty());
    }

    #[test]
    fn peak_vertices_tracks_high_water_mark() {
        let mut ctx = binomial9();
        let mut g = TrackingDigraph::new(0);
        ctx.notify(0, 2);
        g.on_failure(0, 2, &ctx);
        let peak = g.peak_vertices();
        assert!(peak >= 6);
        g.clear();
        assert_eq!(g.peak_vertices(), peak, "peak survives clear");
    }

    #[test]
    fn duplicate_notification_is_noop() {
        let mut ctx = binomial9();
        let mut g = TrackingDigraph::new(0);
        ctx.notify(0, 2);
        assert!(g.on_failure(0, 2, &ctx));
        let snapshot = g.clone();
        assert!(!g.on_failure(0, 2, &ctx), "same notification twice must not change state");
        assert_eq!(g, snapshot);
    }

    #[test]
    fn reset_reuses_storage_and_restores_init_state() {
        let mut ctx = binomial9();
        let mut g = TrackingDigraph::new(0);
        ctx.notify(0, 2);
        g.on_failure(0, 2, &ctx);
        assert!(g.vertex_count() > 1 && g.edge_count() > 0);
        let peak = g.peak_vertices();
        g.reset();
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.contains(0));
        assert_eq!(g.peak_vertices(), peak, "peak is a lifetime high-water mark");
        // And it behaves like a fresh digraph afterwards.
        let fresh_walk = {
            let mut fresh = TrackingDigraph::new(0);
            fresh.on_failure(0, 2, &ctx);
            fresh.vertices().collect::<Vec<_>>()
        };
        g.on_failure(0, 2, &ctx);
        assert_eq!(g.vertices().collect::<Vec<_>>(), fresh_walk);
    }
}
