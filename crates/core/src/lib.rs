#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # allconcur-core — the AllConcur protocol (Algorithm 1)
//!
//! AllConcur (Poke, Hoefler, Glass — HPDC'17) is a completely
//! decentralized, `f`-resilient, round-based **atomic broadcast**
//! algorithm. In every round each of the `n` servers:
//!
//! 1. A-broadcasts a single (possibly empty) message over a digraph
//!    overlay `G`;
//! 2. tracks every in-flight message with the *early termination*
//!    mechanism (§2.3): per-origin **tracking digraphs** fed by failure
//!    notifications over-approximate which servers may still hold a
//!    message, so a server can stop waiting the moment no non-faulty
//!    server can possibly hold anything it lacks — instead of always
//!    sitting out the worst-case `f + D_f(G, f)` communication steps;
//! 3. once every tracking digraph is empty, A-delivers the round's
//!    message set in a deterministic order.
//!
//! This crate implements the protocol as a **deterministic,
//! transport-agnostic state machine**: [`server::Server`] consumes
//! [`server::Event`]s and emits [`server::Action`]s. The discrete-event
//! simulator (`allconcur-sim`) and the TCP runtime (`allconcur-net`) both
//! drive this same state machine, so every correctness test exercises the
//! exact code deployed over real sockets.
//!
//! Modules:
//!
//! * [`delivery`] — the shared [`delivery::Delivery`] outcome type every
//!   transport reports round completions with;
//! * [`message`] — wire messages (`BCAST`, `FAIL`, `FWD`, `BWD`) and the
//!   hand-rolled binary codec;
//! * [`bitset`] — dense id-indexed sets ([`bitset::IdSet`],
//!   [`bitset::IdPairSet`]) backing the per-round hot-path state;
//! * [`tracking`] — tracking digraphs `g_i[p*]` (Algorithm 1 lines 21–41);
//! * [`server`] — the full round state machine, including iteration
//!   (failed tagging, notification carry-over — §3 "Iterating") and the
//!   eventually-perfect-FD surviving-partition mode (§3.3.2);
//! * [`config`] — static round configuration: overlay, resilience, FD mode;
//! * [`membership`] — deterministic reconfiguration plans for joins and
//!   departures (§3 "dynamic membership");
//! * [`fd`] — failure-detector accuracy model (§3.2);
//! * [`batch`] — request batching into round payloads (§5's batching
//!   factor);
//! * [`wire`] — stable checksummed framing for durable round records
//!   and chunked state transfer (the `allconcur-durability` substrate).

pub mod batch;
pub mod bitset;
pub mod config;
pub mod delivery;
pub mod fd;
pub mod membership;
pub mod message;
pub mod replica;
pub mod server;
pub mod tracking;
pub mod wire;

/// Stable identifier of a server: its vertex index in the overlay digraph.
pub type ServerId = u32;

/// Round number. Each round is one instance of concurrent atomic
/// broadcast; message identifiers embed the round so that consecutive
/// rounds can coexist in flight (§3).
pub type Round = u64;
