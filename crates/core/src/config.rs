//! Round configuration: the overlay, the resilience target, and the
//! failure-detector mode.
//!
//! AllConcur is bootstrapped with an initial configuration — the identity
//! of the `n` servers, the fault tolerance `f`, and the digraph `G` (§3,
//! "Initial bootstrap"). Any later change is itself agreed upon via
//! atomic broadcast ([`crate::membership`]).

use crate::ServerId;
use allconcur_graph::Digraph;
use std::sync::Arc;

/// Which failure-detector abstraction the protocol runs under (§2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FdMode {
    /// Perfect failure detector `P`: completeness and accuracy both hold.
    /// Algorithm 1 as printed; safety and liveness for `f < k(G)` (§3.1).
    #[default]
    Perfect,
    /// Eventually perfect `◇P`: suspicions may be wrong. Termination goes
    /// through the FWD/BWD surviving-partition protocol and only a
    /// strongly-connected majority delivers (§3.3.2).
    EventuallyPerfect,
}

/// Immutable configuration shared by every server of a deployment.
#[derive(Debug, Clone)]
pub struct Config {
    /// The overlay digraph `G`. Server ids are vertex indices.
    pub graph: Arc<Digraph>,
    /// Maximum number of failures the deployment must survive. Liveness
    /// requires `f < k(G)` (§3.1); safety holds regardless (§3.3.1).
    pub resilience: usize,
    /// Failure-detector mode.
    pub fd_mode: FdMode,
    /// Round-pipelining window `W` (≥ 1): how many consecutive rounds a
    /// server keeps open concurrently — the frontier round plus up to
    /// `W − 1` successors disseminating ahead of it. `1` (the default)
    /// is the sequential protocol of Algorithm 1; larger windows overlap
    /// rounds so throughput amortises the per-round network latency (the
    /// extended AllConcur design's `[round]`-tagged concurrent rounds).
    pub round_window: usize,
}

impl Config {
    /// Configuration over `graph` with resilience `f`, a perfect FD, and
    /// a round window of 1 (sequential rounds).
    pub fn new(graph: Arc<Digraph>, resilience: usize) -> Self {
        Config { graph, resilience, fd_mode: FdMode::Perfect, round_window: 1 }
    }

    /// Switch to the eventually-perfect-FD termination protocol.
    pub fn with_fd_mode(mut self, mode: FdMode) -> Self {
        self.fd_mode = mode;
        self
    }

    /// Set the round-pipelining window (clamped to ≥ 1).
    pub fn with_round_window(mut self, window: usize) -> Self {
        self.round_window = window.max(1);
        self
    }

    /// Number of servers in the configuration (alive or not).
    pub fn n(&self) -> usize {
        self.graph.order()
    }

    /// All server ids of this configuration.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> {
        self.graph.vertices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allconcur_graph::gs::gs_digraph;

    #[test]
    fn config_basics() {
        let g = Arc::new(gs_digraph(8, 3).unwrap());
        let cfg = Config::new(g, 2);
        assert_eq!(cfg.n(), 8);
        assert_eq!(cfg.resilience, 2);
        assert_eq!(cfg.fd_mode, FdMode::Perfect);
        assert_eq!(cfg.round_window, 1);
        let cfg = cfg.with_fd_mode(FdMode::EventuallyPerfect);
        assert_eq!(cfg.fd_mode, FdMode::EventuallyPerfect);
        let cfg = cfg.with_round_window(8);
        assert_eq!(cfg.round_window, 8);
        assert_eq!(cfg.clone().with_round_window(0).round_window, 1, "clamped to ≥ 1");
    }
}
