//! The application-facing outcome of one agreement round.
//!
//! Every transport — the discrete-event simulator (`allconcur-sim`), the
//! TCP runtime (`allconcur-net`), and the unified `Cluster` facade
//! (`allconcur-cluster`) — reports round completions as the same
//! [`Delivery`] value, so scenarios written against one backend compare
//! byte-for-byte against another.

use crate::{Round, ServerId};
use bytes::Bytes;

/// One completed agreement round, as seen by the application at one
/// server: the A-delivered message set in the deterministic
/// origin-ascending order every correct server agrees on (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The agreed round.
    pub round: Round,
    /// `(origin, payload)` pairs in deterministic order.
    pub messages: Vec<(ServerId, Bytes)>,
}

impl Delivery {
    /// Origins of the delivered messages, in delivery order.
    pub fn origins(&self) -> Vec<ServerId> {
        self.messages.iter().map(|&(o, _)| o).collect()
    }

    /// The payload delivered for `origin`, when present.
    pub fn payload_of(&self, origin: ServerId) -> Option<&Bytes> {
        self.messages.iter().find(|&&(o, _)| o == origin).map(|(_, p)| p)
    }

    /// Total payload bytes agreed in this round.
    pub fn payload_bytes(&self) -> usize {
        self.messages.iter().map(|(_, p)| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let d = Delivery {
            round: 3,
            messages: vec![(0, Bytes::from_static(b"a")), (2, Bytes::from_static(b"bc"))],
        };
        assert_eq!(d.origins(), vec![0, 2]);
        assert_eq!(d.payload_of(2), Some(&Bytes::from_static(b"bc")));
        assert_eq!(d.payload_of(1), None);
        assert_eq!(d.payload_bytes(), 3);
    }
}
