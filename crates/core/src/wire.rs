//! Stable on-disk / on-stream framing: checksummed length-prefixed
//! frames and the durable encoding of [`Delivery`].
//!
//! The WAL (`allconcur-durability`) and the chunked catch-up protocol
//! both persist agreed rounds; their byte layout is part of the
//! replicated history and must stay stable across toolchains, so — like
//! the message codec in [`crate::message`] — it is hand-rolled here
//! rather than derived.
//!
//! One frame on disk or in a catch-up chunk is
//!
//! ```text
//!   [len: u32 le] [crc32(payload): u32 le] [payload: len bytes]
//! ```
//!
//! and a scan over a byte buffer classifies the tail precisely:
//! a frame whose bytes run out is [`FrameError::Truncated`] (a torn
//! write — expected after a crash, recovery keeps the prefix), a frame
//! whose checksum fails is [`FrameError::Corrupt`] (bit rot or a torn
//! write that landed inside the payload — same recovery action).

use crate::delivery::Delivery;
use crate::{Round, ServerId};
use bytes::{BufMut, Bytes};

/// Bytes of frame header (length + checksum).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Maximum accepted frame payload, guarding against corrupt length
/// prefixes on every checksummed framing path (TCP transport, WAL,
/// catch-up chunks). Large enough for Fig. 10's biggest batch
/// (2¹⁵ × 8 B) with room to spare.
pub const MAX_FRAME: usize = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the classic
/// table-driven byte-at-a-time implementation.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: [u32; 256] = build_crc_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Why a frame could not be read from a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends mid-header or mid-payload — a torn tail write.
    /// Recovery keeps everything before this frame.
    Truncated,
    /// The payload's checksum does not match its header — corruption
    /// (or a torn write overlapping an older frame's bytes). Recovery
    /// keeps everything before this frame.
    Corrupt,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated (torn tail write)"),
            FrameError::Corrupt => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Append one checksummed frame carrying `payload` to `buf`.
pub fn put_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.reserve(FRAME_HEADER_BYTES + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
}

/// Read the frame starting at `buf[offset..]`. Returns the payload
/// slice and the offset just past the frame.
pub fn read_frame(buf: &[u8], offset: usize) -> Result<(&[u8], usize), FrameError> {
    let rest = &buf[offset.min(buf.len())..];
    if rest.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let sum = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if rest.len() - FRAME_HEADER_BYTES < len {
        return Err(FrameError::Truncated);
    }
    let payload = &rest[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
    if crc32(payload) != sum {
        return Err(FrameError::Corrupt);
    }
    Ok((payload, offset + FRAME_HEADER_BYTES + len))
}

/// Scan every valid frame in `buf` from the front: the payload slices of
/// the longest checksummed prefix, plus what (if anything) ended the
/// scan and the byte offset of the first invalid frame.
pub fn scan_frames(buf: &[u8]) -> (Vec<&[u8]>, Option<(FrameError, usize)>) {
    let mut frames = Vec::new();
    let mut offset = 0;
    while offset < buf.len() {
        match read_frame(buf, offset) {
            Ok((payload, next)) => {
                frames.push(payload);
                offset = next;
            }
            Err(e) => return (frames, Some((e, offset))),
        }
    }
    (frames, None)
}

/// Append the durable encoding of one agreed round to `buf`:
/// `round: u64 le`, `count: u32 le`, then per message `origin: u32 le`,
/// `len: u32 le`, payload bytes — origin order exactly as delivered (the
/// deterministic order every correct server agrees on).
pub fn encode_delivery(delivery: &Delivery, buf: &mut Vec<u8>) {
    buf.put_u64_le(delivery.round);
    buf.put_u32_le(delivery.messages.len() as u32);
    for (origin, payload) in &delivery.messages {
        buf.put_u32_le(*origin);
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(payload);
    }
}

/// Decode one [`encode_delivery`] record. The input must be exactly one
/// record (frames carry one delivery each).
pub fn decode_delivery(bytes: &[u8]) -> Result<Delivery, FrameError> {
    let mut buf = bytes;
    let round = take_u64(&mut buf)?;
    let count = take_u32(&mut buf)? as usize;
    let mut messages = Vec::with_capacity(count);
    for _ in 0..count {
        let origin: ServerId = take_u32(&mut buf)?;
        let len = take_u32(&mut buf)? as usize;
        if buf.len() < len {
            return Err(FrameError::Truncated);
        }
        messages.push((origin, Bytes::copy_from_slice(&buf[..len])));
        buf = &buf[len..];
    }
    if !buf.is_empty() {
        return Err(FrameError::Corrupt);
    }
    Ok(Delivery { round: round as Round, messages })
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated);
    }
    let v = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    *buf = &buf[4..];
    Ok(v)
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, FrameError> {
    if buf.len() < 8 {
        return Err(FrameError::Truncated);
    }
    let v = u64::from_le_bytes([buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6], buf[7]]);
    *buf = &buf[8..];
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"alpha");
        put_frame(&mut buf, b"");
        put_frame(&mut buf, b"gamma-delta");
        let (frames, end) = scan_frames(&buf);
        assert_eq!(frames, vec![&b"alpha"[..], &b""[..], &b"gamma-delta"[..]]);
        assert_eq!(end, None);
    }

    #[test]
    fn torn_tail_detected_at_every_truncation() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"first");
        let keep = buf.len();
        put_frame(&mut buf, b"second-frame");
        // Every strict prefix of the last frame yields exactly the first
        // frame plus a tail classification — never a bogus frame. (At
        // `cut == keep` no byte of the second frame exists, so the scan
        // is legitimately clean — start one past it.)
        for cut in keep + 1..buf.len() {
            let (frames, end) = scan_frames(&buf[..cut]);
            assert_eq!(frames, vec![&b"first"[..]], "cut at {cut}");
            assert!(end.is_some(), "cut at {cut} must flag the tail");
        }
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"first");
        put_frame(&mut buf, b"second");
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let (frames, end) = scan_frames(&buf);
        assert_eq!(frames.len(), 1);
        assert!(matches!(end, Some((FrameError::Corrupt, _))));
    }

    #[test]
    fn delivery_round_trips() {
        let d = Delivery {
            round: 42,
            messages: vec![
                (0, Bytes::from_static(b"a")),
                (3, Bytes::new()),
                (7, Bytes::from_static(b"payload")),
            ],
        };
        let mut buf = Vec::new();
        encode_delivery(&d, &mut buf);
        assert_eq!(decode_delivery(&buf).unwrap(), d);
        // Truncations and trailing garbage are rejected, not mis-read.
        assert!(decode_delivery(&buf[..buf.len() - 1]).is_err());
        let mut long = buf.clone();
        long.push(0);
        assert!(decode_delivery(&long).is_err());
    }
}
