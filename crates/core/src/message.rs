//! Protocol messages and the binary wire codec.
//!
//! AllConcur distinguishes two message types (§3):
//!
//! * `⟨BCAST, m_j⟩` — a message A-broadcast by server `p_j`;
//! * `⟨FAIL, p_j, p_k ∈ p_j⁺(G)⟩` — a notification R-broadcast by `p_k`
//!   that it suspects its predecessor `p_j` to have failed.
//!
//! The eventually-perfect-FD extension (§3.3.2) adds `⟨FWD, p_i⟩` and
//! `⟨BWD, p_i⟩`, R-broadcast over `G` and its transpose respectively, used
//! to elect the surviving partition.
//!
//! Every message carries the round in which it was first sent, so
//! consecutive rounds can coexist: `BCAST`s are uniquely identified by
//! `(R, p_j)` and `FAIL`s by `(R, p_j, p_k)` (§3 "Iterating AllConcur").
//!
//! The codec is a hand-rolled little-endian framing over [`bytes`]: a
//! fixed header (tag + round) followed by per-variant fields. No
//! serialization framework — the message set is tiny, fixed, and hot.

use crate::{Round, ServerId};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A protocol message. `Clone` is cheap: payloads are ref-counted
/// [`Bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// `⟨BCAST, m⟩`: the single message `origin` A-broadcasts in `round`.
    /// An empty payload is legal and common — a server with nothing to
    /// say still participates (§2.3, footnote 2).
    Bcast {
        /// Round the message belongs to.
        round: Round,
        /// The A-broadcasting server.
        origin: ServerId,
        /// Application payload (batched requests).
        payload: Bytes,
    },
    /// `⟨FAIL, failed, detector⟩`: `detector` (a successor of `failed` in
    /// the overlay) suspects `failed` to have crashed.
    Fail {
        /// Round this notification applies to.
        round: Round,
        /// The suspected server.
        failed: ServerId,
        /// The successor whose failure detector raised the suspicion.
        detector: ServerId,
    },
    /// `⟨FWD, origin⟩` (§3.3.2): `origin` has decided its message set;
    /// flooded over `G`.
    Fwd {
        /// Round being decided.
        round: Round,
        /// Server that decided.
        origin: ServerId,
    },
    /// `⟨BWD, origin⟩` (§3.3.2): as `FWD` but flooded over the transpose
    /// of `G`.
    Bwd {
        /// Round being decided.
        round: Round,
        /// Server that decided.
        origin: ServerId,
    },
}

impl Message {
    /// The round this message was first sent in.
    pub fn round(&self) -> Round {
        match *self {
            Message::Bcast { round, .. }
            | Message::Fail { round, .. }
            | Message::Fwd { round, .. }
            | Message::Bwd { round, .. } => round,
        }
    }

    /// Wire size in bytes (exact).
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::Bcast { payload, .. } => 1 + 8 + 4 + 4 + payload.len(),
            Message::Fail { .. } => 1 + 8 + 4 + 4,
            Message::Fwd { .. } | Message::Bwd { .. } => 1 + 8 + 4,
        }
    }

    /// Append the encoded message to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(self.encoded_len());
        match self {
            Message::Bcast { round, origin, payload } => {
                buf.put_u8(tag::BCAST);
                buf.put_u64_le(*round);
                buf.put_u32_le(*origin);
                buf.put_u32_le(payload.len() as u32);
                buf.put_slice(payload);
            }
            Message::Fail { round, failed, detector } => {
                buf.put_u8(tag::FAIL);
                buf.put_u64_le(*round);
                buf.put_u32_le(*failed);
                buf.put_u32_le(*detector);
            }
            Message::Fwd { round, origin } => {
                buf.put_u8(tag::FWD);
                buf.put_u64_le(*round);
                buf.put_u32_le(*origin);
            }
            Message::Bwd { round, origin } => {
                buf.put_u8(tag::BWD);
                buf.put_u64_le(*round);
                buf.put_u32_le(*origin);
            }
        }
    }

    /// Encode into a fresh buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Encode into a checksummed wire frame — format v2, the exact
    /// framing the TCP transport speaks: `len: u32 le`,
    /// `crc32(body): u32 le`, then the message encoding. The layout
    /// matches [`crate::wire::put_frame`] so wire and WAL share one
    /// frame grammar; the CRC lets the receiver treat a flipped bit as
    /// a *link* fault (drop + reconnect) instead of a silent desync.
    ///
    /// The returned [`Bytes`] is refcounted: a server fanning one
    /// message out to its `d` overlay successors encodes **once** and
    /// hands every successor's writer the same frozen frame, instead of
    /// re-encoding into a fresh buffer per successor (the dominant
    /// per-send cost before this existed).
    pub fn to_frame(&self) -> Bytes {
        let len = self.encoded_len();
        let mut buf = BytesMut::with_capacity(crate::wire::FRAME_HEADER_BYTES + len);
        buf.put_u32_le(len as u32);
        buf.put_u32_le(0); // checksum back-patched below, once the body exists
        self.encode(&mut buf);
        let sum = crate::wire::crc32(&buf[crate::wire::FRAME_HEADER_BYTES..]);
        buf[4..8].copy_from_slice(&sum.to_le_bytes());
        buf.freeze()
    }

    /// Decode one message from `buf`, advancing it past the consumed
    /// bytes. The buffer must contain a complete message (framing is the
    /// transport's job — see `allconcur-net`'s length-prefixed codec).
    pub fn decode(buf: &mut Bytes) -> Result<Message, CodecError> {
        if buf.remaining() < 1 + 8 {
            return Err(CodecError::Truncated);
        }
        let t = buf.get_u8();
        let round = buf.get_u64_le();
        match t {
            tag::BCAST => {
                if buf.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                let origin = buf.get_u32_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(CodecError::Truncated);
                }
                let payload = buf.split_to(len);
                Ok(Message::Bcast { round, origin, payload })
            }
            tag::FAIL => {
                if buf.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                let failed = buf.get_u32_le();
                let detector = buf.get_u32_le();
                Ok(Message::Fail { round, failed, detector })
            }
            tag::FWD | tag::BWD => {
                if buf.remaining() < 4 {
                    return Err(CodecError::Truncated);
                }
                let origin = buf.get_u32_le();
                Ok(if t == tag::FWD {
                    Message::Fwd { round, origin }
                } else {
                    Message::Bwd { round, origin }
                })
            }
            other => Err(CodecError::UnknownTag(other)),
        }
    }
}

mod tag {
    pub const BCAST: u8 = 0;
    pub const FAIL: u8 = 1;
    pub const FWD: u8 = 2;
    pub const BWD: u8 = 3;
}

/// Wire decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended mid-message.
    Truncated,
    /// Unrecognised message tag byte.
    UnknownTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated message"),
            CodecError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let mut bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.encoded_len());
        let decoded = Message::decode(&mut bytes).unwrap();
        assert_eq!(decoded, msg);
        assert!(bytes.is_empty(), "decode must consume the whole encoding");
    }

    #[test]
    fn roundtrip_bcast() {
        roundtrip(Message::Bcast {
            round: 7,
            origin: 3,
            payload: Bytes::from_static(b"hello allconcur"),
        });
    }

    #[test]
    fn roundtrip_empty_bcast() {
        roundtrip(Message::Bcast { round: 0, origin: 0, payload: Bytes::new() });
    }

    #[test]
    fn roundtrip_fail() {
        roundtrip(Message::Fail { round: u64::MAX, failed: 12, detector: 99 });
    }

    #[test]
    fn roundtrip_fwd_bwd() {
        roundtrip(Message::Fwd { round: 1, origin: 42 });
        roundtrip(Message::Bwd { round: 2, origin: 0 });
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_u8(200);
        buf.put_u64_le(1);
        buf.put_u32_le(0);
        let mut b = buf.freeze();
        assert_eq!(Message::decode(&mut b), Err(CodecError::UnknownTag(200)));
    }

    #[test]
    fn decode_rejects_truncated_header() {
        let mut b = Bytes::from_static(&[0, 1, 2]);
        assert_eq!(Message::decode(&mut b), Err(CodecError::Truncated));
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let msg = Message::Bcast { round: 1, origin: 2, payload: Bytes::from_static(b"abcdef") };
        let bytes = msg.to_bytes();
        let mut cut = bytes.slice(..bytes.len() - 2);
        assert_eq!(Message::decode(&mut cut), Err(CodecError::Truncated));
    }

    #[test]
    fn several_messages_in_one_buffer() {
        let msgs = vec![
            Message::Fail { round: 3, failed: 1, detector: 2 },
            Message::Bcast { round: 3, origin: 1, payload: Bytes::from_static(b"x") },
            Message::Fwd { round: 3, origin: 9 },
        ];
        let mut buf = BytesMut::new();
        for m in &msgs {
            m.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        for m in &msgs {
            assert_eq!(&Message::decode(&mut bytes).unwrap(), m);
        }
        assert!(bytes.is_empty());
    }

    #[test]
    fn to_frame_is_checksummed_length_prefixed_encoding() {
        let msg = Message::Bcast { round: 3, origin: 1, payload: Bytes::from_static(b"abc") };
        let frame = msg.to_frame();
        assert_eq!(frame.len(), 8 + msg.encoded_len());
        let mut prefix = [0u8; 4];
        prefix.copy_from_slice(&frame[..4]);
        assert_eq!(u32::from_le_bytes(prefix) as usize, msg.encoded_len());
        let mut sum = [0u8; 4];
        sum.copy_from_slice(&frame[4..8]);
        assert_eq!(u32::from_le_bytes(sum), crate::wire::crc32(&frame[8..]));
        // The frame is exactly what wire::read_frame accepts.
        let (payload, end) = crate::wire::read_frame(&frame, 0).unwrap();
        assert_eq!(end, frame.len());
        let mut body = Bytes::copy_from_slice(payload);
        assert_eq!(Message::decode(&mut body).unwrap(), msg);
    }

    #[test]
    fn round_accessor() {
        assert_eq!(Message::Fwd { round: 5, origin: 1 }.round(), 5);
        assert_eq!(Message::Fail { round: 8, failed: 0, detector: 1 }.round(), 8);
    }
}
