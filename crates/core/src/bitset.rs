//! Dense id-indexed sets for the protocol hot path.
//!
//! Server ids are dense `u32 < n` (vertex indices of the overlay), so
//! every per-round set the protocol keeps — delivered origins, failure
//! notifications, suspected predecessors, FWD/BWD votes, live tracking
//! digraphs — fits in a few machine words instead of a pointer-chasing
//! sorted tree. [`IdSet`] is a plain bitset over ids; [`IdPairSet`]
//! packs `(failed, detector)` notification pairs into one bitset of
//! `n²` bits (Table 2 bounds the live pairs at `O(f·d)`, so even the
//! dense representation is tiny: 512 bytes at n = 64).
//!
//! Both iterate in **ascending order** — exactly the order the previous
//! `BTreeSet`-based state iterated in — which is what keeps the action
//! stream byte-identical across the data-layout migration (see the
//! golden-transcript test in the umbrella crate).
//!
//! `clear` zeroes words in place and every growth path keeps its
//! allocation, so steady-state rounds reuse the same storage with no
//! allocator traffic.

/// A dense bitset over server ids, iterating in ascending id order.
#[derive(Debug, Clone, Default)]
pub struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    /// An empty set with no storage (grows on first insert).
    pub fn new() -> IdSet {
        IdSet::default()
    }

    /// An empty set pre-sized for ids `< n` (no growth needed later).
    pub fn with_capacity(n: usize) -> IdSet {
        IdSet { words: vec![0; n.div_ceil(64)], len: 0 }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every id, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        let w = (id / 64) as usize;
        self.words.get(w).is_some_and(|&word| word & (1u64 << (id % 64)) != 0)
    }

    /// Insert `id`; returns whether it was newly inserted.
    pub fn insert(&mut self, id: u32) -> bool {
        let w = (id / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (id % 64);
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// Remove `id`; returns whether it was present.
    pub fn remove(&mut self, id: u32) -> bool {
        let w = (id / 64) as usize;
        let Some(word) = self.words.get_mut(w) else { return false };
        let bit = 1u64 << (id % 64);
        let present = *word & bit != 0;
        *word &= !bit;
        self.len -= usize::from(present);
        present
    }

    /// Ids in ascending order.
    pub fn iter(&self) -> IdSetIter<'_> {
        IdSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Number of ids present in both `self` and `other`.
    pub fn intersection_len(&self, other: &IdSet) -> usize {
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Keep only ids also present in `other` (in-place intersection).
    pub fn intersect_with(&mut self, other: &IdSet) {
        let mut len = 0;
        for (i, word) in self.words.iter_mut().enumerate() {
            *word &= other.words.get(i).copied().unwrap_or(0);
            len += word.count_ones() as usize;
        }
        self.len = len;
    }
}

/// Logical equality: same id membership, regardless of trailing
/// capacity.
impl PartialEq for IdSet {
    fn eq(&self, other: &IdSet) -> bool {
        let max = self.words.len().max(other.words.len());
        (0..max).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for IdSet {}

impl FromIterator<u32> for IdSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> IdSet {
        let mut s = IdSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

/// Ascending iterator over an [`IdSet`].
pub struct IdSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IdSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u32 * 64 + bit)
    }
}

impl<'a> IntoIterator for &'a IdSet {
    type Item = u32;
    type IntoIter = IdSetIter<'a>;
    fn into_iter(self) -> IdSetIter<'a> {
        self.iter()
    }
}

/// A dense set of `(a, b)` id pairs with `a, b < n`, iterating in
/// ascending `(a, b)` lexicographic order — the same order as a
/// `BTreeSet<(u32, u32)>`. Backs the round's notification set `F_i`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdPairSet {
    n: usize,
    bits: IdSet,
}

impl IdPairSet {
    /// An empty set for pairs of ids `< n`.
    pub fn new(n: usize) -> IdPairSet {
        IdPairSet { n, bits: IdSet::with_capacity(n * n) }
    }

    /// Drop every pair and re-size for a new id bound (reconfiguration).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.bits = IdSet::with_capacity(n * n);
    }

    /// Number of pairs in the set.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Remove every pair, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    fn index(&self, a: u32, b: u32) -> u32 {
        debug_assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "pair ({a},{b}) out of range"
        );
        a * self.n as u32 + b
    }

    /// Whether `(a, b)` is in the set.
    pub fn contains(&self, a: u32, b: u32) -> bool {
        (a as usize) < self.n && (b as usize) < self.n && self.bits.contains(self.index(a, b))
    }

    /// Insert `(a, b)`; returns whether it was newly inserted.
    pub fn insert(&mut self, a: u32, b: u32) -> bool {
        let idx = self.index(a, b);
        self.bits.insert(idx)
    }

    /// Pairs in ascending `(a, b)` order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let n = self.n as u32;
        self.bits.iter().map(move |idx| (idx / n, idx % n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = IdSet::with_capacity(70);
        assert!(s.insert(3));
        assert!(!s.insert(3), "duplicate insert");
        assert!(s.insert(69));
        assert!(s.contains(3) && s.contains(69));
        assert!(!s.contains(4));
        assert!(!s.contains(1000), "out of capacity is absent, not a panic");
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_ascending() {
        let ids = [64, 0, 7, 127, 65, 2];
        let s: IdSet = ids.iter().copied().collect();
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, vec![0, 2, 7, 64, 65, 127]);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut s = IdSet::with_capacity(128);
        s.insert(100);
        let cap = s.words.len();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.words.len(), cap);
        assert!(!s.contains(100));
    }

    #[test]
    fn growth_on_demand() {
        let mut s = IdSet::new();
        assert!(!s.contains(500));
        s.insert(500);
        assert!(s.contains(500));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![500]);
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a = IdSet::with_capacity(1024);
        let mut b = IdSet::new();
        a.insert(5);
        b.insert(5);
        assert_eq!(a, b);
        b.insert(6);
        assert_ne!(a, b);
    }

    #[test]
    fn intersection_ops() {
        let a: IdSet = [1, 2, 3, 64, 65].iter().copied().collect();
        let b: IdSet = [2, 64, 99].iter().copied().collect();
        assert_eq!(a.intersection_len(&b), 2);
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 64]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pair_set_orders_like_btreeset() {
        let pairs = [(3u32, 1u32), (0, 2), (3, 0), (0, 1), (2, 3)];
        let mut dense = IdPairSet::new(4);
        let mut sorted = std::collections::BTreeSet::new();
        for &(a, b) in &pairs {
            assert!(dense.insert(a, b));
            sorted.insert((a, b));
        }
        assert!(!dense.insert(3, 1), "duplicate insert");
        assert_eq!(dense.len(), sorted.len());
        assert_eq!(dense.iter().collect::<Vec<_>>(), sorted.into_iter().collect::<Vec<_>>());
        assert!(dense.contains(0, 2));
        assert!(!dense.contains(2, 0));
    }

    #[test]
    fn pair_set_reset_resizes() {
        let mut s = IdPairSet::new(4);
        s.insert(3, 3);
        s.reset(8);
        assert!(s.is_empty());
        s.insert(7, 7);
        assert!(s.contains(7, 7));
    }
}
