//! Replicated state machines on top of AllConcur — the coordination-
//! service layer the paper's introduction motivates (§1: "atomic
//! broadcast is often used to implement large-scale coordination
//! services, such as replicated state machines").
//!
//! [`Replica`] wraps any deterministic [`StateMachine`] and consumes
//! round deliveries: commands are applied in the agreed order, so every
//! replica that applies the same rounds holds an identical state.
//!
//! Reads come in two consistencies, matching §1's discussion:
//!
//! * [`Replica::query`] — **local** read: no coordination; may lag the
//!   freshest state by at most one round ("a server's view of the shared
//!   state cannot fall behind more than one round");
//! * [`Replica::query_serialized`] — **strongly consistent** read:
//!   the query itself rides through atomic broadcast as a command and is
//!   answered when its round delivers.

use crate::{Round, ServerId};
use bytes::Bytes;
use std::collections::BTreeMap;

/// A deterministic application state machine. Determinism is the only
/// contract: identical command sequences must produce identical states
/// and outputs.
pub trait StateMachine {
    /// Output of applying a command (returned to the submitting client).
    type Output;

    /// Apply one command, in agreement order. `origin` is the server
    /// whose round message carried the command.
    fn apply(&mut self, origin: ServerId, command: &[u8]) -> Self::Output;
}

/// A replica: a state machine plus round-application bookkeeping.
#[derive(Debug, Clone)]
pub struct Replica<S> {
    state: S,
    applied_rounds: u64,
    applied_commands: u64,
    last_round: Option<Round>,
}

impl<S: StateMachine> Replica<S> {
    /// Wrap an initial state.
    pub fn new(state: S) -> Self {
        Replica { state, applied_rounds: 0, applied_commands: 0, last_round: None }
    }

    /// Apply one delivered round: `messages` exactly as produced by the
    /// protocol's `Deliver` action (origin-ascending). Each message is a
    /// batch of commands if `decode_batch`-framed, or a single raw
    /// command otherwise — the caller picks via `batched`.
    ///
    /// Rounds must be applied in order; gaps panic (a gap would mean the
    /// transport dropped an agreed round, which breaks the RSM contract).
    pub fn apply_round(
        &mut self,
        round: Round,
        messages: &[(ServerId, Bytes)],
        batched: bool,
    ) -> Vec<S::Output> {
        if let Some(last) = self.last_round {
            assert_eq!(round, last + 1, "round gap: {last} → {round}");
        }
        self.last_round = Some(round);
        self.applied_rounds += 1;
        let mut outputs = Vec::new();
        for (origin, payload) in messages {
            if payload.is_empty() {
                continue; // empty round message: nothing to apply
            }
            if batched {
                let commands = crate::batch::decode_batch(payload.clone())
                    .expect("agreed payloads are well-formed batches");
                for cmd in commands {
                    outputs.push(self.state.apply(*origin, &cmd));
                    self.applied_commands += 1;
                }
            } else {
                outputs.push(self.state.apply(*origin, payload));
                self.applied_commands += 1;
            }
        }
        outputs
    }

    /// Local read (≤ one round stale).
    pub fn query(&self) -> &S {
        &self.state
    }

    /// Strongly consistent read: the caller must route `query_command`
    /// through A-broadcast like any write and call this from the
    /// delivery path — provided here as a named alias to make call sites
    /// self-documenting.
    pub fn query_serialized(&mut self, origin: ServerId, query_command: &[u8]) -> S::Output {
        self.applied_commands += 1;
        self.state.apply(origin, query_command)
    }

    /// Rounds applied so far.
    pub fn applied_rounds(&self) -> u64 {
        self.applied_rounds
    }

    /// Commands applied so far.
    pub fn applied_commands(&self) -> u64 {
        self.applied_commands
    }

    /// Latest applied round.
    pub fn last_round(&self) -> Option<Round> {
        self.last_round
    }
}

/// A ready-made key-value state machine, used by the examples and tests
/// (and handy as a ZooKeeper-style demo service).
///
/// Commands (first byte is the opcode):
/// * `P key_len:u16 key value` — put;
/// * `D key_len:u16 key` — delete;
/// * `G key_len:u16 key` — get (serialized read).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

/// Outcome of a [`KvStore`] command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOutput {
    /// Put/delete applied.
    Ack,
    /// Get result.
    Value(Option<Vec<u8>>),
    /// Command could not be parsed (applied as no-op — all replicas
    /// reject identically, preserving determinism).
    Malformed,
}

impl KvStore {
    /// Encode a put command.
    pub fn put_command(key: &[u8], value: &[u8]) -> Bytes {
        let mut buf = Vec::with_capacity(3 + key.len() + value.len());
        buf.push(b'P');
        buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        Bytes::from(buf)
    }

    /// Encode a delete command.
    pub fn delete_command(key: &[u8]) -> Bytes {
        let mut buf = Vec::with_capacity(3 + key.len());
        buf.push(b'D');
        buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
        buf.extend_from_slice(key);
        Bytes::from(buf)
    }

    /// Encode a serialized-get command.
    pub fn get_command(key: &[u8]) -> Bytes {
        let mut buf = Vec::with_capacity(3 + key.len());
        buf.push(b'G');
        buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
        buf.extend_from_slice(key);
        Bytes::from(buf)
    }

    /// Local (possibly one-round-stale) read.
    pub fn get_local(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl StateMachine for KvStore {
    type Output = KvOutput;

    fn apply(&mut self, _origin: ServerId, command: &[u8]) -> KvOutput {
        let Some((&op, rest)) = command.split_first() else {
            return KvOutput::Malformed;
        };
        if rest.len() < 2 {
            return KvOutput::Malformed;
        }
        let key_len = u16::from_le_bytes([rest[0], rest[1]]) as usize;
        let rest = &rest[2..];
        if rest.len() < key_len {
            return KvOutput::Malformed;
        }
        let (key, value) = rest.split_at(key_len);
        match op {
            b'P' => {
                self.map.insert(key.to_vec(), value.to_vec());
                KvOutput::Ack
            }
            b'D' => {
                self.map.remove(key);
                KvOutput::Ack
            }
            b'G' => KvOutput::Value(self.map.get(key).cloned()),
            _ => KvOutput::Malformed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_msgs(cmds: &[(ServerId, Bytes)]) -> Vec<(ServerId, Bytes)> {
        cmds.to_vec()
    }

    #[test]
    fn kv_basic_operations() {
        let mut kv = KvStore::default();
        assert_eq!(kv.apply(0, &KvStore::put_command(b"k", b"v1")), KvOutput::Ack);
        assert_eq!(kv.get_local(b"k"), Some(&b"v1"[..]));
        assert_eq!(kv.apply(1, &KvStore::get_command(b"k")), KvOutput::Value(Some(b"v1".to_vec())));
        assert_eq!(kv.apply(0, &KvStore::delete_command(b"k")), KvOutput::Ack);
        assert_eq!(kv.apply(1, &KvStore::get_command(b"k")), KvOutput::Value(None));
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_malformed_commands_are_deterministic_noops() {
        let mut a = KvStore::default();
        let mut b = KvStore::default();
        for cmd in [&b""[..], b"P", b"P\xff\xff", b"Z\x01\x00k", b"P\x05\x00ab"] {
            assert_eq!(a.apply(0, cmd), KvOutput::Malformed);
            assert_eq!(b.apply(0, cmd), KvOutput::Malformed);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn replicas_converge_on_same_rounds() {
        let rounds: Vec<Vec<(ServerId, Bytes)>> = vec![
            round_msgs(&[
                (0, KvStore::put_command(b"x", b"1")),
                (1, KvStore::put_command(b"y", b"2")),
            ]),
            round_msgs(&[(0, KvStore::put_command(b"x", b"3")), (1, Bytes::new())]),
            round_msgs(&[(0, Bytes::new()), (1, KvStore::delete_command(b"y"))]),
        ];
        let mut r1 = Replica::new(KvStore::default());
        let mut r2 = Replica::new(KvStore::default());
        for (i, msgs) in rounds.iter().enumerate() {
            r1.apply_round(i as Round, msgs, false);
            r2.apply_round(i as Round, msgs, false);
        }
        assert_eq!(r1.query(), r2.query());
        assert_eq!(r1.query().get_local(b"x"), Some(&b"3"[..]));
        assert_eq!(r1.query().get_local(b"y"), None);
        assert_eq!(r1.applied_rounds(), 3);
        assert_eq!(r1.applied_commands(), 4);
    }

    #[test]
    fn order_matters_and_is_enforced_by_agreement() {
        // Same commands, different order → different state. This is
        // exactly why total order is needed.
        let put_a = KvStore::put_command(b"k", b"a");
        let put_b = KvStore::put_command(b"k", b"b");
        let mut r1 = Replica::new(KvStore::default());
        r1.apply_round(0, &[(0, put_a.clone()), (1, put_b.clone())], false);
        let mut r2 = Replica::new(KvStore::default());
        r2.apply_round(0, &[(0, put_b), (1, put_a)], false);
        assert_ne!(r1.query(), r2.query(), "order must matter for this test to mean anything");
    }

    #[test]
    #[should_panic(expected = "round gap")]
    fn round_gaps_rejected() {
        let mut r = Replica::new(KvStore::default());
        r.apply_round(0, &[], false);
        r.apply_round(2, &[], false);
    }

    #[test]
    fn batched_rounds_unpack() {
        let mut batcher = crate::batch::Batcher::new();
        batcher.push(KvStore::put_command(b"a", b"1"));
        batcher.push(KvStore::put_command(b"b", b"2"));
        let payload = batcher.take_batch();
        let mut r = Replica::new(KvStore::default());
        let outputs = r.apply_round(0, &[(0, payload)], true);
        assert_eq!(outputs, vec![KvOutput::Ack, KvOutput::Ack]);
        assert_eq!(r.query().len(), 2);
        assert_eq!(r.applied_commands(), 2);
    }

    #[test]
    fn empty_messages_skipped() {
        let mut r = Replica::new(KvStore::default());
        let outputs = r.apply_round(0, &[(0, Bytes::new()), (1, Bytes::new())], true);
        assert!(outputs.is_empty());
        assert_eq!(r.applied_commands(), 0);
        assert_eq!(r.last_round(), Some(0));
    }
}
