//! Replicated state machines on top of AllConcur — the coordination-
//! service layer the paper's introduction motivates (§1: "atomic
//! broadcast is often used to implement large-scale coordination
//! services, such as replicated state machines").
//!
//! The application contract is *typed*: a [`StateMachine`] declares its
//! `Command` and `Response` types plus a [`Codec`] that maps commands to
//! the raw bytes AllConcur agrees on. [`Replica`] wraps any
//! deterministic state machine and consumes round deliveries: agreed
//! payloads are decoded and applied in the agreed order, so every
//! replica that applies the same rounds holds an identical state and
//! produces identical typed responses.
//!
//! Rounds apply **atomically**: every payload of a round is decoded
//! before any command mutates state, so a malformed agreed payload
//! yields a typed [`RsmError`] on every replica with no partial
//! application — replicas cannot diverge through error paths.
//!
//! [`StateMachine::snapshot`] / [`StateMachine::restore`] let a joining
//! or reconfigured server catch up from a peer's serialized state
//! without replaying history (§3's dynamic membership needs exactly
//! this hand-off); the `Service` layer in `allconcur-rsm` wires them
//! through `Cluster::reconfigure`.

use crate::{Round, ServerId};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// Why a command or snapshot failed to decode. The reason is a static
/// string so decode failures stay deterministic (identical bytes fail
/// identically on every replica) and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Encoding between a typed value and its agreed wire bytes.
///
/// No external serde: implementations hand-roll their format, which
/// keeps the agreed bytes stable across toolchains (the bytes *are* the
/// replicated history — their layout is part of the protocol).
/// `Default` lets [`Replica`] construct the codec itself.
pub trait Codec: Default {
    /// The typed value this codec carries.
    type Item;

    /// Serialize `item` into the payload bytes to A-broadcast.
    fn encode(&self, item: &Self::Item) -> Bytes;

    /// Append `item`'s encoding to `buf` — the batching fast path: the
    /// `Service` layer packs commands straight into the round payload,
    /// so a codec overriding this avoids the intermediate [`Bytes`]
    /// allocation of [`Codec::encode`] entirely.
    fn encode_into(&self, item: &Self::Item, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.encode(item));
    }

    /// Parse agreed payload bytes back into the typed value.
    ///
    /// The input is the refcounted agreed buffer, so codecs can hold
    /// zero-copy slices of it in their commands (`bytes.slice(..)`)
    /// instead of copying fields out.
    ///
    /// Must be deterministic: the same bytes either decode to the same
    /// value or fail with the same error on every replica.
    fn decode(&self, bytes: &Bytes) -> Result<Self::Item, DecodeError>;
}

/// Everything that can go wrong applying agreed rounds to a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsmError {
    /// [`Replica::apply_round`] was handed a round out of order: a gap
    /// means the transport dropped an agreed round, which would break
    /// the RSM contract if applied — reportable, not fatal.
    RoundGap {
        /// The round the replica expected next.
        expected: Round,
        /// The round it was handed.
        got: Round,
    },
    /// An agreed payload failed to decode as a command. Deterministic:
    /// every replica rejects the same bytes with the same reason, and
    /// the round is rejected *before* any state mutation.
    Decode {
        /// The server whose round message carried the bad payload.
        origin: ServerId,
        /// The round it was agreed in.
        round: Round,
        /// What the codec objected to.
        reason: DecodeError,
    },
    /// The batch framing of an agreed payload was malformed.
    BadBatch {
        /// The server whose round message carried the bad batch.
        origin: ServerId,
        /// The round it was agreed in.
        round: Round,
    },
    /// A snapshot failed to parse during [`Replica::from_snapshot`].
    BadSnapshot(DecodeError),
}

impl std::fmt::Display for RsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsmError::RoundGap { expected, got } => {
                write!(f, "round gap: expected round {expected}, got {got}")
            }
            RsmError::Decode { origin, round, reason } => {
                write!(f, "agreed payload from server {origin} in round {round}: {reason}")
            }
            RsmError::BadBatch { origin, round } => {
                write!(f, "malformed batch from server {origin} in round {round}")
            }
            RsmError::BadSnapshot(reason) => write!(f, "snapshot rejected: {reason}"),
        }
    }
}

impl std::error::Error for RsmError {}

/// A deterministic application state machine with typed commands.
///
/// Determinism is the core contract: identical command sequences must
/// produce identical states, identical responses, and identical
/// snapshots on every replica.
pub trait StateMachine: Sized {
    /// The typed operation clients submit.
    ///
    /// `Clone` is required so an agreed round can be decoded **once**
    /// and the decoded commands fanned out to every replica
    /// ([`Replica::apply_decoded`]) — the clone should be cheap
    /// (commands built from refcounted [`Bytes`] slices, or `Copy`
    /// structs, clone in a few instructions).
    type Command: Clone;

    /// The typed outcome of applying one command (returned to the
    /// submitting client by the `Service` layer).
    type Response;

    /// How commands are (de)serialized to the agreed wire bytes.
    type Codec: Codec<Item = Self::Command>;

    /// Apply one command, in agreement order. `origin` is the server
    /// whose round message carried the command.
    fn apply(&mut self, origin: ServerId, command: Self::Command) -> Self::Response;

    /// Serialize the full state, so a joining or reconfigured server
    /// can catch up without replaying history.
    fn snapshot(&self) -> Bytes;

    /// Rebuild the state from a snapshot produced by [`Self::snapshot`].
    fn restore(snapshot: &[u8]) -> Result<Self, DecodeError>;
}

/// A replica: a state machine plus round-application bookkeeping.
#[derive(Debug, Clone)]
pub struct Replica<S: StateMachine> {
    state: S,
    codec: S::Codec,
    applied_rounds: u64,
    applied_commands: u64,
    last_round: Option<Round>,
}

impl<S: StateMachine> Replica<S> {
    /// Wrap an initial state.
    pub fn new(state: S) -> Self {
        Replica {
            state,
            codec: S::Codec::default(),
            applied_rounds: 0,
            applied_commands: 0,
            last_round: None,
        }
    }

    /// Rebuild a replica from a peer's snapshot — the §3 catch-up path
    /// for joining or reconfigured servers. Round tracking resets: the
    /// restored replica accepts whatever round its new configuration
    /// starts at (rounds restart from zero after a reconfiguration).
    pub fn from_snapshot(snapshot: &[u8]) -> Result<Self, RsmError> {
        let state = S::restore(snapshot).map_err(RsmError::BadSnapshot)?;
        Ok(Replica::new(state))
    }

    /// Apply one delivered round: `messages` exactly as produced by the
    /// protocol's `Deliver` action (origin-ascending). Each message is a
    /// batch of commands if `decode_batch`-framed, or a single raw
    /// command otherwise — the caller picks via `batched`.
    ///
    /// Returns the typed responses tagged with the origin that carried
    /// each command, in agreement order.
    ///
    /// Rounds must be applied in order; a gap yields
    /// [`RsmError::RoundGap`] (a gap means the transport dropped an
    /// agreed round). The round is decoded *in full* before any command
    /// is applied, so on any error the state is untouched.
    pub fn apply_round(
        &mut self,
        round: Round,
        messages: &[(ServerId, Bytes)],
        batched: bool,
    ) -> Result<Vec<(ServerId, S::Response)>, RsmError> {
        if let Some(last) = self.last_round {
            if round != last + 1 {
                return Err(RsmError::RoundGap { expected: last + 1, got: round });
            }
        }
        // Decode phase: reject the whole round before mutating anything.
        // Batched payloads stream through `iter_batch` — every request is
        // a zero-copy slice of the agreed buffer, so decoding a round
        // allocates nothing beyond the command vector itself.
        let commands = self.decode_round(round, messages, batched)?;
        // Apply phase: infallible.
        self.apply_decoded(round, &commands, true)
    }

    /// Decode one delivered round into typed commands without touching
    /// the state — the first half of [`Replica::apply_round`].
    ///
    /// Codecs are deterministic and every replica runs the same codec
    /// (`S::Codec::default()`), so the result can be shared: the
    /// `Service` layer decodes each agreed round **once** and applies
    /// the same decoded commands to all replicas via
    /// [`Replica::apply_decoded`], instead of re-decoding `n` times.
    pub fn decode_round(
        &self,
        round: Round,
        messages: &[(ServerId, Bytes)],
        batched: bool,
    ) -> Result<Vec<(ServerId, S::Command)>, RsmError> {
        let mut commands: Vec<(ServerId, S::Command)> = Vec::new();
        for (origin, payload) in messages {
            if payload.is_empty() {
                continue; // empty round message: nothing to apply
            }
            if batched {
                for req in crate::batch::iter_batch(payload.clone()) {
                    let req = req.map_err(|_| RsmError::BadBatch { origin: *origin, round })?;
                    let cmd = self.codec.decode(&req).map_err(|reason| RsmError::Decode {
                        origin: *origin,
                        round,
                        reason,
                    })?;
                    commands.push((*origin, cmd));
                }
            } else {
                let cmd = self.codec.decode(payload).map_err(|reason| RsmError::Decode {
                    origin: *origin,
                    round,
                    reason,
                })?;
                commands.push((*origin, cmd));
            }
        }
        Ok(commands)
    }

    /// Apply an already-decoded round (from [`Replica::decode_round`],
    /// possibly decoded by a *different* replica of the same state
    /// machine type). Round-ordering rules match
    /// [`Replica::apply_round`].
    ///
    /// When `collect` is false the typed responses are not gathered
    /// (replicas that merely follow a round skip the response vector
    /// entirely — only the harvesting replica pays for it).
    pub fn apply_decoded(
        &mut self,
        round: Round,
        commands: &[(ServerId, S::Command)],
        collect: bool,
    ) -> Result<Vec<(ServerId, S::Response)>, RsmError> {
        if let Some(last) = self.last_round {
            if round != last + 1 {
                return Err(RsmError::RoundGap { expected: last + 1, got: round });
            }
        }
        self.last_round = Some(round);
        self.applied_rounds += 1;
        let mut outputs = Vec::with_capacity(if collect { commands.len() } else { 0 });
        for (origin, cmd) in commands {
            let response = self.state.apply(*origin, cmd.clone());
            self.applied_commands += 1;
            if collect {
                outputs.push((*origin, response));
            }
        }
        Ok(outputs)
    }

    /// Apply one command **outside** round bookkeeping — a fault-
    /// injection surface for divergence testing. The state now reflects
    /// history no agreed round carried, which is exactly the silent
    /// corruption the service layer's divergence audit exists to catch.
    /// Round tracking and counters are untouched, so subsequent agreed
    /// rounds still apply in order (the divergence stays *silent* until
    /// a digest cross-check exposes it). Never call this in production.
    pub fn apply_unchecked(&mut self, origin: ServerId, command: S::Command) -> S::Response {
        self.state.apply(origin, command)
    }

    /// Local read (≤ one round stale) — no coordination.
    pub fn query(&self) -> &S {
        &self.state
    }

    /// Serialize the wrapped state (see [`StateMachine::snapshot`]).
    pub fn snapshot(&self) -> Bytes {
        self.state.snapshot()
    }

    /// The codec instance used for this replica's commands.
    pub fn codec(&self) -> &S::Codec {
        &self.codec
    }

    /// Rounds applied so far.
    pub fn applied_rounds(&self) -> u64 {
        self.applied_rounds
    }

    /// Commands applied so far.
    pub fn applied_commands(&self) -> u64 {
        self.applied_commands
    }

    /// Latest applied round.
    pub fn last_round(&self) -> Option<Round> {
        self.last_round
    }
}

/// A ready-made key-value state machine, used by the examples and tests
/// (and handy as a ZooKeeper-style demo service).
///
/// Keys and values are refcounted [`Bytes`]: applying a decoded command
/// moves zero-copy slices of the agreed round payload straight into the
/// map — the whole decode-and-apply path performs no per-command copy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Bytes, Bytes>,
}

/// A typed [`KvStore`] operation. Fields are [`Bytes`] so decoded
/// commands borrow the agreed payload (refcounted) instead of copying;
/// constructing one from owned data is a plain `.into()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCommand {
    /// Set `key` to `value`.
    Put {
        /// The key to set.
        key: Bytes,
        /// The value to store.
        value: Bytes,
    },
    /// Remove `key`.
    Delete {
        /// The key to remove.
        key: Bytes,
    },
    /// Read `key` at the agreed point — a linearizable get (the read
    /// rides atomic broadcast like any write).
    Get {
        /// The key to read.
        key: Bytes,
    },
}

/// The typed outcome of a [`KvCommand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// Put/delete applied.
    Ack,
    /// Get result at the agreed point (refcounted view of the stored
    /// value).
    Value(Option<Bytes>),
}

/// Wire codec for [`KvCommand`]: opcode byte (`P`/`D`/`G`), little-
/// endian `u16` key length, key, then (for puts) the value.
///
/// Keys are limited to `u16::MAX` bytes by the length prefix; `encode`
/// panics on oversized keys rather than silently truncating the prefix
/// (which would make every replica store under the wrong key).
#[derive(Debug, Clone, Copy, Default)]
pub struct KvCodec;

impl Codec for KvCodec {
    type Item = KvCommand;

    fn encode(&self, cmd: &KvCommand) -> Bytes {
        let mut buf = Vec::new();
        self.encode_into(cmd, &mut buf);
        Bytes::from(buf)
    }

    fn encode_into(&self, cmd: &KvCommand, buf: &mut Vec<u8>) {
        let (op, key, value): (u8, &[u8], &[u8]) = match cmd {
            KvCommand::Put { key, value } => (b'P', key, value),
            KvCommand::Delete { key } => (b'D', key, &[]),
            KvCommand::Get { key } => (b'G', key, &[]),
        };
        assert!(
            key.len() <= u16::MAX as usize,
            "KvCommand key of {} bytes exceeds the u16 length prefix",
            key.len()
        );
        buf.reserve(3 + key.len() + value.len());
        buf.put_u8(op);
        buf.put_u16_le(key.len() as u16);
        buf.put_slice(key);
        buf.put_slice(value);
    }

    fn decode(&self, bytes: &Bytes) -> Result<KvCommand, DecodeError> {
        let raw: &[u8] = bytes;
        let Some((&op, rest)) = raw.split_first() else {
            return Err(DecodeError("empty command"));
        };
        if rest.len() < 2 {
            return Err(DecodeError("missing key length"));
        }
        let key_len = u16::from_le_bytes([rest[0], rest[1]]) as usize;
        if rest.len() - 2 < key_len {
            return Err(DecodeError("key shorter than its length prefix"));
        }
        // Zero-copy: key and value are refcounted slices of the agreed
        // payload, not fresh allocations.
        let key = bytes.slice(3..3 + key_len);
        let value = bytes.slice(3 + key_len..);
        match op {
            b'P' => Ok(KvCommand::Put { key, value }),
            b'D' if value.is_empty() => Ok(KvCommand::Delete { key }),
            b'G' if value.is_empty() => Ok(KvCommand::Get { key }),
            b'D' | b'G' => Err(DecodeError("trailing bytes after key")),
            _ => Err(DecodeError("unknown opcode")),
        }
    }
}

impl KvStore {
    /// Local (possibly one-round-stale) read.
    pub fn get_local(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_ref())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl StateMachine for KvStore {
    type Command = KvCommand;
    type Response = KvResponse;
    type Codec = KvCodec;

    fn apply(&mut self, _origin: ServerId, command: KvCommand) -> KvResponse {
        match command {
            KvCommand::Put { key, value } => {
                self.map.insert(key, value);
                KvResponse::Ack
            }
            KvCommand::Delete { key } => {
                self.map.remove(&key);
                KvResponse::Ack
            }
            KvCommand::Get { key } => KvResponse::Value(self.map.get(&key).cloned()),
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.map.len() as u32);
        for (key, value) in &self.map {
            buf.put_u32_le(key.len() as u32);
            buf.put_slice(key);
            buf.put_u32_le(value.len() as u32);
            buf.put_slice(value);
        }
        buf.freeze()
    }

    fn restore(snapshot: &[u8]) -> Result<Self, DecodeError> {
        fn read_chunk<'a>(buf: &mut &'a [u8], what: &'static str) -> Result<&'a [u8], DecodeError> {
            if buf.len() < 4 {
                return Err(DecodeError(what));
            }
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if buf.len() - 4 < len {
                return Err(DecodeError(what));
            }
            let (chunk, rest) = buf[4..].split_at(len);
            *buf = rest;
            Ok(chunk)
        }
        let mut buf = snapshot;
        if buf.len() < 4 {
            return Err(DecodeError("snapshot missing entry count"));
        }
        let count = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        buf = &buf[4..];
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let key = read_chunk(&mut buf, "snapshot key truncated")?;
            let value = read_chunk(&mut buf, "snapshot value truncated")?;
            map.insert(Bytes::copy_from_slice(key), Bytes::copy_from_slice(value));
        }
        if !buf.is_empty() {
            return Err(DecodeError("snapshot has trailing bytes"));
        }
        Ok(KvStore { map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(key: &[u8], value: &[u8]) -> KvCommand {
        KvCommand::Put { key: Bytes::copy_from_slice(key), value: Bytes::copy_from_slice(value) }
    }

    fn encoded(cmd: &KvCommand) -> Bytes {
        KvCodec.encode(cmd)
    }

    #[test]
    fn kv_basic_operations() {
        let mut kv = KvStore::default();
        assert_eq!(kv.apply(0, put(b"k", b"v1")), KvResponse::Ack);
        assert_eq!(kv.get_local(b"k"), Some(&b"v1"[..]));
        assert_eq!(
            kv.apply(1, KvCommand::Get { key: Bytes::copy_from_slice(b"k") }),
            KvResponse::Value(Some(Bytes::copy_from_slice(b"v1")))
        );
        assert_eq!(
            kv.apply(0, KvCommand::Delete { key: Bytes::copy_from_slice(b"k") }),
            KvResponse::Ack
        );
        assert_eq!(
            kv.apply(1, KvCommand::Get { key: Bytes::copy_from_slice(b"k") }),
            KvResponse::Value(None)
        );
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_codec_round_trips() {
        for cmd in [
            put(b"key", b"value"),
            put(b"", b""),
            KvCommand::Delete { key: Bytes::copy_from_slice(b"k") },
            KvCommand::Get { key: Bytes::from(vec![0xff; 300]) },
        ] {
            assert_eq!(KvCodec.decode(&KvCodec.encode(&cmd)).unwrap(), cmd);
        }
    }

    #[test]
    fn kv_codec_rejects_garbage_deterministically() {
        for bad in [&b""[..], b"P", b"P\xff\xff", b"Z\x01\x00k", b"P\x05\x00ab"] {
            let bad = Bytes::copy_from_slice(bad);
            let first = KvCodec.decode(&bad);
            assert!(first.is_err(), "{bad:?} should not decode");
            assert_eq!(first, KvCodec.decode(&bad), "decode must be deterministic");
        }
    }

    #[test]
    fn replicas_converge_on_same_rounds() {
        let rounds: Vec<Vec<(ServerId, Bytes)>> = vec![
            vec![(0, encoded(&put(b"x", b"1"))), (1, encoded(&put(b"y", b"2")))],
            vec![(0, encoded(&put(b"x", b"3"))), (1, Bytes::new())],
            vec![
                (0, Bytes::new()),
                (1, encoded(&KvCommand::Delete { key: Bytes::copy_from_slice(b"y") })),
            ],
        ];
        let mut r1 = Replica::new(KvStore::default());
        let mut r2 = Replica::new(KvStore::default());
        for (i, msgs) in rounds.iter().enumerate() {
            r1.apply_round(i as Round, msgs, false).unwrap();
            r2.apply_round(i as Round, msgs, false).unwrap();
        }
        assert_eq!(r1.query(), r2.query());
        assert_eq!(r1.snapshot(), r2.snapshot());
        assert_eq!(r1.query().get_local(b"x"), Some(&b"3"[..]));
        assert_eq!(r1.query().get_local(b"y"), None);
        assert_eq!(r1.applied_rounds(), 3);
        assert_eq!(r1.applied_commands(), 4);
    }

    #[test]
    fn responses_carry_origins_in_agreement_order() {
        let mut r = Replica::new(KvStore::default());
        let outputs = r
            .apply_round(
                0,
                &[
                    (2, encoded(&put(b"a", b"1"))),
                    (5, encoded(&KvCommand::Get { key: Bytes::copy_from_slice(b"a") })),
                ],
                false,
            )
            .unwrap();
        assert_eq!(
            outputs,
            vec![(2, KvResponse::Ack), (5, KvResponse::Value(Some(Bytes::copy_from_slice(b"1"))))]
        );
    }

    #[test]
    fn round_gap_is_a_typed_error_not_a_panic() {
        let mut r = Replica::new(KvStore::default());
        r.apply_round(0, &[], false).unwrap();
        let err = r.apply_round(2, &[], false).unwrap_err();
        assert_eq!(err, RsmError::RoundGap { expected: 1, got: 2 });
        // The failed call left the replica untouched: round 1 still fits.
        r.apply_round(1, &[], false).unwrap();
        assert_eq!(r.last_round(), Some(1));
    }

    #[test]
    fn bad_payload_rejects_whole_round_before_any_apply() {
        let mut r = Replica::new(KvStore::default());
        let err = r
            .apply_round(
                0,
                &[(0, encoded(&put(b"k", b"v"))), (1, Bytes::from_static(b"Z\x01\x00k"))],
                false,
            )
            .unwrap_err();
        assert!(matches!(err, RsmError::Decode { origin: 1, round: 0, .. }), "{err:?}");
        // Atomicity: server 0's valid put must NOT have been applied.
        assert!(r.query().is_empty());
        assert_eq!(r.last_round(), None);
        assert_eq!(r.applied_commands(), 0);
    }

    #[test]
    fn batched_rounds_unpack() {
        let mut batcher = crate::batch::Batcher::new();
        batcher.push(encoded(&put(b"a", b"1")));
        batcher.push(encoded(&put(b"b", b"2")));
        let payload = batcher.take_batch();
        let mut r = Replica::new(KvStore::default());
        let outputs = r.apply_round(0, &[(0, payload)], true).unwrap();
        assert_eq!(outputs, vec![(0, KvResponse::Ack), (0, KvResponse::Ack)]);
        assert_eq!(r.query().len(), 2);
        assert_eq!(r.applied_commands(), 2);
    }

    #[test]
    fn empty_messages_skipped() {
        let mut r = Replica::new(KvStore::default());
        let outputs = r.apply_round(0, &[(0, Bytes::new()), (1, Bytes::new())], true).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(r.applied_commands(), 0);
        assert_eq!(r.last_round(), Some(0));
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut r = Replica::new(KvStore::default());
        r.apply_round(0, &[(0, encoded(&put(b"a", b"1"))), (1, encoded(&put(b"b", b"22")))], false)
            .unwrap();
        let snap = r.snapshot();
        let restored: Replica<KvStore> = Replica::from_snapshot(&snap).unwrap();
        assert_eq!(restored.query(), r.query());
        // Round tracking reset: the restored replica joins a fresh epoch.
        assert_eq!(restored.last_round(), None);
        // Garbage snapshots are rejected, not mis-restored.
        assert!(Replica::<KvStore>::from_snapshot(&snap[..snap.len() - 1]).is_err());
        assert!(Replica::<KvStore>::from_snapshot(b"\xff\xff\xff\xff").is_err());
    }
}
