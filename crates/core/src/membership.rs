//! Dynamic membership (§3 "Initial bootstrap and dynamic membership").
//!
//! Once AllConcur is running, reconfigurations — servers joining or
//! leaving, overlay changes — are agreed upon **via atomic broadcast
//! itself**: a membership request rides in a round's message, every
//! server delivers it at the same round boundary, and every server then
//! derives the *same* next configuration deterministically. No leader
//! election is ever needed (contrast with §4.5's leader-based cost
//! analysis).
//!
//! This module provides the deterministic derivation:
//! [`plan_reconfiguration`] maps (previous membership, leavers, joiners,
//! reliability target) to a fresh GS(n,d) overlay and an id translation
//! table. The simulator and the TCP runtime both apply plans at round
//! boundaries; `examples/membership_churn.rs` shows the full loop.

use crate::config::{Config, FdMode};
use crate::ServerId;
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::standard::complete_digraph;
use allconcur_graph::{choose_gs_degree, ReliabilityModel};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deterministic reconfiguration: the new overlay plus the mapping from
/// surviving old ids to new ids. All servers that deliver the same
/// membership round compute an identical plan.
#[derive(Debug, Clone)]
pub struct ReconfigPlan {
    /// Configuration for the next round.
    pub config: Config,
    /// Old id → new id for surviving members. Joining servers take the
    /// ids after the survivors, in the order given to
    /// [`plan_reconfiguration`].
    pub id_map: BTreeMap<ServerId, ServerId>,
    /// New ids assigned to the joiners, in input order.
    pub joiner_ids: Vec<ServerId>,
}

/// Derive the configuration after `leavers` leave and `joiner_count`
/// fresh servers join a deployment whose previous members are
/// `members` (sorted old ids).
///
/// The new overlay is GS(n', d') with `d'` fitted to `target_nines` under
/// `model` (Table 3's rule); if `n'` is too small for a GS digraph
/// (`n < 2d` or `n < 6`), a complete digraph is used — at those sizes the
/// all-to-all overlay is cheap and maximally reliable.
pub fn plan_reconfiguration(
    members: &[ServerId],
    leavers: &[ServerId],
    joiner_count: usize,
    model: &ReliabilityModel,
    target_nines: f64,
    fd_mode: FdMode,
) -> ReconfigPlan {
    let survivors: Vec<ServerId> =
        members.iter().copied().filter(|m| !leavers.contains(m)).collect();
    let n = survivors.len() + joiner_count;
    assert!(n >= 1, "reconfiguration to an empty membership");

    let graph = build_overlay(n, model, target_nines);
    let resilience = allconcur_graph::connectivity::vertex_connectivity(&graph).saturating_sub(1);
    let config = Config { graph: Arc::new(graph), resilience, fd_mode, round_window: 1 };

    let id_map: BTreeMap<ServerId, ServerId> =
        survivors.iter().enumerate().map(|(new, &old)| (old, new as ServerId)).collect();
    let joiner_ids: Vec<ServerId> = (survivors.len()..n).map(|i| i as ServerId).collect();
    ReconfigPlan { config, id_map, joiner_ids }
}

/// Overlay choice for `n` members: GS(n, d) with the Table 3 degree when
/// possible, complete digraph below the GS validity threshold.
pub fn build_overlay(
    n: usize,
    model: &ReliabilityModel,
    target_nines: f64,
) -> allconcur_graph::Digraph {
    if n >= 6 {
        if let Some(d) = choose_gs_degree(n, model, target_nines) {
            if n >= 2 * d {
                if let Ok(g) = gs_digraph(n, d) {
                    return g;
                }
            }
        }
    }
    complete_digraph(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ReliabilityModel {
        ReliabilityModel::paper_default()
    }

    #[test]
    fn plan_is_deterministic() {
        let members: Vec<ServerId> = (0..8).collect();
        let a = plan_reconfiguration(&members, &[3], 1, &model(), 6.0, FdMode::Perfect);
        let b = plan_reconfiguration(&members, &[3], 1, &model(), 6.0, FdMode::Perfect);
        assert_eq!(a.id_map, b.id_map);
        assert_eq!(a.joiner_ids, b.joiner_ids);
        assert_eq!(a.config.n(), b.config.n());
        assert_eq!(
            a.config.graph.edges().collect::<Vec<_>>(),
            b.config.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn leave_and_join_remaps_ids() {
        let members: Vec<ServerId> = (0..8).collect();
        let plan = plan_reconfiguration(&members, &[2, 5], 1, &model(), 6.0, FdMode::Perfect);
        assert_eq!(plan.config.n(), 7);
        // Survivors 0,1,3,4,6,7 → 0..6; joiner gets 6.
        assert_eq!(plan.id_map.get(&0), Some(&0));
        assert_eq!(plan.id_map.get(&3), Some(&2));
        assert_eq!(plan.id_map.get(&7), Some(&5));
        assert!(!plan.id_map.contains_key(&2));
        assert_eq!(plan.joiner_ids, vec![6]);
    }

    #[test]
    fn overlay_uses_gs_when_large_enough() {
        let g = build_overlay(32, &model(), 6.0);
        assert_eq!(g.order(), 32);
        assert_eq!(g.degree(), 4, "Table 3: GS(32,4)");
        assert!(g.is_regular());
    }

    #[test]
    fn overlay_falls_back_to_complete_for_tiny_n() {
        let g = build_overlay(4, &model(), 6.0);
        assert_eq!(g.order(), 4);
        assert_eq!(g.size(), 12, "complete digraph");
    }

    #[test]
    fn resilience_matches_connectivity() {
        let members: Vec<ServerId> = (0..8).collect();
        let plan = plan_reconfiguration(&members, &[], 0, &model(), 6.0, FdMode::Perfect);
        // GS(8,3): k = 3 → f = 2.
        assert_eq!(plan.config.resilience, 2);
    }
}
