//! Targeted edge-case tests for the server state machine: round-boundary
//! buffering, carry-over interactions, EP decision thresholds, and
//! reconfiguration corner cases that the broader property tests only hit
//! probabilistically.

use allconcur_core::config::{Config, FdMode};
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_graph::standard::complete_digraph;
use bytes::Bytes;
use std::sync::Arc;

fn cfg(n: usize) -> Config {
    Config::new(Arc::new(complete_digraph(n)), n.saturating_sub(2))
}

fn deliver_actions(actions: &[Action]) -> Option<(u64, Vec<(u32, Bytes)>)> {
    actions.iter().find_map(|a| match a {
        Action::Deliver { round, messages } => Some((*round, messages.clone())),
        _ => None,
    })
}

#[test]
fn buffered_future_round_replays_after_advance() {
    // Server 0 of a 3-clique receives a round-1 message while still in
    // round 0; after round 0 completes, the buffered message must count
    // toward round 1 without retransmission from the peer.
    let mut s = Server::new(cfg(3), 0);
    let mut acts = Vec::new();
    s.handle_into(Event::ABroadcast(Bytes::from_static(b"r0-own")), &mut acts);

    // Round-1 BCAST from server 1 arrives early.
    let early = Message::Bcast { round: 1, origin: 1, payload: Bytes::from_static(b"r1-m1") };
    assert!(s.handle(Event::Receive { from: 1, msg: early }).is_empty());
    assert_eq!(s.round(), 0);

    // Finish round 0.
    acts.clear();
    for origin in [1u32, 2u32] {
        let msg = Message::Bcast {
            round: 0,
            origin,
            payload: Bytes::from(format!("r0-m{origin}").into_bytes()),
        };
        s.handle_into(Event::Receive { from: origin, msg }, &mut acts);
    }
    let (round, msgs) = deliver_actions(&acts).expect("round 0 delivers");
    assert_eq!(round, 0);
    assert_eq!(msgs.len(), 3);
    assert_eq!(s.round(), 1);

    // The buffered round-1 message was replayed — and Algorithm 1 line 15
    // made server 0 react to it with an empty round-1 broadcast already.
    assert!(s.has_broadcast(), "reactive empty broadcast fired during the drain");
    // A well-behaved application checks has_broadcast() and queues its
    // payload; submitting anyway is dropped without disturbing the round.
    acts.clear();
    s.handle_into(Event::ABroadcast(Bytes::from_static(b"r1-own")), &mut acts);
    assert!(acts.is_empty(), "duplicate submission ignored");
    let msg = Message::Bcast { round: 1, origin: 2, payload: Bytes::from_static(b"r1-m2") };
    s.handle_into(Event::Receive { from: 2, msg }, &mut acts);
    let (round, msgs) = deliver_actions(&acts).expect("round 1 delivers without re-receiving m1");
    assert_eq!(round, 1);
    assert_eq!(msgs.iter().map(|&(o, _)| o).collect::<Vec<_>>(), vec![0, 1, 2]);
    assert!(msgs[0].1.is_empty(), "own round-1 slot carries the reactive empty message");
}

#[test]
fn two_rounds_buffered_ahead_drain_in_order() {
    // Peer racing two rounds ahead: both rounds' messages buffer, then
    // drain in order as the local server catches up.
    let mut s = Server::new(cfg(2), 0);
    let m_r1 = Message::Bcast { round: 1, origin: 1, payload: Bytes::from_static(b"r1") };
    let m_r0 = Message::Bcast { round: 0, origin: 1, payload: Bytes::from_static(b"r0") };
    assert!(s.handle(Event::Receive { from: 1, msg: m_r1 }).is_empty());

    // Completing round 0 (auto-broadcast on receipt) delivers round 0,
    // replays the buffered round-1 message, and — Algorithm 1 line 15 —
    // reacts to it with an empty round-1 broadcast, completing round 1
    // in the same handler call.
    let acts = s.handle(Event::Receive { from: 1, msg: m_r0 });
    let delivers: Vec<u64> = acts
        .iter()
        .filter_map(|a| match a {
            Action::Deliver { round, .. } => Some(*round),
            _ => None,
        })
        .collect();
    assert_eq!(delivers, vec![0, 1], "both rounds complete from one input");
    assert_eq!(s.round(), 2);
    // Round 1's delivery carries the buffered m1 plus our auto-empty.
    let round1 = acts
        .iter()
        .find_map(|a| match a {
            Action::Deliver { round: 1, messages } => Some(messages.clone()),
            _ => None,
        })
        .expect("round 1 delivered");
    assert_eq!(round1.len(), 2);
    assert!(round1[0].1.is_empty(), "own round-1 message was the reactive empty");
    assert_eq!(round1[1].1, Bytes::from_static(b"r1"));
}

#[test]
fn ep_decision_requires_exact_majority() {
    // n = 5 complete digraph, EP mode: the decider needs ⌊5/2⌋ = 2 other
    // servers with both FWD and BWD before delivering.
    let config = cfg(5).with_fd_mode(FdMode::EventuallyPerfect);
    let mut s = Server::new(config, 0);
    let mut acts = Vec::new();
    s.handle_into(Event::ABroadcast(Bytes::from_static(b"m0")), &mut acts);
    for origin in 1u32..5 {
        let msg = Message::Bcast { round: 0, origin, payload: Bytes::new() };
        s.handle_into(Event::Receive { from: origin, msg }, &mut acts);
    }
    // Tracking complete → Deciding, but no deliver yet.
    assert!(deliver_actions(&acts).is_none(), "must await FWD/BWD majority");

    // FWD from 1 and BWD from 2: still no pair.
    acts.clear();
    s.handle_into(Event::Receive { from: 1, msg: Message::Fwd { round: 0, origin: 1 } }, &mut acts);
    s.handle_into(Event::Receive { from: 2, msg: Message::Bwd { round: 0, origin: 2 } }, &mut acts);
    assert!(deliver_actions(&acts).is_none(), "one-sided evidence is not enough");

    // Complete the pair for server 1 → one full pair; need two.
    s.handle_into(Event::Receive { from: 1, msg: Message::Bwd { round: 0, origin: 1 } }, &mut acts);
    assert!(deliver_actions(&acts).is_none(), "1 pair < ⌊n/2⌋ = 2");

    // Second full pair (server 2) → deliver.
    s.handle_into(Event::Receive { from: 2, msg: Message::Fwd { round: 0, origin: 2 } }, &mut acts);
    let (round, msgs) = deliver_actions(&acts).expect("majority reached");
    assert_eq!(round, 0);
    assert_eq!(msgs.len(), 5);
}

#[test]
fn fail_notification_about_already_removed_server_ignored() {
    // Server 2 gets tagged failed in round 0; a straggler FAIL about it
    // tagged round 1 must be ignored (not re-propagated).
    let mut s = Server::new(cfg(3), 0);
    let mut acts = Vec::new();
    s.handle_into(Event::ABroadcast(Bytes::from_static(b"m0")), &mut acts);
    s.handle_into(
        Event::Receive {
            from: 1,
            msg: Message::Bcast { round: 0, origin: 1, payload: Bytes::new() },
        },
        &mut acts,
    );
    s.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
    s.handle_into(
        Event::Receive { from: 1, msg: Message::Fail { round: 0, failed: 2, detector: 1 } },
        &mut acts,
    );
    assert_eq!(s.round(), 1, "round 0 done, server 2 tagged");
    assert!(!s.is_alive(2));

    let straggler = Message::Fail { round: 1, failed: 2, detector: 1 };
    let reaction = s.handle(Event::Receive { from: 1, msg: straggler });
    assert!(reaction.is_empty(), "stale-member FAIL must be dropped: {reaction:?}");
}

#[test]
fn suspect_event_for_dead_member_is_noop() {
    let mut s = Server::new(cfg(3), 0);
    let mut acts = Vec::new();
    s.handle_into(Event::ABroadcast(Bytes::new()), &mut acts);
    s.handle_into(
        Event::Receive {
            from: 1,
            msg: Message::Bcast { round: 0, origin: 1, payload: Bytes::new() },
        },
        &mut acts,
    );
    s.handle_into(Event::Suspect { suspect: 2 }, &mut acts);
    s.handle_into(
        Event::Receive { from: 1, msg: Message::Fail { round: 0, failed: 2, detector: 1 } },
        &mut acts,
    );
    assert!(!s.is_alive(2));
    // Local FD fires again in the next round (heartbeats still absent):
    // the protocol must swallow it.
    assert!(s.handle(Event::Suspect { suspect: 2 }).is_empty());
}

#[test]
fn reconfigure_drops_stale_buffered_rounds() {
    let mut s = Server::new(cfg(3), 0);
    let future = Message::Bcast { round: 3, origin: 1, payload: Bytes::new() };
    s.handle(Event::Receive { from: 1, msg: future });
    // Reconfigure to round 5: the buffered round-3 message is obsolete.
    s.reconfigure(cfg(3), 5);
    assert_eq!(s.round(), 5);
    // Complete round 5 normally; the stale buffer must not resurface.
    let mut acts = Vec::new();
    s.handle_into(Event::ABroadcast(Bytes::new()), &mut acts);
    for origin in [1u32, 2] {
        s.handle_into(
            Event::Receive {
                from: origin,
                msg: Message::Bcast { round: 5, origin, payload: Bytes::new() },
            },
            &mut acts,
        );
    }
    let (round, msgs) = deliver_actions(&acts).expect("round 5 completes");
    assert_eq!(round, 5);
    assert_eq!(msgs.len(), 3);
}

#[test]
fn fwd_bwd_ignored_in_perfect_mode() {
    let mut s = Server::new(cfg(3), 0);
    assert!(s
        .handle(Event::Receive { from: 1, msg: Message::Fwd { round: 0, origin: 1 } })
        .is_empty());
    assert!(s
        .handle(Event::Receive { from: 1, msg: Message::Bwd { round: 0, origin: 1 } })
        .is_empty());
}
