//! Regression: failure notifications arriving for rounds frozen in the
//! `Ready` phase (terminated ahead of the delivery frontier, window > 1)
//! must record, re-flood, and leave the frozen message set untouched —
//! and the frontier delivery's tagging must scrub the tagged server from
//! *every* still-open round, including `Ready` ones holding an
//! already-received message of the tagged server.
//!
//! Scripted single-server schedule (window 4, 5-server clique, victim 4):
//! rounds 1–3 terminate early via failure-notification refutation while
//! round 0 is still gathering, then late FAILs probe the frozen rounds,
//! then round 0 completes and the cascade delivers everything.

use allconcur_core::config::Config;
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_graph::standard::complete_digraph;
use bytes::Bytes;
use std::sync::Arc;

const N: usize = 5;
const VICTIM: u32 = 4;

fn windowed_server() -> Server {
    let cfg = Config::new(Arc::new(complete_digraph(N)), N - 2).with_round_window(4);
    Server::new(cfg, 0)
}

fn bcast(round: u64, origin: u32, tag: &str) -> Message {
    Message::Bcast {
        round,
        origin,
        payload: Bytes::from(format!("r{round}-m{origin}-{tag}").into_bytes()),
    }
}

fn deliveries(actions: &[Action]) -> Vec<(u64, Vec<u32>)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Deliver { round, messages } => {
                Some((*round, messages.iter().map(|&(o, _)| o).collect()))
            }
            _ => None,
        })
        .collect()
}

fn fail_sends(actions: &[Action]) -> Vec<(u64, u32, u32)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Send { msg: Message::Fail { round, failed, detector }, .. } => {
                Some((*round, *failed, *detector))
            }
            _ => None,
        })
        .collect()
}

/// Drive the server to the probe state: rounds 0–3 open, own payloads
/// broadcast, rounds 1–3 frozen in `Ready` (terminated without the
/// victim via refutation), round 0 still gathering. When
/// `victim_round3_msg` is set, round 3 additionally received the
/// victim's message *before* the refutation — so its frozen set holds a
/// message the frontier delivery will later tag away.
fn setup_ready_rounds(victim_round3_msg: bool) -> Server {
    let mut s = windowed_server();
    let mut acts = Vec::new();
    for r in 0..4u64 {
        s.handle_into(Event::ABroadcast(Bytes::from(format!("own-r{r}").into_bytes())), &mut acts);
    }
    assert_eq!(s.open_rounds(), 4, "window 4 opens four rounds");

    if victim_round3_msg {
        acts.clear();
        s.handle_into(Event::Receive { from: VICTIM, msg: bcast(3, VICTIM, "late") }, &mut acts);
    }

    // Rounds 1–3: everyone else's messages arrive; the victim's do not.
    for r in 1..4u64 {
        for origin in 1..4u32 {
            acts.clear();
            s.handle_into(Event::Receive { from: origin, msg: bcast(r, origin, "x") }, &mut acts);
        }
    }
    // Local suspicion covers (victim, 0) in every open round; the peers'
    // notifications arrive tagged round 1 and propagate forward to every
    // later open round — that completes the refutation for rounds 1–3
    // ((4,q) for all successors q), so they terminate without the victim
    // and freeze as Ready behind the still-gathering frontier.
    acts.clear();
    s.handle_into(Event::Suspect { suspect: VICTIM }, &mut acts);
    for detector in 1..4u32 {
        acts.clear();
        s.handle_into(
            Event::Receive {
                from: detector,
                msg: Message::Fail { round: 1, failed: VICTIM, detector },
            },
            &mut acts,
        );
        assert!(deliveries(&acts).is_empty(), "nothing may deliver ahead of the frontier");
    }
    assert_eq!(s.round(), 0, "frontier must not move");
    assert_eq!(s.open_rounds(), 4);
    s
}

/// Complete round 0 (messages + the round-0-tagged refutation) and
/// return the delivery cascade.
fn complete_frontier(s: &mut Server) -> Vec<(u64, Vec<u32>)> {
    let mut cascade = Vec::new();
    let mut acts = Vec::new();
    for origin in 1..4u32 {
        acts.clear();
        s.handle_into(Event::Receive { from: origin, msg: bcast(0, origin, "x") }, &mut acts);
        cascade.extend(deliveries(&acts));
    }
    for detector in 1..4u32 {
        acts.clear();
        s.handle_into(
            Event::Receive {
                from: detector,
                msg: Message::Fail { round: 0, failed: VICTIM, detector },
            },
            &mut acts,
        );
        cascade.extend(deliveries(&acts));
    }
    cascade
}

#[test]
fn late_fail_for_ready_round_records_refloods_and_freezes_the_set() {
    let mut s = setup_ready_rounds(false);

    // The probe: a notification about a still-alive server arrives
    // tagged for round 2 — a round frozen in Ready. It must be recorded
    // and re-flooded under round 2's tag *and* forward-propagated to
    // round 3 (also Ready), without delivering, panicking, or touching
    // the frozen sets.
    let probe = Message::Fail { round: 2, failed: 3, detector: 1 };
    let acts = s.handle(Event::Receive { from: 1, msg: probe });
    assert!(deliveries(&acts).is_empty(), "a Ready round must stay frozen");
    let floods = fail_sends(&acts);
    let d = N - 1; // complete digraph: d successors per flood
    assert_eq!(
        floods.iter().filter(|&&(r, f, det)| r == 2 && f == 3 && det == 1).count(),
        d,
        "the Ready round re-floods the notification under its own tag"
    );
    assert_eq!(
        floods.iter().filter(|&&(r, f, det)| r == 3 && f == 3 && det == 1).count(),
        d,
        "forward propagation reaches the later Ready round"
    );
    // A duplicate of the same pair is deduplicated per round — no
    // re-flood, no state change.
    let dup = Message::Fail { round: 2, failed: 3, detector: 1 };
    let acts = s.handle(Event::Receive { from: 2, msg: dup });
    assert!(fail_sends(&acts).is_empty(), "R-broadcast dedup in the Ready round");
    assert!(deliveries(&acts).is_empty());

    // Round 0 completes: the cascade must deliver all four rounds in
    // order, excluding the victim everywhere, and server 3 — the target
    // of the late notification — must keep its slot in every set (its
    // messages were already frozen in).
    let cascade = complete_frontier(&mut s);
    assert_eq!(
        cascade,
        vec![
            (0, vec![0, 1, 2, 3]),
            (1, vec![0, 1, 2, 3]),
            (2, vec![0, 1, 2, 3]),
            (3, vec![0, 1, 2, 3]),
        ],
        "in-order cascade, victim tagged out, late-suspected server retained"
    );
    assert_eq!(s.round(), 4);
    assert!(!s.is_alive(VICTIM), "victim tagged at the frontier delivery");
    assert!(s.is_alive(3), "an alive server with its message delivered is never tagged");
}

#[test]
fn frontier_tagging_scrubs_received_message_from_ready_round() {
    // Round 3's frozen set contains the victim's message (received
    // before any suspicion); rounds 1–2 terminated without it. The
    // frontier delivery tags the victim (missing from round 0's agreed
    // set), so the scrub must *discard* the victim's round-3 message —
    // every correct server delivers rounds in order and scrubs
    // identically, which is what keeps round-3 sets uniform even though
    // the message reached only some servers.
    let mut s = setup_ready_rounds(true);
    let cascade = complete_frontier(&mut s);
    assert_eq!(
        cascade,
        vec![
            (0, vec![0, 1, 2, 3]),
            (1, vec![0, 1, 2, 3]),
            (2, vec![0, 1, 2, 3]),
            (3, vec![0, 1, 2, 3]),
        ],
        "the victim's already-received round-3 message is scrubbed, not delivered"
    );
    assert!(!s.is_alive(VICTIM));
    assert_eq!(s.round(), 4);
}

#[test]
fn late_fail_keeps_windowed_cluster_consistent_end_to_end() {
    // Cross-server corroboration of the single-server script: five
    // directly-driven servers, window 4, per-link FIFO network pump.
    // The victim broadcasts round 0 and dies; every survivor suspects
    // it before the broadcast arrives (so the §3.3.2 rule ignores it);
    // the refutations flow through all four pipelined rounds and every
    // survivor must deliver four identical victim-free rounds.
    let cfg = Config::new(Arc::new(complete_digraph(N)), N - 2).with_round_window(4);
    let mut servers: Vec<Server> = (0..N as u32).map(|i| Server::new(cfg.clone(), i)).collect();
    let mut links: std::collections::VecDeque<(u32, u32, Message)> = Default::default();
    let mut delivered: Vec<Vec<(u64, Vec<u32>)>> = vec![Vec::new(); N];
    let drive = |servers: &mut Vec<Server>,
                 links: &mut std::collections::VecDeque<(u32, u32, Message)>,
                 delivered: &mut Vec<Vec<(u64, Vec<u32>)>>,
                 id: u32,
                 ev: Event| {
        let dead = id == VICTIM;
        for action in servers[id as usize].handle(ev) {
            match action {
                // The victim dies right after round 0: its later sends
                // never leave (fail-stop).
                Action::Send { to, msg } => {
                    if !(dead && msg.round() > 0) {
                        links.push_back((id, to, msg));
                    }
                }
                Action::Deliver { round, messages } => {
                    delivered[id as usize].push((round, messages.iter().map(|&(o, _)| o).collect()))
                }
            }
        }
    };

    // Everyone submits four rounds of payloads; the victim only round 0.
    for id in 0..N as u32 {
        let rounds = if id == VICTIM { 1 } else { 4 };
        for r in 0..rounds {
            drive(
                &mut servers,
                &mut links,
                &mut delivered,
                id,
                Event::ABroadcast(Bytes::from(format!("s{id}-r{r}").into_bytes())),
            );
        }
    }
    // Every survivor's FD suspects the victim.
    for id in 0..N as u32 {
        if id != VICTIM {
            drive(&mut servers, &mut links, &mut delivered, id, Event::Suspect { suspect: VICTIM });
        }
    }
    // Pump the network to quiescence (FIFO order; the victim receives
    // nothing — it is dead).
    while let Some((from, to, msg)) = links.pop_front() {
        if to != VICTIM {
            drive(&mut servers, &mut links, &mut delivered, to, Event::Receive { from, msg });
        }
    }

    let reference = &delivered[0];
    assert_eq!(reference.len(), 4, "all four pipelined rounds deliver");
    for (r, entry) in reference.iter().enumerate() {
        // Every survivor suspected the victim before its round-0 BCAST
        // arrived, so the §3.3.2 suspected-predecessor rule drops it and
        // the victim is excluded uniformly from round 0 onward.
        assert_eq!(entry, &(r as u64, vec![0, 1, 2, 3]), "victim excluded from round {r}");
    }
    for id in 1..N as u32 {
        if id == VICTIM {
            continue;
        }
        assert_eq!(
            &delivered[id as usize], reference,
            "server {id} diverged from server 0 under the windowed crash schedule"
        );
    }
}
