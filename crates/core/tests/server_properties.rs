//! Property-based tests of the protocol state machine, driven directly
//! (no network model): adversarial message orderings, duplicated and
//! stale deliveries, and codec round-trips.

use allconcur_core::config::{Config, FdMode};
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_core::ServerId;
use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::gs::gs_digraph;
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Run all servers to quiescence with a pending-message queue whose
/// service order is permuted by `order_seed`: every schedule a real
/// network could produce (FIFO per link is preserved by servicing a
/// whole link burst at once... here we permute at message granularity,
/// which is *stronger* than TCP FIFO and must still converge because
/// round-tagged dedup makes handlers order-insensitive within a round).
fn run_permuted(cfg: &Config, payloads: &[Bytes], order_seed: u64) -> Vec<Vec<(ServerId, Bytes)>> {
    let n = cfg.n();
    let mut servers: Vec<Server> =
        (0..n as ServerId).map(|i| Server::new(cfg.clone(), i)).collect();
    let mut queue: VecDeque<(ServerId, ServerId, Message)> = VecDeque::new();
    let mut delivered: Vec<Vec<(ServerId, Bytes)>> = vec![Vec::new(); n];
    let mut rng_state = order_seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);

    let push_actions = |from: ServerId,
                        actions: Vec<Action>,
                        queue: &mut VecDeque<(ServerId, ServerId, Message)>,
                        delivered: &mut Vec<Vec<(ServerId, Bytes)>>| {
        for a in actions {
            match a {
                Action::Send { to, msg } => queue.push_back((from, to, msg)),
                Action::Deliver { messages, .. } => delivered[from as usize] = messages,
            }
        }
    };

    for i in 0..n as ServerId {
        let actions = servers[i as usize].handle(Event::ABroadcast(payloads[i as usize].clone()));
        push_actions(i, actions, &mut queue, &mut delivered);
    }
    while !queue.is_empty() {
        // Xorshift pick: service a pseudo-random queued message. FIFO per
        // (from, to) link is preserved by scanning for the first message
        // of the chosen link.
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        let pick = (rng_state as usize) % queue.len();
        let (pf, pt, _) = queue[pick];
        let first_of_link = (0..queue.len())
            .find(|&i| {
                let (f, t, _) = queue[i];
                (f, t) == (pf, pt)
            })
            .expect("pick exists");
        let (from, to, msg) = queue.remove(first_of_link).expect("index valid");
        let actions = servers[to as usize].handle(Event::Receive { from, msg });
        push_actions(to, actions, &mut queue, &mut delivered);
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any link-FIFO-preserving schedule produces the same total order.
    #[test]
    fn total_order_under_any_schedule(order_seed in 0u64..1_000_000, n in 6usize..11) {
        let graph = binomial_graph(n);
        let cfg = Config::new(Arc::new(graph), 1);
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 12])).collect();
        let delivered = run_permuted(&cfg, &payloads, order_seed);
        let reference = &delivered[0];
        prop_assert_eq!(reference.len(), n);
        for (i, seq) in delivered.iter().enumerate() {
            prop_assert_eq!(seq, reference, "server {} diverged under schedule {}", i, order_seed);
        }
        for (i, (origin, payload)) in reference.iter().enumerate() {
            prop_assert_eq!(*origin as usize, i);
            prop_assert_eq!(payload, &payloads[i]);
        }
    }

    /// Duplicated deliveries (e.g. a retransmitting transport) change
    /// nothing: feed every message twice.
    #[test]
    fn duplicate_deliveries_are_harmless(n in 6usize..10) {
        let graph = gs_digraph(n.max(6), 3).unwrap();
        let n = graph.order();
        let cfg = Config::new(Arc::new(graph), 2);
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 4])).collect();

        let mut servers: Vec<Server> =
            (0..n as ServerId).map(|i| Server::new(cfg.clone(), i)).collect();
        let mut queue: VecDeque<(ServerId, ServerId, Message)> = VecDeque::new();
        let mut delivered: Vec<Vec<(ServerId, Bytes)>> = vec![Vec::new(); n];
        for i in 0..n as ServerId {
            for a in servers[i as usize].handle(Event::ABroadcast(payloads[i as usize].clone())) {
                if let Action::Send { to, msg } = a {
                    queue.push_back((i, to, msg));
                }
            }
        }
        while let Some((from, to, msg)) = queue.pop_front() {
            // Deliver twice.
            for copy in [msg.clone(), msg] {
                for a in servers[to as usize].handle(Event::Receive { from, msg: copy }) {
                    match a {
                        Action::Send { to: t, msg } => queue.push_back((to, t, msg)),
                        Action::Deliver { messages, .. } => delivered[to as usize] = messages,
                    }
                }
            }
        }
        let reference = &delivered[0];
        prop_assert_eq!(reference.len(), n);
        for seq in &delivered {
            prop_assert_eq!(seq, reference);
        }
    }

    /// Codec round-trip for arbitrary messages.
    #[test]
    fn codec_roundtrip(
        round in 0u64..u64::MAX,
        origin in 0u32..10_000,
        detector in 0u32..10_000,
        payload in prop::collection::vec(any::<u8>(), 0..2048),
        kind in 0u8..4,
    ) {
        let msg = match kind {
            0 => Message::Bcast { round, origin, payload: Bytes::from(payload) },
            1 => Message::Fail { round, failed: origin, detector },
            2 => Message::Fwd { round, origin },
            _ => Message::Bwd { round, origin },
        };
        let mut encoded = msg.to_bytes();
        prop_assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = Message::decode(&mut encoded).unwrap();
        prop_assert_eq!(decoded, msg);
        prop_assert!(encoded.is_empty());
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn codec_decode_never_panics(junk in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = Bytes::from(junk);
        let _ = Message::decode(&mut buf); // Ok or Err, never panic
    }

    /// Batch encode/decode round-trip with arbitrary request sizes.
    #[test]
    fn batch_roundtrip(requests in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..32)) {
        let mut batcher = allconcur_core::batch::Batcher::new();
        for r in &requests {
            batcher.push(Bytes::from(r.clone()));
        }
        let payload = batcher.take_batch();
        let decoded = allconcur_core::batch::decode_batch(payload).unwrap();
        prop_assert_eq!(decoded.len(), requests.len());
        for (d, r) in decoded.iter().zip(&requests) {
            prop_assert_eq!(d.as_ref(), r.as_slice());
        }
    }

    /// ◇P mode delivers the same sequence as P mode in failure-free
    /// runs, for any schedule.
    #[test]
    fn ep_mode_equals_p_mode_failure_free(order_seed in 0u64..100_000) {
        let n = 8;
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 6])).collect();
        let graph = gs_digraph(n, 3).unwrap();
        let p_cfg = Config::new(Arc::new(graph.clone()), 2);
        let ep_cfg = Config::new(Arc::new(graph), 2).with_fd_mode(FdMode::EventuallyPerfect);
        let p = run_permuted(&p_cfg, &payloads, order_seed);
        let ep = run_permuted(&ep_cfg, &payloads, order_seed);
        prop_assert_eq!(&p[0], &ep[0]);
        for seq in &ep {
            prop_assert_eq!(seq, &ep[0]);
        }
    }
}
