//! Workload generators for the evaluation scenarios (§1.1, §5).
//!
//! All workloads drive a [`SimCluster`] through consecutive agreement
//! rounds with the paper's buffering rule: "requests are buffered until
//! the current agreement round is completed; then, they are packed into a
//! message that is A-broadcast in the next round". Request arrival is
//! modelled fluidly — `rate × round_duration` requests accumulate per
//! server per round (with fractional carry), which reproduces both the
//! flat low-rate latency plateau and the unstable blow-up beyond the
//! saturation rate that Fig. 8 discusses.

use allconcur_core::batch::encode_fixed;
use allconcur_core::ServerId;
use allconcur_graph::{choose_gs_degree, ReliabilityModel};
use allconcur_sim::harness::{RoundOutcome, SimCluster, SimError};
use allconcur_sim::stats;
use allconcur_sim::SimTime;
use bytes::Bytes;

/// The paper's reliability target for overlay selection (6-nines).
pub const TARGET_NINES: f64 = 6.0;

/// Pick the Table 3 overlay for `n` servers (GS(n,d) with the 6-nines
/// degree; complete digraph below the GS threshold).
pub fn paper_overlay(n: usize) -> allconcur_graph::Digraph {
    allconcur_core::membership::build_overlay(n, &ReliabilityModel::paper_default(), TARGET_NINES)
}

/// Degree used by [`paper_overlay`] (for reporting).
pub fn paper_degree(n: usize) -> usize {
    if n >= 6 {
        choose_gs_degree(n, &ReliabilityModel::paper_default(), TARGET_NINES).unwrap_or(n - 1)
    } else {
        n - 1
    }
}

/// A constant-rate request workload.
#[derive(Debug, Clone, Copy)]
pub struct RateWorkload {
    /// Request size in bytes (64 for travel, 40 for games/exchange, 8 for
    /// the throughput sweeps).
    pub request_size: usize,
    /// Requests generated per server per second.
    pub rate_per_server: f64,
    /// Measured rounds (after warm-up).
    pub rounds: usize,
    /// Warm-up rounds excluded from statistics.
    pub warmup: usize,
}

/// Result of a rate-driven run.
#[derive(Debug, Clone)]
pub struct RateOutcome {
    /// Per-round agreement latencies (post-warm-up).
    pub latencies: Vec<SimTime>,
    /// Median agreement latency.
    pub median_latency: SimTime,
    /// 95% nonparametric CI around the median.
    pub ci: (SimTime, SimTime),
    /// Requests agreed per second over the measured window.
    pub request_throughput: f64,
    /// The offered rate exceeded the agreement capacity: batch sizes grew
    /// monotonically and the run was cut short (Fig. 8's instability).
    pub unstable: bool,
}

/// Drive `cluster` with a constant request rate per server.
pub fn run_rate_workload(
    cluster: &mut SimCluster,
    w: &RateWorkload,
) -> Result<RateOutcome, SimError> {
    let n = cluster.n();
    let mut carry = vec![0.0f64; n];
    let mut batch = vec![1usize; n]; // bootstrap with one request each
    let mut latencies = Vec::with_capacity(w.rounds);
    let mut requests_done = 0u64;
    let mut measured_time = SimTime::ZERO;
    let mut unstable = false;
    let blowup_limit = 1usize << 18; // 256Ki requests per batch: declare unstable
    let mut baseline_latency: Option<SimTime> = None;

    for round in 0..(w.warmup + w.rounds) {
        let payloads: Vec<Bytes> = (0..n)
            .map(|i| {
                if cluster.is_crashed(i as ServerId) {
                    Bytes::new()
                } else {
                    encode_fixed(batch[i], w.request_size, round as u8)
                }
            })
            .collect();
        let out = cluster.run_round(&payloads)?;
        let dt = out.agreement_latency();
        let base = *baseline_latency.get_or_insert(dt);
        if round >= w.warmup {
            latencies.push(dt);
            measured_time += dt;
            requests_done += batch.iter().map(|&b| b as u64).sum::<u64>();
        }
        // Fluid arrivals during the round just completed.
        let dt_s = dt.as_secs_f64();
        for i in 0..n {
            let gen = w.rate_per_server * dt_s + carry[i];
            batch[i] = gen as usize;
            carry[i] = gen - batch[i] as f64;
            if batch[i] > blowup_limit {
                unstable = true;
            }
        }
        // Geometric latency growth = offered rate beyond capacity; cut
        // the run before the batches eat the machine.
        if dt.as_ns() > base.as_ns().saturating_mul(50) {
            unstable = true;
        }
        if unstable {
            break;
        }
    }

    let lat_us: Vec<f64> = latencies.iter().map(|t| t.as_us_f64()).collect();
    let ci = if lat_us.is_empty() {
        stats::MedianCi { median: 0.0, lo: 0.0, hi: 0.0 }
    } else {
        stats::median_ci95(&lat_us)
    };
    Ok(RateOutcome {
        median_latency: SimTime::from_ns((ci.median * 1e3) as u64),
        ci: (SimTime::from_ns((ci.lo * 1e3) as u64), SimTime::from_ns((ci.hi * 1e3) as u64)),
        latencies,
        request_throughput: if measured_time > SimTime::ZERO {
            requests_done as f64 / measured_time.as_secs_f64()
        } else {
            0.0
        },
        unstable,
    })
}

/// Fixed-batch throughput run (Fig. 10): every server A-broadcasts
/// `batch_factor` requests of `request_size` bytes per round.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputWorkload {
    /// Requests per message (the x-axis of Fig. 10).
    pub batch_factor: usize,
    /// Request size (8 bytes in Fig. 10).
    pub request_size: usize,
    /// Rounds to run (median taken).
    pub rounds: usize,
}

/// Result of a throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputOutcome {
    /// Median round duration.
    pub round_time: SimTime,
    /// Agreement throughput in Gbps: `n × batch_bytes × 8 / round_time`
    /// (the amount of data agreed per second, §5).
    pub agreement_gbps: f64,
    /// Aggregated throughput (`× n` — every server delivers the data).
    pub aggregated_gbps: f64,
}

/// Run the Fig. 10 fixed-batch loop on `cluster`.
pub fn run_throughput(
    cluster: &mut SimCluster,
    w: &ThroughputWorkload,
) -> Result<ThroughputOutcome, SimError> {
    let n = cluster.n();
    let batch_bytes = w.batch_factor * w.request_size;
    let payloads: Vec<Bytes> =
        (0..n).map(|i| encode_fixed(w.batch_factor, w.request_size, i as u8)).collect();
    let mut times = Vec::with_capacity(w.rounds);
    for _ in 0..w.rounds {
        let out = cluster.run_round(&payloads)?;
        times.push(out.agreement_latency().as_us_f64());
    }
    let round_time = SimTime::from_ns((stats::median(&times) * 1e3) as u64);
    let agreed_bits = (n * batch_bytes) as f64 * 8.0;
    let agreement_gbps = agreed_bits / round_time.as_secs_f64() / 1e9;
    Ok(ThroughputOutcome { round_time, agreement_gbps, aggregated_gbps: agreement_gbps * n as f64 })
}

/// One membership-timeline sample: requests delivered at a given time.
pub type ThroughputSample = (f64, f64);

/// Membership-churn event (Fig. 7): F and J markers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// `count` servers crash at time `at` (seconds).
    Fail {
        /// Event time in simulated seconds.
        at: f64,
        /// Servers crashing simultaneously.
        count: usize,
    },
    /// `count` servers join at time `at` (seconds).
    Join {
        /// Event time in simulated seconds.
        at: f64,
        /// Servers joining.
        count: usize,
    },
}

/// Fig. 7's scenario: constant per-server request rate under a scripted
/// fail/join sequence; returns `(time, requests-delivered)` samples for
/// binning plus the events actually applied.
///
/// Joins rebuild the overlay (a fresh GS over the grown membership —
/// §3's agreed reconfiguration) after a connection-establishment pause;
/// failures rely on the FD (`Δ_to`) and the protocol's failed-tagging.
pub struct ChurnTimeline {
    /// Initial server count (32 in Fig. 7).
    pub n: usize,
    /// Requests per server per second (10 000 in Fig. 7).
    pub rate_per_server: f64,
    /// Request size (64 B in Fig. 7).
    pub request_size: usize,
    /// Total simulated duration in seconds.
    pub duration: f64,
    /// The F/J script.
    pub events: Vec<ChurnEvent>,
    /// FD timeout `Δ_to` (100 ms in Fig. 7).
    pub fd_timeout: SimTime,
    /// Pause while a joiner establishes connections (§5 reports ≈80 ms of
    /// unavailability per join).
    pub join_pause: SimTime,
}

impl ChurnTimeline {
    /// Run the timeline; returns throughput samples (time in seconds,
    /// requests delivered at that instant).
    pub fn run(&self, seed: u64) -> Vec<ThroughputSample> {
        fn time_of(e: &ChurnEvent) -> f64 {
            match e {
                ChurnEvent::Fail { at, .. } | ChurnEvent::Join { at, .. } => *at,
            }
        }
        let mut samples: Vec<ThroughputSample> = Vec::new();
        let mut n = self.n;
        let mut pending_events = self.events.clone();
        pending_events.sort_by(|a, b| time_of(a).partial_cmp(&time_of(b)).expect("no NaN times"));

        let mut cluster = self.make_cluster(n, SimTime::ZERO, seed);
        let mut carry = vec![0.0f64; n];
        let mut batch = vec![1usize; n];
        let mut event_idx = 0usize;

        while cluster.clock().as_secs_f64() < self.duration {
            // Apply due events.
            while event_idx < pending_events.len() {
                let due = time_of(&pending_events[event_idx]);
                if due > cluster.clock().as_secs_f64() {
                    break;
                }
                match pending_events[event_idx] {
                    ChurnEvent::Fail { count, .. } => {
                        // Crash the highest-numbered live servers.
                        let live = cluster.live_servers();
                        for &victim in live.iter().rev().take(count) {
                            cluster.schedule_crash(cluster.clock(), victim);
                        }
                    }
                    ChurnEvent::Join { count, .. } => {
                        // Agreed reconfiguration: fresh overlay over the
                        // surviving members plus the joiners, after the
                        // connection-establishment pause.
                        let survivors = cluster.live_servers().len();
                        n = survivors + count;
                        let resume = cluster.clock() + self.join_pause;
                        cluster = self.make_cluster(n, resume, seed.wrapping_add(event_idx as u64));
                        carry = vec![0.0; n];
                        batch = vec![1; n];
                    }
                }
                event_idx += 1;
            }

            let payloads: Vec<Bytes> = (0..n)
                .map(|i| {
                    if cluster.is_crashed(i as ServerId) {
                        Bytes::new()
                    } else {
                        encode_fixed(batch[i], self.request_size, 0)
                    }
                })
                .collect();
            let Ok(out) = cluster.run_round(&payloads) else {
                break; // overlay lost liveness (too many failures)
            };
            let delivered: u64 = cluster
                .live_servers()
                .first()
                .and_then(|&s| out.delivered.get(&s))
                .map(|msgs| msgs.iter().map(|(_, b)| (b.len() / self.request_size) as u64).sum())
                .unwrap_or(0);
            samples.push((out.end().as_secs_f64(), delivered as f64));

            let dt = out.agreement_latency().as_secs_f64();
            for i in 0..n {
                if cluster.is_crashed(i as ServerId) {
                    batch[i] = 0;
                    continue;
                }
                let gen = self.rate_per_server * dt + carry[i];
                batch[i] = gen as usize;
                carry[i] = gen - batch[i] as f64;
            }
        }
        samples
    }

    fn make_cluster(&self, n: usize, start: SimTime, seed: u64) -> SimCluster {
        // TCP profile: its ≈250 µs rounds keep the DES event count (and
        // the binary's wall time) manageable over multi-second timelines;
        // the failure/join dips are FD-dominated (100 ms ≫ round time) so
        // the figure's shape is identical on the IBV profile.
        SimCluster::builder(paper_overlay(n))
            .network(allconcur_sim::NetworkModel::tcp_cluster())
            .fd_detection_delay(self.fd_timeout)
            .seed(seed)
            .start_clock(start)
            .build()
    }
}

/// Convenience: one failure-free single-payload round (Fig. 6's
/// single-request benchmark). Returns the round outcome.
pub fn single_request_round(
    cluster: &mut SimCluster,
    sender: ServerId,
    request_size: usize,
) -> Result<RoundOutcome, SimError> {
    let n = cluster.n();
    let payloads: Vec<Bytes> = (0..n as ServerId)
        .map(|i| if i == sender { Bytes::from(vec![0xA5; request_size]) } else { Bytes::new() })
        .collect();
    cluster.run_round(&payloads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use allconcur_sim::NetworkModel;

    fn cluster(n: usize) -> SimCluster {
        SimCluster::builder(paper_overlay(n)).network(NetworkModel::ib_verbs()).build()
    }

    #[test]
    fn paper_overlay_matches_table3() {
        assert_eq!(paper_degree(8), 3);
        assert_eq!(paper_degree(64), 5);
        let g = paper_overlay(32);
        assert_eq!(g.degree(), 4);
        assert_eq!(g.order(), 32);
    }

    #[test]
    fn low_rate_latency_is_flat() {
        let mut c = cluster(8);
        let w = RateWorkload { request_size: 64, rate_per_server: 100.0, rounds: 12, warmup: 3 };
        let out = run_rate_workload(&mut c, &w).unwrap();
        assert!(!out.unstable);
        // At 100 req/s the batches are empty: latency ≈ empty-round time,
        // well under a millisecond on IBV.
        assert!(out.median_latency < SimTime::from_ms(1), "{}", out.median_latency);
    }

    #[test]
    fn overload_detected_as_unstable() {
        let mut c = cluster(8);
        // 10^12 requests/s/server of 64 B is far beyond any capacity.
        let w = RateWorkload { request_size: 64, rate_per_server: 1e12, rounds: 40, warmup: 0 };
        let out = run_rate_workload(&mut c, &w).unwrap();
        assert!(out.unstable, "absurd offered load must blow up");
    }

    #[test]
    fn throughput_peaks_with_batching() {
        let mut tiny = cluster(8);
        let small = run_throughput(
            &mut tiny,
            &ThroughputWorkload { batch_factor: 16, request_size: 8, rounds: 3 },
        )
        .unwrap();
        let mut big = cluster(8);
        let large = run_throughput(
            &mut big,
            &ThroughputWorkload { batch_factor: 1 << 12, request_size: 8, rounds: 3 },
        )
        .unwrap();
        assert!(
            large.agreement_gbps > 5.0 * small.agreement_gbps,
            "batching must amortise per-message overhead: {} vs {}",
            large.agreement_gbps,
            small.agreement_gbps
        );
        assert!((large.aggregated_gbps - 8.0 * large.agreement_gbps).abs() < 1e-9);
    }

    #[test]
    fn single_request_has_empty_peers() {
        let mut c = cluster(8);
        let out = single_request_round(&mut c, 3, 64).unwrap();
        let msgs = &out.delivered[&0];
        assert_eq!(msgs.len(), 8);
        let nonempty: Vec<_> = msgs.iter().filter(|(_, b)| !b.is_empty()).collect();
        assert_eq!(nonempty.len(), 1);
        assert_eq!(nonempty[0].0, 3);
    }
}
