#![warn(missing_docs)]
//! # allconcur-bench — regenerating the paper's tables and figures
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§5); see DESIGN.md's experiment index for the
//! mapping and EXPERIMENTS.md for recorded paper-vs-measured results.
//! The Criterion benches in `benches/` cover the same machinery at micro
//! scale.
//!
//! * [`workloads`] — the three §1.1 application profiles (travel
//!   reservation, multiplayer games, distributed exchange) expressed as
//!   request-rate-driven round loops, plus the fixed-batch throughput
//!   loop of Fig. 10 and the membership timeline of Fig. 7;
//! * [`output`] — plain-text table formatting shared by the binaries.

pub mod output;
pub mod workloads;
