//! Minimal aligned-column table printing for the figure/table binaries.
//!
//! The binaries print both a human-readable table and (behind `--csv`)
//! machine-readable CSV so the series can be replotted against the
//! paper's figures.

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Human-friendly time formatting (µs under 1 ms, ms under 1 s).
pub fn fmt_time(t: allconcur_sim::SimTime) -> String {
    let ns = t.as_ns();
    if ns < 1_000_000 {
        format!("{:.1}µs", t.as_us_f64())
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", t.as_ms_f64())
    } else {
        format!("{:.3}s", t.as_secs_f64())
    }
}

/// Gbps from bytes over a simulated duration.
pub fn gbps(bytes: f64, time: allconcur_sim::SimTime) -> f64 {
    bytes * 8.0 / time.as_secs_f64() / 1e9
}

/// Minimal CLI flag parsing for the figure binaries: `has_flag("--csv")`
/// and `arg_value("--rounds")` over `std::env::args`.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Value of `--name value` or `--name=value`, if present.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(rest) = a.strip_prefix(&format!("{name}=")) {
            return Some(rest.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use allconcur_sim::SimTime;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["n", "latency"]);
        t.row(vec!["8", "35µs"]);
        t.row(vec!["64", "0.75ms"]);
        let s = t.render();
        assert!(s.contains(" n  latency"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_renders() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(SimTime::from_us(35)), "35.0µs");
        assert_eq!(fmt_time(SimTime::from_ms(2)), "2.00ms");
        assert_eq!(fmt_time(SimTime::from_secs(3)), "3.000s");
    }

    #[test]
    fn gbps_math() {
        // 1 GB in 1 s = 8 Gbps.
        assert!((gbps(1e9, SimTime::from_secs(1)) - 8.0).abs() < 1e-9);
    }
}
