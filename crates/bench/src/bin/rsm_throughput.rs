//! RSM throughput through the typed `Service` layer: commands/second a
//! replicated key-value store sustains end to end — encode, batch,
//! agree, decode, apply, correlate the typed response — as a function of
//! the per-round batch size (§5's batching factor, measured at the
//! application contract instead of raw payload bytes).
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin rsm_throughput [--csv] [--json PATH] [--pipeline W]
//! ```
//!
//! Rounds are **pipelined**: the driver keeps `Service::set_pipeline`'s
//! depth (default 8) of rounds in flight, which the service maps onto
//! the transport's round window, so consecutive rounds' dissemination
//! overlaps in simulated time. Simulated-time throughput gains come
//! from that overlap (bounded by the LogP NIC occupancy `2·n·d·o` per
//! round, which the `tcp_cluster` profile saturates quickly — see
//! DESIGN.md's pipelining notes); wall-clock throughput measures the
//! engine's CPU cost per command, which the overlap leaves unchanged by
//! design. `--pipeline 1` reproduces the sequential measurement.
//!
//! Besides the table, the run emits machine-readable `BENCH_rsm.json`
//! (override with `--json PATH`) so the performance trajectory of the
//! RSM hot path is recorded PR over PR.

use allconcur_bench::output::{arg_value, has_flag, Table};
use allconcur_cluster::{Cluster, SimOptions};
use allconcur_core::replica::{KvCommand, KvStore};
use allconcur_graph::gs::gs_digraph;
use allconcur_rsm::Service;
use allconcur_sim::network::NetworkModel;
use std::time::{Duration, Instant};

const N: usize = 8;
const TIMEOUT: Duration = Duration::from_secs(600);
/// Unmeasured rounds driven before the clock starts at each point
/// (enough to fill the deepest pipeline and reach steady state).
const WARMUP_ROUNDS: usize = 8;

struct Point {
    batch: usize,
    commands: u64,
    sim_us: f64,
    wall_ms: f64,
}

impl Point {
    /// Commands per *simulated* second — the deployment-model number.
    fn cmds_per_sec_sim(&self) -> f64 {
        self.commands as f64 / (self.sim_us / 1e6)
    }

    /// Commands per wall-clock second — the engine-overhead number
    /// (encode/decode, correlation, pump) on the host running the bench.
    fn cmds_per_sec_wall(&self) -> f64 {
        self.commands as f64 / (self.wall_ms / 1e3)
    }
}

/// Drive `rounds` rounds with `batch` commands per server per round,
/// keeping `pipeline` rounds in flight, and measure simulated + wall
/// time across the whole typed pipeline.
fn run_point(batch: usize, rounds: usize, pipeline: usize) -> Point {
    let cluster = Cluster::sim_with(
        gs_digraph(N, 3).expect("GS(8,3)"),
        SimOptions { network: NetworkModel::tcp_cluster(), seed: 1, ..SimOptions::default() },
    );
    let mut kv = Service::new(cluster, &KvStore::default()).expect("service");
    kv.set_pipeline(pipeline);
    let clock = |kv: &mut Service<KvStore>| {
        kv.cluster_mut().sim_transport_mut().expect("sim").cluster().clock()
    };

    // Keys cycle over a fixed working set; clients hold refcounted key
    // buffers, so constructing a command is clone-cheap and the bench
    // measures the service pipeline rather than client-side formatting.
    let keys: Vec<bytes::Bytes> =
        (0..32).map(|i| bytes::Bytes::from(format!("k{i}").into_bytes())).collect();

    let mut handles = Vec::with_capacity(N * batch * (rounds + WARMUP_ROUNDS));
    let mut run_rounds = |kv: &mut Service<KvStore>, rounds: usize, commands: &mut u64| {
        handles.clear();
        for round in 0..rounds {
            // Closed-loop pipelining: wait for window room, then flush
            // exactly this round's batch as one round payload per origin.
            while kv.in_flight_rounds() >= pipeline as u64 {
                kv.pump(TIMEOUT).expect("pump in-flight round");
            }
            let value = bytes::Bytes::from(round.to_le_bytes().to_vec());
            for s in 0..N as u32 {
                for i in 0..batch {
                    let cmd = KvCommand::Put { key: keys[i % 32].clone(), value: value.clone() };
                    handles.push(kv.submit(s, &cmd).expect("submit"));
                    *commands += 1;
                }
            }
            kv.flush().expect("flush round");
            // Opportunistically drain whatever already agreed.
            while kv.pump(Duration::ZERO).expect("drain") {}
        }
        kv.sync(TIMEOUT).expect("tail rounds agreed");
        for handle in &handles {
            kv.wait(handle, TIMEOUT).expect("typed response");
        }
    };

    // Warm-up rounds (buffers, allocator, branch predictors) — the
    // metric is steady-state engine throughput, matching tcp_latency's
    // warm-up discipline.
    let mut warmup_cmds = 0u64;
    run_rounds(&mut kv, WARMUP_ROUNDS, &mut warmup_cmds);

    let wall_start = Instant::now();
    let sim_start = clock(&mut kv);
    let mut commands = 0u64;
    run_rounds(&mut kv, rounds, &mut commands);
    let sim_us = (clock(&mut kv) - sim_start).as_us_f64();
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    Point { batch, commands, sim_us, wall_ms }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = has_flag("--csv");
    let pipeline: usize = arg_value("--pipeline").and_then(|v| v.parse().ok()).unwrap_or(8).max(1);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_rsm.json".to_string());

    let points: Vec<Point> =
        [1usize, 4, 16, 64, 256].iter().map(|&batch| run_point(batch, 32, pipeline)).collect();

    let mut table = Table::new(vec![
        "batch/server",
        "commands",
        "sim_time_us",
        "cmds_per_sec_sim",
        "wall_ms",
        "cmds_per_sec_wall",
    ]);
    for p in &points {
        table.row(vec![
            p.batch.to_string(),
            p.commands.to_string(),
            format!("{:.1}", p.sim_us),
            format!("{:.0}", p.cmds_per_sec_sim()),
            format!("{:.1}", p.wall_ms),
            format!("{:.0}", p.cmds_per_sec_wall()),
        ]);
    }
    println!(
        "RSM throughput — typed Service over sim({N} servers, TCP LogP profile), \
         pipeline depth {pipeline}\n"
    );
    print!("{}", if csv { table.render_csv() } else { table.render() });

    // Hand-rolled JSON (no serde in the build environment).
    let series: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"batch_per_server\": {}, \"commands\": {}, \"sim_us\": {:.1}, \
                 \"cmds_per_sec_sim\": {:.0}, \"wall_ms\": {:.1}, \"cmds_per_sec_wall\": {:.0}}}",
                p.batch,
                p.commands,
                p.sim_us,
                p.cmds_per_sec_sim(),
                p.wall_ms,
                p.cmds_per_sec_wall()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"rsm_throughput\",\n  \"backend\": \"sim\",\n  \"n\": {N},\n  \
         \"pipeline\": {pipeline},\n  \"state_machine\": \"KvStore\",\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    std::fs::write(&json_path, json).expect("write BENCH json");
    println!("\nwrote {json_path}");
}
