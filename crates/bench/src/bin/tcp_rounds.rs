//! Real-sockets agreement **throughput** under round pipelining: how
//! many rounds per second a loopback deployment agrees on as a function
//! of the round window `W` — the closed-loop counterpart of
//! `tcp_latency`'s per-round latency measurement.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin tcp_rounds \
//!     [--csv] [--rounds N] [--sizes 16,32,64] [--windows 1,4,8] [--json PATH]
//! ```
//!
//! The driver keeps exactly `W` rounds outstanding (it submits round
//! `r + W` only once round `r` has delivered everywhere) and the
//! deployment runs with `round_window = W`, so `W = 1` is the
//! sequential request-response protocol and larger `W` overlaps
//! dissemination of consecutive rounds. Sequential rounds are
//! latency-bound — the wire and CPUs idle while a round's last hop
//! completes; pipelining fills that idle time, so rounds/sec scales
//! with `W` until the host is CPU-bound.
//!
//! Numbers reflect loopback + OS scheduling on the host, not a cluster
//! fabric: compare the *scaling*, not the absolutes. Emits committed
//! `BENCH_tcp_rounds.json` (override with `--json PATH`) so the
//! pipelined-throughput trajectory is tracked PR over PR.

use allconcur_bench::output::{arg_value, has_flag, Table};
use allconcur_cluster::Cluster;
use allconcur_net::runtime::RuntimeOptions;
use bytes::Bytes;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);
const PAYLOAD_BYTES: usize = 64;

/// Closed-loop run: `rounds` rounds with `window` outstanding; returns
/// rounds/sec over the measured span.
fn run_point(n: usize, window: usize, rounds: u64) -> f64 {
    let graph = allconcur_bench::workloads::paper_overlay(n);
    let opts = RuntimeOptions { round_window: window, ..RuntimeOptions::default() };
    let mut cluster = Cluster::tcp_with(graph, opts).expect("loopback cluster");
    let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; PAYLOAD_BYTES])).collect();

    // Warm-up: connection buffers, allocator, scheduler — sequential so
    // the pipeline starts from a quiescent deployment.
    for _ in 0..3 {
        cluster.run_round(&payloads, Duration::from_secs(10)).expect("warm-up round");
    }

    let mut submitted = 0u64;
    let mut counts = vec![0u64; n];
    let mut floor = 0u64; // min over per-server delivered counts
    let t0 = Instant::now();
    while floor < rounds {
        // Keep exactly `window` rounds outstanding.
        while submitted < rounds && submitted < floor + window as u64 {
            for id in 0..n as u32 {
                cluster.submit(id, payloads[id as usize].clone()).expect("submit");
            }
            submitted += 1;
        }
        let (id, delivery) = cluster
            .next_delivery(TIMEOUT)
            .unwrap_or_else(|e| panic!("stalled at n={n} window={window}: {e}"));
        assert_eq!(delivery.messages.len(), n, "full membership agrees each round");
        counts[id as usize] += 1;
        floor = counts.iter().copied().min().expect("nonempty");
    }
    let elapsed = t0.elapsed();
    cluster.shutdown().expect("clean shutdown");
    rounds as f64 / elapsed.as_secs_f64()
}

fn main() {
    let rounds: u64 = arg_value("--rounds").and_then(|v| v.parse().ok()).unwrap_or(120);
    let sizes: Vec<usize> = arg_value("--sizes")
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![16, 32, 64]);
    let windows: Vec<usize> = arg_value("--windows")
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 4, 8]);
    let csv = has_flag("--csv");
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_tcp_rounds.json".to_string());

    struct Point {
        n: usize,
        d: usize,
        window: usize,
        rounds_per_sec: f64,
        us_per_round: f64,
        speedup: f64,
    }
    let mut points: Vec<Point> = Vec::new();

    let mut table =
        Table::new(vec!["n", "d", "window", "rounds_per_sec", "us_per_round", "vs_window_1"]);
    for &n in &sizes {
        // Larger deployments get fewer rounds so the full grid stays
        // within CI budgets (the measurement is per-round rates).
        let budget = if n >= 32 {
            rounds / 4
        } else if n >= 16 {
            rounds / 2
        } else {
            rounds
        };
        let d = allconcur_bench::workloads::paper_degree(n);
        let mut base: Option<f64> = None;
        for &w in &windows {
            let rps = run_point(n, w.max(1), budget.max(10));
            let baseline = *base.get_or_insert(rps);
            let speedup = rps / baseline;
            table.row(vec![
                n.to_string(),
                d.to_string(),
                w.to_string(),
                format!("{rps:.0}"),
                format!("{:.0}", 1e6 / rps),
                format!("{speedup:.2}x"),
            ]);
            points.push(Point {
                n,
                d,
                window: w,
                rounds_per_sec: rps,
                us_per_round: 1e6 / rps,
                speedup,
            });
        }
    }
    println!(
        "Real-TCP loopback agreement throughput vs round window ({PAYLOAD_BYTES}-byte payloads)"
    );
    println!("(closed-loop: exactly `window` rounds outstanding; host-machine numbers)\n");
    print!("{}", if csv { table.render_csv() } else { table.render() });

    // Hand-rolled JSON (no serde in the build environment); same shape
    // as the other BENCH files.
    let series: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"n\": {}, \"d\": {}, \"window\": {}, \"rounds_per_sec\": {:.0}, \
                 \"us_per_round\": {:.0}, \"speedup_vs_window_1\": {:.2}}}",
                p.n, p.d, p.window, p.rounds_per_sec, p.us_per_round, p.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"tcp_rounds\",\n  \"backend\": \"tcp\",\n  \"payload_bytes\": \
         {PAYLOAD_BYTES},\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    std::fs::write(&json_path, json).expect("write BENCH json");
    println!("\nwrote {json_path}");
}
