//! Compare a freshly generated `BENCH_*.json` against the committed
//! baseline and warn — non-fatally — when a metric regressed beyond the
//! threshold. CI runs this after regenerating the benches; a regression
//! prints GitHub `::warning::` annotations but never fails the job
//! (shared-runner perf is noisy; the committed baselines are the
//! reviewed source of truth).
//!
//! ```text
//! cargo run -p allconcur-bench --bin bench_check -- \
//!     --baseline BENCH_rsm.json --fresh /tmp/new.json \
//!     --metric cmds_per_sec_wall [--threshold 0.20] \
//!     [--monotone-in window] [--monotone-group n]
//! ```
//!
//! `--monotone-in FIELD` additionally asserts the metric is monotone
//! non-decreasing in `FIELD` within each `--monotone-group` (default
//! `n`) group of the fresh series — the shape check behind the round
//! pipelining claim: rounds/sec must not *fall* as the window grows at
//! any deployment size (the n = 16 collapse the event-loop runtime
//! fixed). Violations emit `::warning::` rows like regressions do.
//!
//! Series entries are matched by position (the benches emit a fixed,
//! deterministic series), and every non-metric field of the entry is
//! echoed in the warning for context. The JSON subset parsed here is
//! exactly what the bench binaries emit (one `{...}` object per series
//! line); there is no serde in the build environment.

use allconcur_bench::output::arg_value;

/// Value of field `name` in a parsed series entry, if present.
fn field<'a>(fields: &'a [(String, String)], name: &str) -> Option<&'a str> {
    fields.iter().find(|(f, _)| f == name).map(|(_, v)| v.as_str())
}

/// Within each `group` (file order), the metric must be monotone
/// non-decreasing as `order` increases. Returns the number of
/// violations, each emitted as a `::warning::` row.
fn check_monotone(series: &[Entry], metric: &str, order: &str, group: &str) -> usize {
    let mut violations = 0;
    // (group value, order value, metric) of the previous entry seen for
    // each group, in file order — the benches emit windows sorted per n.
    let mut last: Vec<(String, f64, f64)> = Vec::new();
    for (fields, value) in series {
        let (Some(g), Some(o), Some(v)) =
            (field(fields, group), field(fields, order).and_then(|x| x.parse::<f64>().ok()), value)
        else {
            continue;
        };
        match last.iter_mut().find(|(lg, _, _)| lg == g) {
            Some((_, lo, lv)) => {
                if o > *lo && *v < *lv {
                    violations += 1;
                    println!(
                        "::warning::{metric} not monotone in {order} at {group}={g}: \
                         {order}={lo} -> {order}={o} went {lv:.0} -> {v:.0} \
                         (pipelining must not collapse as the window grows)",
                    );
                }
                *lo = o;
                *lv = *v;
            }
            None => last.push((g.to_string(), o, *v)),
        }
    }
    violations
}

/// `(fields, metric_value)` for one series entry.
type Entry = (Vec<(String, String)>, Option<f64>);

/// Parse every `{...}` series object in the file into field lists,
/// extracting `metric` when present. A missing or unreadable file is an
/// empty series — the caller warns about it loudly rather than
/// panicking, so "the bench never ran" surfaces in the job summary
/// instead of an opaque process abort.
fn parse_series(path: &str, metric: &str) -> Vec<Entry> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(open) = line.find('{') else { continue };
        let Some(close) = line.rfind('}') else { continue };
        if close <= open {
            continue;
        }
        let body = &line[open + 1..close];
        if !body.contains(':') {
            continue;
        }
        let mut fields = Vec::new();
        let mut value = None;
        for part in body.split(", \"") {
            let part = part.trim_start_matches('"');
            let Some((name, raw)) = part.split_once("\":") else { continue };
            let raw = raw.trim().trim_matches('"').to_string();
            if name == metric {
                value = raw.parse::<f64>().ok();
            }
            fields.push((name.to_string(), raw));
        }
        out.push((fields, value));
    }
    out
}

fn describe(fields: &[(String, String)], metric: &str) -> String {
    fields
        .iter()
        .filter(|(name, _)| name != metric)
        .map(|(name, v)| format!("{name}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let baseline_path = arg_value("--baseline").expect("--baseline PATH required");
    let fresh_path = arg_value("--fresh").expect("--fresh PATH required");
    let metric = arg_value("--metric").expect("--metric NAME required");
    let threshold: f64 = arg_value("--threshold").and_then(|v| v.parse().ok()).unwrap_or(0.20);

    let baseline = parse_series(&baseline_path, &metric);
    let fresh = parse_series(&fresh_path, &metric);
    if baseline.is_empty() {
        println!("::warning::{baseline_path}: no series entries found");
        return;
    }
    let mut warnings = 0usize;
    // A committed baseline with no fresh measurement means the bench
    // never ran (or emitted nothing) — the comparison below would
    // silently check zero entries and report green. Fail loudly.
    if fresh.iter().filter(|(_, value)| value.is_some()).count() == 0 {
        warnings += 1;
        println!(
            "::warning::{fresh_path}: baseline {baseline_path} has {} series but no fresh \
             `{metric}` measurement was produced — the bench did not run or emitted nothing",
            baseline.len()
        );
    } else if baseline.len() != fresh.len() {
        warnings += 1;
        println!(
            "::warning::{fresh_path}: series length {} differs from baseline {} — bench shape changed?",
            fresh.len(),
            baseline.len()
        );
    }

    let mut regressions = 0usize;
    let mut rows: Vec<(String, String, String, String, String)> = Vec::new();
    for (i, ((base_fields, base), (_, new))) in baseline.iter().zip(&fresh).enumerate() {
        let (Some(base), Some(new)) = (base, new) else { continue };
        if *base <= 0.0 {
            continue;
        }
        let ratio = new / base;
        let ctx = describe(base_fields, &metric);
        let verdict = if ratio < 1.0 - threshold {
            regressions += 1;
            println!(
                "::warning::{metric} regressed {:.0}% at series[{i}] ({ctx}): {base:.0} -> {new:.0}",
                (1.0 - ratio) * 100.0
            );
            "REGRESSED"
        } else if ratio > 1.0 + threshold {
            "improved"
        } else {
            "ok"
        };
        println!("{verdict}: {metric} at series[{i}] ({ctx}): {base:.0} -> {new:.0} ({ratio:.2}x)");
        rows.push((
            ctx,
            format!("{base:.0}"),
            format!("{new:.0}"),
            format!("{ratio:.2}x"),
            verdict.to_string(),
        ));
    }
    if regressions == 0 && !rows.is_empty() {
        println!("{metric}: no regressions beyond {:.0}% vs {baseline_path}", threshold * 100.0);
    }

    // Optional shape check: metric monotone non-decreasing in a field,
    // per group. Checks the fresh series when it produced measurements,
    // else the committed baseline (so the check still validates the
    // reviewed numbers when a runner skipped the bench).
    if let Some(order) = arg_value("--monotone-in") {
        let group = arg_value("--monotone-group").unwrap_or_else(|| "n".to_string());
        let has_fresh = fresh.iter().any(|(_, v)| v.is_some());
        let (target, which) = if has_fresh { (&fresh, "fresh") } else { (&baseline, "baseline") };
        let violations = check_monotone(target, &metric, &order, &group);
        if violations == 0 {
            println!("{metric} ({which}): monotone in {order} within every {group} group");
        }
        warnings += violations;
    }

    // Summary table — plain text on stdout, and appended as a Markdown
    // table to the job summary when running under GitHub Actions, so
    // pipelining wins/regressions are visible in the PR checks at a
    // glance. Advisory only; the process still exits 0.
    let mut md = String::new();
    md.push_str(&format!(
        "### `{metric}` — {fresh_path} vs {baseline_path} (±{:.0}% threshold)\n\n",
        threshold * 100.0
    ));
    md.push_str("| series | baseline | fresh | ratio | verdict |\n|---|---|---|---|---|\n");
    for (ctx, base, new, ratio, verdict) in &rows {
        md.push_str(&format!("| {ctx} | {base} | {new} | {ratio} | {verdict} |\n"));
    }
    if rows.is_empty() {
        md.push_str("| *(no fresh measurement — bench did not run)* | — | — | — | MISSING |\n");
    }
    md.push_str(&format!("\n**warnings: {}**\n\n", warnings + regressions));
    println!("\n{md}");
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = f.write_all(md.as_bytes());
        }
    }
    // Always exit 0: the check is advisory (see module docs).
}
