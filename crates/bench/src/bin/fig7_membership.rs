//! Fig. 7 — agreement throughput during membership changes: servers
//! failing (F) and joining (J), 32 servers, 10 000 64-byte requests per
//! server per second, `Δ_hb = 10 ms`, `Δ_to = 100 ms`.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin fig7_membership [--csv] [--duration SECS]
//! ```
//!
//! Paper shape to check: a failure causes ≈190 ms of unavailability
//! (FD timeout + recovery) followed by a throughput spike (accumulated
//! requests drain), then a plateau at the reduced membership's rate;
//! joins cause a shorter (≈80 ms) dip and restore the plateau.

use allconcur_bench::output::{arg_value, has_flag, Table};
use allconcur_bench::workloads::{ChurnEvent, ChurnTimeline};
use allconcur_sim::stats::bin_series;
use allconcur_sim::SimTime;

fn main() {
    let duration: f64 = arg_value("--duration").and_then(|v| v.parse().ok()).unwrap_or(1.6);
    // Scaled-down version of the paper's F J FF JJ FFF JJJ sequence (the
    // paper spreads it over ~70 s of wall time; the shape is per-event).
    let events = vec![
        ChurnEvent::Fail { at: 0.15, count: 1 },
        ChurnEvent::Join { at: 0.35, count: 1 },
        ChurnEvent::Fail { at: 0.55, count: 1 },
        ChurnEvent::Fail { at: 0.65, count: 1 },
        ChurnEvent::Join { at: 0.80, count: 2 },
        ChurnEvent::Fail { at: 1.00, count: 1 },
        ChurnEvent::Fail { at: 1.10, count: 1 },
        ChurnEvent::Fail { at: 1.20, count: 1 },
        ChurnEvent::Join { at: 1.40, count: 3 },
    ];
    let timeline = ChurnTimeline {
        n: 32,
        rate_per_server: 10_000.0,
        request_size: 64,
        duration,
        events: events.clone(),
        fd_timeout: SimTime::from_ms(100),
        join_pause: SimTime::from_ms(80),
    };
    let samples = timeline.run(1);

    // Fig. 7 bins into 10 ms intervals; print 50 ms rows to keep the
    // table readable (CSV emits the full 10 ms series).
    let bins = bin_series(&samples, 0.010, duration);
    let csv = has_flag("--csv");
    let mut table = Table::new(vec!["time_s", "throughput_req_per_s", "events"]);
    let step = if csv { 1 } else { 5 };
    for (i, chunk) in bins.chunks(step).enumerate() {
        let t0 = i as f64 * 0.010 * step as f64;
        let reqs: f64 = chunk.iter().sum();
        let thr = reqs / (0.010 * chunk.len() as f64);
        let marks: Vec<String> = events
            .iter()
            .filter_map(|e| match *e {
                ChurnEvent::Fail { at, count } if at >= t0 && at < t0 + 0.010 * step as f64 => {
                    Some(format!("F×{count}"))
                }
                ChurnEvent::Join { at, count } if at >= t0 && at < t0 + 0.010 * step as f64 => {
                    Some(format!("J×{count}"))
                }
                _ => None,
            })
            .collect();
        table.row(vec![format!("{t0:.2}"), format!("{thr:.0}"), marks.join(" ")]);
    }
    println!("Fig. 7 — throughput under membership changes (n=32, 10k req/s/server, 64B)");
    println!("Δ_hb=10ms Δ_to=100ms; F = failure, J = join\n");
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }

    // Unavailability summary: longest delivery gap around each event.
    println!("\nunavailability (longest inter-delivery gap within ±250ms of each event):");
    for e in &events {
        let (at, label) = match *e {
            ChurnEvent::Fail { at, count } => (at, format!("F×{count}@{at:.2}s")),
            ChurnEvent::Join { at, count } => (at, format!("J×{count}@{at:.2}s")),
        };
        let mut window: Vec<f64> =
            samples.iter().map(|&(t, _)| t).filter(|&t| t >= at - 0.05 && t <= at + 0.45).collect();
        window.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let gap = window.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        println!("  {label}: {:.0} ms", gap * 1e3);
    }
}
