//! Fig. 5 — AllConcur's reliability (in nines) as a function of graph
//! size, for binomial graphs vs GS(n,d) digraphs fitted to a 6-nines
//! target. 24-hour window, server MTTF ≈ 2 years (TSUBAME2.5 history).
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin fig5_reliability [--csv]
//! ```
//!
//! Paper shape to check: the binomial curve rises with `n` (connectivity
//! grows with `log n`), overshooting 6 nines through the mid range, then
//! collapses once the expected failure count outgrows the connectivity;
//! the GS curve hugs the 6-nines line because its degree is a free
//! parameter.

use allconcur_bench::output::{has_flag, Table};
use allconcur_graph::{choose_gs_degree, ReliabilityModel};

/// Connectivity of the binomial graph on `n` vertices: the number of
/// distinct offsets `±2^l mod n`, `0 ≤ l ≤ ⌊log₂ n⌋` (binomial graphs are
/// optimally connected).
fn binomial_connectivity(n: usize) -> usize {
    let levels = (n as f64).log2().floor() as u32;
    let mut offsets = std::collections::BTreeSet::new();
    for l in 0..=levels {
        let step = (1u64 << l) % n as u64;
        offsets.insert(step);
        offsets.insert((n as u64 - step) % n as u64);
    }
    offsets.remove(&0);
    offsets.len()
}

fn main() {
    let model = ReliabilityModel::paper_default();
    let target = 6.0;
    let mut table = Table::new(vec!["n", "binomial_k", "binomial_nines", "gs_degree", "gs_nines"]);
    for exp in 3..=15u32 {
        let n = 1usize << exp;
        let bk = binomial_connectivity(n);
        let bn = model.nines(n, bk);
        let (gd, gn) = match choose_gs_degree(n, &model, target) {
            Some(d) => (d.to_string(), format!("{:.2}", model.nines(n, d))),
            None => ("-".into(), "-".into()),
        };
        table.row(vec![
            n.to_string(),
            bk.to_string(),
            if bn.is_infinite() { ">16".into() } else { format!("{bn:.2}") },
            gd,
            gn,
        ]);
    }
    println!("Fig. 5 — reliability over 24h, MTTF ≈ 2 years (target: 6-nines)");
    println!("paper shape: binomial overshoots then collapses; GS(n,d) tracks the target\n");
    if has_flag("--csv") {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}
