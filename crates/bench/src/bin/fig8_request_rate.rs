//! Fig. 8 — agreement latency under a constant 64-byte request rate per
//! server (the travel-reservation scenario), for n ∈ {8, 16, 32, 64} on
//! the IBV (8a) and TCP (8b) profiles.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin fig8_request_rate [--csv] [--rounds N]
//! ```
//!
//! Paper shape to check: latency flat at low rates (rounds run nearly
//! empty), rising once batches contribute wire occupancy, then unstable
//! ("unbounded batching makes the system unstable once the request rate
//! exceeds the agreement throughput" — §5). TCP ≈ 3× the IBV latency.
//! Note (EXPERIMENTS.md): the paper's 8-servers × 100M req/s @ 35 µs
//! headline exceeds the 40 Gbps NIC's capacity for 64-byte requests, so
//! our saturation knee sits at lower rates.

use allconcur_bench::output::{arg_value, fmt_time, has_flag, Table};
use allconcur_bench::workloads::{paper_overlay, run_rate_workload, RateWorkload};
use allconcur_sim::{NetworkModel, SimCluster};

const NS: &[usize] = &[8, 16, 32, 64];
const RATES: &[f64] = &[1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 3e6, 1e7, 3e7, 1e8];

fn run_profile(name: &str, model: NetworkModel, rounds: usize, csv: bool) {
    let mut table = Table::new(vec!["rate_per_server", "n=8", "n=16", "n=32", "n=64"]);
    for &rate in RATES {
        let mut cells = vec![format!("{rate:.0}")];
        for &n in NS {
            let mut cluster = SimCluster::builder(paper_overlay(n)).network(model).seed(3).build();
            let w = RateWorkload { request_size: 64, rate_per_server: rate, rounds, warmup: 3 };
            let cell = match run_rate_workload(&mut cluster, &w) {
                Ok(out) if out.unstable => "unstable".to_string(),
                Ok(out) => fmt_time(out.median_latency),
                Err(e) => format!("err:{e}"),
            };
            cells.push(cell);
        }
        table.row(cells);
    }
    println!("Fig. 8{name} — agreement latency vs per-server request rate (64-byte requests)");
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    println!();
}

fn main() {
    let rounds: usize = arg_value("--rounds").and_then(|v| v.parse().ok()).unwrap_or(12);
    let csv = has_flag("--csv");
    run_profile("a (AllConcur-IBV)", NetworkModel::ib_verbs(), rounds, csv);
    run_profile("b (AllConcur-TCP)", NetworkModel::tcp_cluster(), rounds, csv);
}
