//! Fig. 9a — agreement latency for multiplayer video games: one player
//! per server, 40-byte state updates, 200 vs 400 actions per minute
//! (APM), as a function of the number of players.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin fig9a_games [--csv] [--full]
//! ```
//!
//! Paper shape to check: latency grows with the player count; at 512
//! players the paper reports 28 ms (200 APM) and 38 ms (400 APM) over
//! TCP — comfortably under the 50 ms frame budget (20 frames/s), which
//! is the "epic battles" claim. `--full` extends to 1024 players (the
//! paper's 4× latency jump from the degree-11 overlay).

use allconcur_bench::output::{fmt_time, has_flag, Table};
use allconcur_bench::workloads::{paper_overlay, run_rate_workload, RateWorkload};
use allconcur_sim::{NetworkModel, SimCluster};

fn main() {
    let csv = has_flag("--csv");
    let full = has_flag("--full");
    let mut sizes: Vec<usize> = vec![8, 16, 32, 64, 128, 256, 512];
    if full {
        sizes.push(1024);
    }
    let mut table =
        Table::new(vec!["players", "d", "latency_200apm", "latency_400apm", "frame_budget_ok"]);
    for &n in &sizes {
        let graph = paper_overlay(n);
        let d = graph.degree();
        let mut row = vec![n.to_string(), d.to_string()];
        let mut worst_ms = 0.0f64;
        for apm in [200.0, 400.0] {
            let mut cluster = SimCluster::builder(graph.clone())
                .network(NetworkModel::tcp_cluster())
                .seed(5)
                .build();
            // Deterministic network: per-round latency is stable, so a
            // handful of rounds pins the median even at large n.
            let (rounds, warmup) = if n >= 256 { (3, 1) } else { (10, 2) };
            let w = RateWorkload { request_size: 40, rate_per_server: apm / 60.0, rounds, warmup };
            let out = run_rate_workload(&mut cluster, &w).expect("game workload");
            worst_ms = worst_ms.max(out.median_latency.as_ms_f64());
            row.push(fmt_time(out.median_latency));
        }
        // Modern games update state every 50 ms (20 fps) — §1.1.
        row.push(if worst_ms < 50.0 { "yes".into() } else { "NO".to_string() });
        table.row(row);
    }
    println!("Fig. 9a — multiplayer games: 40-byte updates, APM-limited players (TCP profile)");
    println!("paper: 512 players at 28ms (200 APM) / 38ms (400 APM), under the 50ms frame\n");
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}
