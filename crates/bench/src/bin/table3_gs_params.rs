//! Table 3 — GS(n,d) parameters for 6-nines reliability: the fitted
//! degree `d`, the measured diameter `D`, and the Moore lower bound
//! `D_L(n,d)`; optionally (`--fault-diameter`) the §4.2.3 min-sum
//! fault-diameter bound `δ̂_{d−1}` for the small sizes.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin table3_gs_params [--csv] [--fault-diameter]
//! ```

use allconcur_bench::output::{has_flag, Table};
use allconcur_graph::disjoint_paths::fault_diameter_bound;
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::moore::moore_diameter_lower_bound;
use allconcur_graph::{choose_gs_degree, ReliabilityModel};

/// (n, paper d, paper D) from Table 3.
const PAPER_ROWS: &[(usize, usize, usize)] = &[
    (6, 3, 2),
    (8, 3, 2),
    (11, 3, 3),
    (16, 4, 2),
    (22, 4, 3),
    (32, 4, 3),
    (45, 4, 4),
    (64, 5, 4),
    (90, 5, 3),
    (128, 5, 4),
    (256, 7, 4),
    (512, 8, 3),
    (1024, 11, 4),
];

fn main() {
    let model = ReliabilityModel::paper_default();
    let with_fd = has_flag("--fault-diameter");
    let mut header = vec!["n", "d(meas)", "d(paper)", "D(meas)", "D(paper)", "D_L"];
    if with_fd {
        header.push("delta_hat(f=d-1)");
    }
    let mut table = Table::new(header);
    for &(n, paper_d, paper_dd) in PAPER_ROWS {
        let d = choose_gs_degree(n, &model, 6.0).expect("6-nines reachable");
        let g = gs_digraph(n, d).expect("valid GS parameters");
        let diam = g.diameter().expect("GS digraphs are strongly connected");
        let dl = moore_diameter_lower_bound(n, d);
        let mut row = vec![
            n.to_string(),
            d.to_string(),
            paper_d.to_string(),
            diam.to_string(),
            paper_dd.to_string(),
            dl.to_string(),
        ];
        if with_fd {
            // O(n²) min-cost flows: restrict to the sizes where it is
            // quick. The heuristic is defined for every pair, so any size
            // works with patience.
            let cell = if n <= 45 {
                match fault_diameter_bound(&g, d - 1) {
                    Some((lo, hi)) => format!("{lo}..{hi}"),
                    None => "-".into(),
                }
            } else {
                "(skipped; use small n)".into()
            };
            row.push(cell);
        }
        table.row(row);
    }
    println!("Table 3 — GS(n,d) for 6-nines (24h window, MTTF ≈ 2 years)");
    println!("quasiminimal diameter guarantee: D ≤ D_L + 1 for n ≤ d³ + d\n");
    if has_flag("--csv") {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}
