//! Raw protocol-engine throughput: rounds per second of bare [`Server`]
//! state machines driven lockstep, with **no** simulator clock, RSM
//! layer, or sockets in the way — the purest measurement of the hot
//! path this repository has (message dispatch, dense round state,
//! tracking, delivery, round advance).
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin core_rounds [--csv] [--json PATH] [--rounds N]
//! ```
//!
//! Two regimes per system size (the paper's Table 3 overlays at
//! n ∈ {8, 32, 64}):
//!
//! * `ff` — failure-free steady state: every server A-broadcasts an
//!   8-byte payload, the flood drains, everyone delivers. This is the
//!   regime the dense data layout targets: the measured loop performs
//!   **zero heap allocations per protocol event** — the only
//!   allocations are the `n` per-round delivery vectors handed to the
//!   application, and the run *asserts* this with a counting global
//!   allocator (`allocs_per_round == n`).
//! * `f1` — one crash per scenario: a victim crashes after two sends of
//!   its round-0 broadcast; its successors suspect it, the FAIL flood
//!   and tracking-digraph machinery run, survivors finish the round and
//!   one more. Measures failure-handling cost (scenario construction is
//!   excluded from the zero-alloc claim — expansion and carry-over may
//!   allocate, as Table 2 budgets).
//!
//! Emits committed `BENCH_core.json` (override with `--json PATH`) so
//! the raw-engine trajectory is tracked PR over PR alongside
//! `BENCH_rsm.json`.

use allconcur_bench::output::{arg_value, has_flag, Table};
use allconcur_bench::workloads::{paper_degree, paper_overlay};
use allconcur_core::config::Config;
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_core::ServerId;
use bytes::Bytes;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counts every allocation (and reallocation) so the failure-free
/// steady state can *prove* its zero-per-event-allocation claim.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Lockstep driver: FIFO inbox over raw servers, reused buffers
/// throughout (`handle_into` + scratch), so the harness itself adds no
/// allocator traffic to the measurement.
struct Bench {
    servers: Vec<Server>,
    inbox: VecDeque<(ServerId, ServerId, Message)>,
    scratch: Vec<Action>,
    payload: Bytes,
    /// Crashed server, if the scenario has one: its sends beyond the
    /// budget are dropped (partial broadcast, §2.3) and nothing is
    /// delivered to it.
    victim: Option<ServerId>,
    victim_sends_left: usize,
    /// Protocol events fed (A-broadcasts + receives + suspicions).
    events: u64,
    /// Deliveries observed (must be n per failure-free round).
    deliveries: u64,
}

impl Bench {
    fn new(cfg: &Config) -> Bench {
        let n = cfg.n();
        Bench {
            servers: (0..n as ServerId).map(|i| Server::new(cfg.clone(), i)).collect(),
            inbox: VecDeque::new(),
            scratch: Vec::new(),
            payload: Bytes::from(vec![0xA5u8; 8]),
            victim: None,
            victim_sends_left: 0,
            events: 0,
            deliveries: 0,
        }
    }

    fn feed(&mut self, id: ServerId, event: Event) {
        self.events += 1;
        self.scratch.clear();
        self.servers[id as usize].handle_into(event, &mut self.scratch);
        for action in self.scratch.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    if self.victim == Some(id) {
                        if self.victim_sends_left == 0 {
                            continue; // crashed: this send never left
                        }
                        self.victim_sends_left -= 1;
                    }
                    if self.victim == Some(to) {
                        continue; // crashed servers receive nothing
                    }
                    self.inbox.push_back((id, to, msg));
                }
                Action::Deliver { .. } => self.deliveries += 1,
            }
        }
    }

    fn drain(&mut self) {
        while let Some((from, to, msg)) = self.inbox.pop_front() {
            self.feed(to, Event::Receive { from, msg });
        }
    }

    /// One failure-free round: everyone broadcasts, the flood drains.
    fn round_ff(&mut self) {
        for i in 0..self.servers.len() as ServerId {
            let payload = self.payload.clone();
            self.feed(i, Event::ABroadcast(payload));
        }
        self.drain();
    }
}

struct Point {
    n: usize,
    d: usize,
    mode: &'static str,
    rounds: u64,
    wall_ms: f64,
    events: u64,
    allocs_per_round: f64,
}

impl Point {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / (self.wall_ms / 1e3)
    }
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ms / 1e3)
    }
}

/// Failure-free steady state, with the zero-alloc assertion.
fn run_ff(n: usize, rounds: u64) -> Point {
    let graph = paper_overlay(n);
    let d = paper_degree(n);
    let cfg = Config::new(Arc::new(graph), d.saturating_sub(1));
    let mut bench = Bench::new(&cfg);

    // Warm-up: buffer capacities, view rebuilds, inbox ring.
    for _ in 0..10 {
        bench.round_ff();
    }
    let deliveries_before = bench.deliveries;
    let events_before = bench.events;

    let alloc0 = allocs_now();
    let t0 = Instant::now();
    for _ in 0..rounds {
        bench.round_ff();
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let allocs = allocs_now() - alloc0;

    let delivered = bench.deliveries - deliveries_before;
    assert_eq!(delivered, rounds * n as u64, "every server delivers every round");
    // The zero-alloc claim, enforced: the steady-state loop's only heap
    // allocations are the per-round delivery vectors (one per server
    // per round, moved out to the application) — nothing per event.
    assert_eq!(
        allocs,
        rounds * n as u64,
        "steady-state round loop allocated beyond the delivery vectors \
         ({} allocs over {} rounds at n={n}; budget is exactly n per round)",
        allocs,
        rounds,
    );

    Point {
        n,
        d,
        mode: "ff",
        rounds,
        wall_ms,
        events: bench.events - events_before,
        allocs_per_round: allocs as f64 / rounds as f64,
    }
}

/// Crash scenario: victim crashes after 2 sends of its round-0
/// broadcast; successors suspect; survivors finish round 0 and run one
/// more round. Repeated `iters` times on fresh servers.
fn run_f1(n: usize, iters: u64) -> Point {
    let graph = Arc::new(paper_overlay(n));
    let d = paper_degree(n);
    let cfg = Config::new(graph.clone(), d.saturating_sub(1));
    let victim: ServerId = (n / 2) as ServerId;
    let mut successors: Vec<ServerId> = graph.successors(victim).to_vec();
    successors.sort_unstable();

    let mut events = 0u64;
    let t0 = Instant::now();
    let mut rounds = 0u64;
    for _ in 0..iters {
        let mut bench = Bench::new(&cfg);
        bench.victim = Some(victim);
        bench.victim_sends_left = 2;
        // Round 0 kickoff; the victim's broadcast is cut short by the
        // send budget in `feed`.
        for i in 0..n as ServerId {
            bench.feed(i, Event::ABroadcast(bench.payload.clone()));
        }
        bench.drain();
        // FD: every successor suspects the victim.
        for &s in &successors {
            if s != victim {
                bench.feed(s, Event::Suspect { suspect: victim });
            }
        }
        bench.drain();
        // One more round among survivors (carried notifications replay).
        for i in 0..n as ServerId {
            if i != victim {
                bench.feed(i, Event::ABroadcast(bench.payload.clone()));
            }
        }
        bench.drain();
        rounds += 2;
        events += bench.events;
        assert!(
            bench.servers[0].round() >= 2,
            "survivors must complete both rounds (n={n}, at round {})",
            bench.servers[0].round()
        );
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Point { n, d, mode: "f1", rounds, wall_ms, events, allocs_per_round: f64::NAN }
}

fn main() {
    let rounds: u64 = arg_value("--rounds").and_then(|v| v.parse().ok()).unwrap_or(200);
    let csv = has_flag("--csv");
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_core.json".to_string());

    let mut points = Vec::new();
    for &n in &[8usize, 32, 64] {
        points.push(run_ff(n, rounds));
        points.push(run_f1(n, (rounds / 10).max(5)));
    }

    let mut table = Table::new(vec![
        "n",
        "d",
        "mode",
        "rounds",
        "wall_ms",
        "rounds_per_sec",
        "events_per_sec",
        "allocs_per_round",
    ]);
    for p in &points {
        table.row(vec![
            p.n.to_string(),
            p.d.to_string(),
            p.mode.to_string(),
            p.rounds.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.0}", p.rounds_per_sec()),
            format!("{:.0}", p.events_per_sec()),
            if p.allocs_per_round.is_nan() {
                "-".to_string()
            } else {
                format!("{:.0}", p.allocs_per_round)
            },
        ]);
    }
    println!("Raw protocol engine — lockstep rounds over bare Servers (8-byte payloads)");
    println!("(ff asserts zero per-event heap allocations: exactly n delivery Vecs/round)\n");
    print!("{}", if csv { table.render_csv() } else { table.render() });

    // Hand-rolled JSON (no serde in the build environment); same shape
    // as BENCH_rsm.json.
    let series: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"n\": {}, \"d\": {}, \"mode\": \"{}\", \"rounds\": {}, \"wall_ms\": {:.1}, \
                 \"rounds_per_sec\": {:.0}, \"events_per_sec\": {:.0}, \"allocs_per_round\": {}}}",
                p.n,
                p.d,
                p.mode,
                p.rounds,
                p.wall_ms,
                p.rounds_per_sec(),
                p.events_per_sec(),
                if p.allocs_per_round.is_nan() {
                    "null".to_string()
                } else {
                    format!("{:.0}", p.allocs_per_round)
                },
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"core_rounds\",\n  \"backend\": \"raw\",\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    std::fs::write(&json_path, json).expect("write BENCH json");
    println!("\nwrote {json_path}");
}
