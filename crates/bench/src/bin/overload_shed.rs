//! Open-loop overload behaviour of the typed `Service` layer: accepted
//! versus shed commands/second, and the p99 latency of the `submit`
//! call itself, as the arrival rate sweeps across the admission knee.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin overload_shed [--csv] [--json PATH]
//! ```
//!
//! The driver is deliberately **open-loop**: each tick it offers `rate`
//! commands per server — regardless of how many are still in flight —
//! then gives the deployment one bounded pump. Below the knee the
//! service absorbs everything; above it the round pipeline stays full,
//! per-origin queues hit the admission cap, and the surplus is shed as
//! typed `Busy` refusals. The interesting properties are that (a)
//! accepted throughput *plateaus* instead of collapsing, (b) shed
//! throughput absorbs the rest, and (c) the submit call stays cheap
//! under saturation — a shed touches no buffer, so p99 submit latency
//! must not blow up at the highest rates.
//!
//! Arrival rates straddle the knee by construction: with pipeline depth
//! 4 and a per-origin admission cap of 4, saturation begins around
//! 8 submissions per server per tick, and the sweep runs 1 → 32.
//!
//! Besides the table, the run emits machine-readable
//! `BENCH_overload.json` (override with `--json PATH`) so the
//! graceful-degradation profile is recorded PR over PR.

use allconcur_bench::output::{has_flag, Table};
use allconcur_cluster::{Cluster, SimOptions};
use allconcur_core::replica::{KvCommand, KvStore};
use allconcur_graph::gs::gs_digraph;
use allconcur_rsm::{AdmissionConfig, Service, ServiceError};
use allconcur_sim::network::NetworkModel;
use std::time::{Duration, Instant};

const N: usize = 8;
const PIPELINE: usize = 4;
const ADMISSION_CAP: usize = 4;
const TICKS: usize = 32;
const WARMUP_TICKS: usize = 4;
const TICK_BUDGET: Duration = Duration::from_millis(4);
const TIMEOUT: Duration = Duration::from_secs(600);

struct Point {
    rate: usize,
    offered: u64,
    accepted: u64,
    shed: u64,
    sim_us: f64,
    p99_submit_us: f64,
}

/// Drive `ticks` open-loop ticks at `rate` submissions per server per
/// tick; returns acceptance/shed counts, simulated elapsed time, and
/// the p99 wall latency of the submit call.
fn run_point(rate: usize) -> Point {
    let cluster = Cluster::sim_with(
        gs_digraph(N, 3).expect("GS(8,3)"),
        SimOptions { network: NetworkModel::tcp_cluster(), seed: 1, ..SimOptions::default() },
    );
    let mut kv = Service::new(cluster, &KvStore::default()).expect("service");
    kv.set_pipeline(PIPELINE);
    kv.set_admission(AdmissionConfig {
        max_queued_per_origin: ADMISSION_CAP,
        ..AdmissionConfig::default()
    });
    let clock = |kv: &mut Service<KvStore>| {
        kv.cluster_mut().sim_transport_mut().expect("sim").cluster().clock()
    };
    let keys: Vec<bytes::Bytes> =
        (0..32).map(|i| bytes::Bytes::from(format!("k{i}").into_bytes())).collect();

    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut submit_ns: Vec<u64> = Vec::with_capacity(N * rate * TICKS);
    let run_ticks = |kv: &mut Service<KvStore>,
                     ticks: usize,
                     accepted: &mut u64,
                     shed: &mut u64,
                     submit_ns: &mut Vec<u64>| {
        for tick in 0..ticks {
            let value = bytes::Bytes::from(tick.to_le_bytes().to_vec());
            for burst in 0..rate {
                if burst > 0 {
                    // Open-loop: queued batches become rounds as long as
                    // the pipeline has room — saturating it is the point.
                    kv.flush().expect("flush burst");
                }
                for s in 0..N as u32 {
                    let cmd =
                        KvCommand::Put { key: keys[burst % 32].clone(), value: value.clone() };
                    let t0 = Instant::now();
                    let outcome = kv.submit(s, &cmd);
                    submit_ns.push(t0.elapsed().as_nanos() as u64);
                    match outcome {
                        Ok(_handle) => *accepted += 1,
                        Err(ServiceError::Busy { .. }) => *shed += 1,
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            }
            // Drain until no delivery arrives within the tick budget:
            // below the knee this settles the tick's rounds completely,
            // so only the burst loop itself (pipeline + cap exhaustion)
            // produces sheds — the knee is admission's, not the driver's.
            while kv.pump(TICK_BUDGET).expect("pump tick") {}
        }
        kv.sync(TIMEOUT).expect("settle accepted commands");
    };

    // Warm-up ticks reach steady state; their counts and latencies are
    // discarded.
    run_ticks(&mut kv, WARMUP_TICKS, &mut accepted, &mut shed, &mut submit_ns);
    (accepted, shed) = (0, 0);
    submit_ns.clear();

    let sim_start = clock(&mut kv);
    run_ticks(&mut kv, TICKS, &mut accepted, &mut shed, &mut submit_ns);
    let sim_us = (clock(&mut kv) - sim_start).as_us_f64();

    submit_ns.sort_unstable();
    let p99 = submit_ns[(submit_ns.len() - 1) * 99 / 100];
    Point {
        rate,
        offered: accepted + shed,
        accepted,
        shed,
        sim_us,
        p99_submit_us: p99 as f64 / 1e3,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = has_flag("--csv");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_overload.json".to_string());

    let points: Vec<Point> = [1usize, 2, 4, 8, 16, 32].iter().map(|&r| run_point(r)).collect();

    let mut table = Table::new(vec![
        "rate/server/tick",
        "offered",
        "accepted",
        "shed",
        "accepted_per_sec_sim",
        "shed_per_sec_sim",
        "p99_submit_us",
    ]);
    for p in &points {
        table.row(vec![
            p.rate.to_string(),
            p.offered.to_string(),
            p.accepted.to_string(),
            p.shed.to_string(),
            format!("{:.0}", p.accepted as f64 / (p.sim_us / 1e6)),
            format!("{:.0}", p.shed as f64 / (p.sim_us / 1e6)),
            format!("{:.2}", p.p99_submit_us),
        ]);
    }
    println!(
        "Overload shedding — typed Service over sim({N} servers, TCP LogP profile), \
         pipeline {PIPELINE}, admission cap {ADMISSION_CAP}/origin\n"
    );
    print!("{}", if csv { table.render_csv() } else { table.render() });

    // Hand-rolled JSON (no serde in the build environment).
    let series: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"rate_per_server_per_tick\": {}, \"offered\": {}, \"accepted\": {}, \
                 \"shed\": {}, \"accepted_per_sec_sim\": {:.0}, \"shed_per_sec_sim\": {:.0}, \
                 \"p99_submit_us\": {:.2}}}",
                p.rate,
                p.offered,
                p.accepted,
                p.shed,
                p.accepted as f64 / (p.sim_us / 1e6),
                p.shed as f64 / (p.sim_us / 1e6),
                p.p99_submit_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"overload_shed\",\n  \"backend\": \"sim\",\n  \"n\": {N},\n  \
         \"pipeline\": {PIPELINE},\n  \"admission_cap_per_origin\": {ADMISSION_CAP},\n  \
         \"state_machine\": \"KvStore\",\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    std::fs::write(&json_path, json).expect("write BENCH json");
    println!("\nwrote {json_path}");
}
