//! Fig. 10 — the batching-factor throughput comparison (8-byte requests):
//!
//! * **(a)** unreliable agreement (`MPI_Allgather` stand-in),
//! * **(b)** AllConcur,
//! * **(c)** leader-based agreement (Libpaxos stand-in),
//! * **(d)** AllConcur's aggregated throughput (× n).
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin fig10_throughput [--csv] [--full] [a|b|c|d|overhead]
//! ```
//!
//! Paper shapes to check: throughput rises with the batching factor (the
//! per-message overhead amortises) and peaks; AllConcur-TCP peaks at
//! ≈8.6 Gbps ≈ 135M 8-byte requests/s for n=8; Libpaxos peaks ≈17×
//! lower; allgather is the no-fault-tolerance ceiling (average overhead
//! ≈58%); aggregated throughput *increases* with n (≈750 Gbps at 512+).

use allconcur_baselines::allgather::{simulate_allgather_eff, AllgatherAlgorithm};
use allconcur_baselines::leader::{LeaderCluster, LeaderConfig};
use allconcur_bench::output::{has_flag, Table};
use allconcur_bench::workloads::{paper_overlay, run_throughput, ThroughputWorkload};
use allconcur_sim::{NetworkModel, SimCluster};

const REQ: usize = 8;

/// Fraction of the ideal step rate Open MPI's blocking allgather sustains
/// over TCP (step synchronisation + copies); calibrated to Fig. 10a's
/// ≈12 Gbps peak — see EXPERIMENTS.md.
const MPI_EFFICIENCY: f64 = 0.45;

fn sizes(full: bool) -> Vec<usize> {
    if full {
        vec![8, 16, 32, 64, 128, 256, 512, 1024]
    } else {
        vec![8, 16, 32, 64, 128]
    }
}

fn batch_factors() -> Vec<usize> {
    (7..=15).map(|e| 1usize << e).collect()
}

fn header(ns: &[usize]) -> Vec<String> {
    let mut h = vec!["batch_factor".to_string()];
    h.extend(ns.iter().map(|n| format!("n={n}")));
    h
}

fn allconcur_gbps(n: usize, batch: usize, model: NetworkModel) -> f64 {
    let rounds = if n >= 512 { 2 } else { 3 };
    let mut cluster = SimCluster::builder(paper_overlay(n)).network(model).seed(1).build();
    run_throughput(
        &mut cluster,
        &ThroughputWorkload { batch_factor: batch, request_size: REQ, rounds },
    )
    .map(|o| o.agreement_gbps)
    .unwrap_or(f64::NAN)
}

fn fig_a(ns: &[usize], model: NetworkModel, csv: bool) {
    let mut t = Table::new(header(ns));
    for b in batch_factors() {
        let mut row = vec![b.to_string()];
        for &n in ns {
            let algo = if n.is_power_of_two() && b * REQ <= 4096 {
                AllgatherAlgorithm::RecursiveDoubling
            } else {
                AllgatherAlgorithm::Ring
            };
            let out = simulate_allgather_eff(n, b * REQ, algo, &model, MPI_EFFICIENCY);
            let gbps = (n * b * REQ) as f64 * 8.0 / out.round_time.as_secs_f64() / 1e9;
            row.push(format!("{gbps:.2}"));
        }
        t.row(row);
    }
    println!("Fig. 10a — MPI_Allgather (unreliable agreement) throughput [Gbps]");
    print!("{}", if csv { t.render_csv() } else { t.render() });
    println!();
}

fn fig_b(ns: &[usize], model: NetworkModel, csv: bool) {
    let mut t = Table::new(header(ns));
    for b in batch_factors() {
        let mut row = vec![b.to_string()];
        for &n in ns {
            row.push(format!("{:.2}", allconcur_gbps(n, b, model)));
        }
        t.row(row);
    }
    println!("Fig. 10b — AllConcur-TCP agreement throughput [Gbps] (paper peak: 8.6 @ n=8)");
    print!("{}", if csv { t.render_csv() } else { t.render() });
    println!();
}

fn fig_c(ns: &[usize], model: NetworkModel, csv: bool) {
    let mut t = Table::new(header(ns));
    for b in batch_factors() {
        let mut row = vec![b.to_string()];
        for &n in ns {
            let mut lc = LeaderCluster::new(LeaderConfig::paper_default(n), model);
            let out = lc.run_round(b * REQ);
            let gbps = (n * b * REQ) as f64 * 8.0 / out.round_time.as_secs_f64() / 1e9;
            row.push(format!("{gbps:.2}"));
        }
        t.row(row);
    }
    println!("Fig. 10c — leader-based agreement (Libpaxos stand-in) throughput [Gbps]");
    print!("{}", if csv { t.render_csv() } else { t.render() });
    println!();
}

fn fig_d(ns: &[usize], model: NetworkModel, csv: bool) {
    let mut t = Table::new(header(ns));
    for b in batch_factors() {
        let mut row = vec![b.to_string()];
        for &n in ns {
            row.push(format!("{:.1}", allconcur_gbps(n, b, model) * n as f64));
        }
        t.row(row);
    }
    println!("Fig. 10d — AllConcur aggregated throughput [Gbps] (paper peak: ≈750 @ n≥512)");
    print!("{}", if csv { t.render_csv() } else { t.render() });
    println!();
}

/// The §5 headline numbers for n = 8: AllConcur vs both baselines at the
/// best batching factor.
fn overhead_summary(model: NetworkModel) {
    let n = 8;
    let mut best_ac: f64 = 0.0;
    let mut best_ag: f64 = 0.0;
    let mut best_leader: f64 = 0.0;
    for b in batch_factors() {
        best_ac = best_ac.max(allconcur_gbps(n, b, model));
        let ag =
            simulate_allgather_eff(n, b * REQ, AllgatherAlgorithm::Ring, &model, MPI_EFFICIENCY);
        best_ag = best_ag.max((n * b * REQ) as f64 * 8.0 / ag.round_time.as_secs_f64() / 1e9);
        let mut lc = LeaderCluster::new(LeaderConfig::paper_default(n), model);
        let out = lc.run_round(b * REQ);
        best_leader =
            best_leader.max((n * b * REQ) as f64 * 8.0 / out.round_time.as_secs_f64() / 1e9);
    }
    println!("summary (n=8, best batching factor):");
    println!(
        "  AllConcur peak:            {best_ac:.2} Gbps ≈ {:.0}M 8-byte req/s",
        best_ac * 1e9 / 8.0 / 8.0 / 1e6
    );
    println!("  allgather (unreliable):    {best_ag:.2} Gbps");
    println!("  leader-based (Libpaxos):   {best_leader:.2} Gbps");
    println!(
        "  fault-tolerance overhead:  {:.0}% (paper: 58% avg)",
        (best_ag / best_ac - 1.0) * 100.0
    );
    println!("  AllConcur vs leader-based: {:.1}× (paper: ≥17×)", best_ac / best_leader);
}

fn main() {
    let csv = has_flag("--csv");
    let full = has_flag("--full");
    let ns = sizes(full);
    let model = NetworkModel::tcp_cluster();
    let which: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with("--")).collect();
    let all = which.is_empty();
    if all || which.iter().any(|w| w == "a" || w == "allgather") {
        fig_a(&ns, model, csv);
    }
    if all || which.iter().any(|w| w == "b" || w == "allconcur") {
        fig_b(&ns, model, csv);
    }
    if all || which.iter().any(|w| w == "c" || w == "leader") {
        fig_c(&ns, model, csv);
    }
    if all || which.iter().any(|w| w == "d" || w == "aggregated") {
        fig_d(&ns, model, csv);
    }
    if all || which.iter().any(|w| w == "overhead") {
        overhead_summary(model);
    }
}
