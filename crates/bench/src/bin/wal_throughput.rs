//! WAL append throughput and latency under group commit: how many
//! agreed commands per second one server's write-ahead log sustains —
//! frame encode, CRC, segment append, fsync policy — as a function of
//! the group-commit window `fsync_every_n_rounds` ∈ {1, 8, 64, off}.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin wal_throughput \
//!     [--csv] [--json PATH] [--rounds R] [--dir PATH]
//! ```
//!
//! Appends run against a real [`FileDisk`] (temp directory by default;
//! `--dir` overrides), so the fsync cost is the host's actual
//! `fdatasync`, not the in-memory model. Group commit happens *inside*
//! `Wal::append` — every `fsync_every_n` appends one call pays the
//! sync — so the per-append latency distribution is bimodal and the p99
//! captures the sync spike while the p50 captures the buffered path.
//! `off` (0) never syncs during the run: the upper bound where
//! durability rides entirely on the OS page cache.
//!
//! Besides the table, the run emits machine-readable `BENCH_wal.json`
//! (override with `--json PATH`) so the durability hot path's
//! trajectory is recorded PR over PR.

use allconcur_bench::output::{arg_value, has_flag, Table};
use allconcur_core::delivery::Delivery;
use allconcur_durability::{DurabilityConfig, FileDisk, Wal};
use bytes::Bytes;
use std::path::Path;
use std::time::{Duration, Instant};

/// Origins per agreed round (one 64-byte command each) — the round
/// shape of an 8-server deployment at batch 1.
const ORIGINS: u32 = 8;
const PAYLOAD_BYTES: usize = 64;
/// Unmeasured appends before the clock starts (file growth, allocator,
/// page-cache warm-up).
const WARMUP_ROUNDS: u64 = 64;

struct Point {
    fsync_every: u64,
    commands: u64,
    wall_ms: f64,
    p50_us: f64,
    p99_us: f64,
}

impl Point {
    fn cmds_per_sec(&self) -> f64 {
        self.commands as f64 / (self.wall_ms / 1e3)
    }

    /// `off` renders the disabled count trigger honestly in tables.
    fn label(&self) -> String {
        if self.fsync_every == 0 {
            "off".into()
        } else {
            self.fsync_every.to_string()
        }
    }
}

fn round_delivery(round: u64, payload: &Bytes) -> Delivery {
    Delivery { round, messages: (0..ORIGINS).map(|o| (o, payload.clone())).collect() }
}

/// Append `rounds` measured rounds at one group-commit setting and
/// collect the wall clock plus the per-append latency distribution.
fn run_point(fsync_every: u64, rounds: u64, root: &Path) -> Point {
    let dir = root.join(format!("fsync-{fsync_every}"));
    let _ = std::fs::remove_dir_all(&dir);
    let disk = FileDisk::open(&dir).expect("open bench dir");
    let cfg = DurabilityConfig {
        fsync_every_n_rounds: fsync_every,
        fsync_interval: None,
        ..DurabilityConfig::default()
    };
    let mut wal = Wal::create(Box::new(disk), cfg, b"wal-bench-initial").expect("create WAL");
    let payload = Bytes::from(vec![0xABu8; PAYLOAD_BYTES]);

    for round in 0..WARMUP_ROUNDS {
        wal.append(&round_delivery(round, &payload)).expect("warm-up append");
    }

    let mut latencies: Vec<Duration> = Vec::with_capacity(rounds as usize);
    let wall_start = Instant::now();
    for round in WARMUP_ROUNDS..WARMUP_ROUNDS + rounds {
        let append_start = Instant::now();
        wal.append(&round_delivery(round, &payload)).expect("append");
        latencies.push(append_start.elapsed());
    }
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    // Settle the tail outside the timed window, then drop the files.
    wal.sync().expect("final sync");
    let _ = std::fs::remove_dir_all(&dir);

    latencies.sort_unstable();
    let pct = |p: usize| -> f64 {
        let idx = ((latencies.len() * p) / 100).min(latencies.len() - 1);
        latencies[idx].as_secs_f64() * 1e6
    };
    Point {
        fsync_every,
        commands: rounds * ORIGINS as u64,
        wall_ms,
        p50_us: pct(50),
        p99_us: pct(99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = has_flag("--csv");
    let rounds: u64 = arg_value("--rounds").and_then(|v| v.parse().ok()).unwrap_or(2048).max(1);
    let root = arg_value("--dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("allconcur-wal-bench"));
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_wal.json".to_string());

    // 0 = count trigger off: no fsync inside the measured window.
    let points: Vec<Point> =
        [1u64, 8, 64, 0].iter().map(|&f| run_point(f, rounds, &root)).collect();

    let mut table = Table::new(vec![
        "fsync_every",
        "commands",
        "wall_ms",
        "cmds_per_sec",
        "append_p50_us",
        "append_p99_us",
    ]);
    for p in &points {
        table.row(vec![
            p.label(),
            p.commands.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.0}", p.cmds_per_sec()),
            format!("{:.1}", p.p50_us),
            format!("{:.1}", p.p99_us),
        ]);
    }
    println!(
        "WAL append throughput — FileDisk group commit, {ORIGINS} origins × {PAYLOAD_BYTES} B \
         per round, {rounds} measured rounds\n"
    );
    print!("{}", if csv { table.render_csv() } else { table.render() });

    // Hand-rolled JSON (no serde in the build environment).
    let series: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"fsync_every\": {}, \"commands\": {}, \"wall_ms\": {:.1}, \
                 \"cmds_per_sec\": {:.0}, \"append_p50_us\": {:.1}, \"append_p99_us\": {:.1}}}",
                p.fsync_every,
                p.commands,
                p.wall_ms,
                p.cmds_per_sec(),
                p.p50_us,
                p.p99_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"wal_throughput\",\n  \"disk\": \"file\",\n  \"origins\": {ORIGINS},\n  \
         \"payload_bytes\": {PAYLOAD_BYTES},\n  \"rounds\": {rounds},\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    std::fs::write(&json_path, json).expect("write BENCH json");
    println!("\nwrote {json_path}");
}
