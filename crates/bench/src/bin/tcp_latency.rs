//! Real-sockets agreement latency on loopback — the closest this
//! repository gets to the paper's AllConcur-TCP hardware measurements
//! (Fig. 6b), and a sanity check that the production transport keeps up
//! with the simulator's predictions qualitatively.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin tcp_latency [--csv] [--rounds N] [--sizes 4,8,16] [--json PATH]
//! ```
//!
//! Numbers here reflect loopback + OS scheduling on the host machine,
//! not a cluster fabric: expect higher medians and much wider tails than
//! the simulated IB-hsw figures. Shape to check: latency grows with n,
//! dominated by per-server work (n·d message handlings per round).
//!
//! Besides the table, the run emits machine-readable `BENCH_tcp.json`
//! (override with `--json PATH`) — the same shape as `BENCH_rsm.json` —
//! so the real-sockets perf trajectory is tracked PR over PR alongside
//! the sim and raw-engine baselines.

use allconcur_bench::output::{arg_value, has_flag, Table};
use allconcur_cluster::Cluster;
use allconcur_sim::stats;
use bytes::Bytes;
use std::time::{Duration, Instant};

fn main() {
    let rounds: usize = arg_value("--rounds").and_then(|v| v.parse().ok()).unwrap_or(30);
    let sizes: Vec<usize> = arg_value("--sizes")
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![4, 8, 16]);
    let csv = has_flag("--csv");
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_tcp.json".to_string());

    struct Point {
        n: usize,
        d: usize,
        median_us: f64,
        ci_lo_us: f64,
        ci_hi_us: f64,
        p95_us: f64,
    }
    let mut points: Vec<Point> = Vec::new();

    let mut table = Table::new(vec!["n", "d", "median_us", "ci_lo_us", "ci_hi_us", "p95_us"]);
    for &n in &sizes {
        let graph = allconcur_bench::workloads::paper_overlay(n);
        let d = graph.degree();
        let mut cluster = Cluster::tcp(graph).expect("loopback cluster");
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 64])).collect();

        // Warm-up: connection buffers, allocator, scheduler.
        for _ in 0..3 {
            cluster.run_round(&payloads, Duration::from_secs(10)).expect("warm-up round");
        }
        let mut lat_us = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t0 = Instant::now();
            let deliveries = cluster
                .run_round(&payloads, Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("round failed at n={n}: {e}"));
            let elapsed = t0.elapsed();
            assert_eq!(deliveries.len(), n, "round incomplete at n={n}");
            lat_us.push(elapsed.as_secs_f64() * 1e6);
        }
        cluster.shutdown().expect("clean shutdown");
        let ci = stats::median_ci95(&lat_us);
        let p95 = stats::quantile(&lat_us, 0.95);
        table.row(vec![
            n.to_string(),
            d.to_string(),
            format!("{:.0}", ci.median),
            format!("{:.0}", ci.lo),
            format!("{:.0}", ci.hi),
            format!("{p95:.0}"),
        ]);
        points.push(Point {
            n,
            d,
            median_us: ci.median,
            ci_lo_us: ci.lo,
            ci_hi_us: ci.hi,
            p95_us: p95,
        });
    }
    println!("Real-TCP loopback agreement latency (64-byte payloads, {rounds} rounds)");
    println!("(host-machine numbers; compare shapes, not absolutes, with Fig. 6b)\n");
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }

    // Hand-rolled JSON (no serde in the build environment); same shape
    // as BENCH_rsm.json.
    let series: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"n\": {}, \"d\": {}, \"median_us\": {:.0}, \"ci_lo_us\": {:.0}, \
                 \"ci_hi_us\": {:.0}, \"p95_us\": {:.0}}}",
                p.n, p.d, p.median_us, p.ci_lo_us, p.ci_hi_us, p.p95_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"tcp_latency\",\n  \"backend\": \"tcp\",\n  \"payload_bytes\": 64,\n  \
         \"rounds\": {rounds},\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    std::fs::write(&json_path, json).expect("write BENCH json");
    println!("\nwrote {json_path}");
}
