//! Fig. 9b — distributed exchanges: agreement latency under a constant
//! *system-wide* request rate of 40-byte orders, split evenly across the
//! servers.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin fig9b_exchange [--csv] [--full]
//! ```
//!
//! Paper shape to check: for a fixed system rate, more servers mean less
//! load per server but more synchronisation — latency grows with n; 8
//! servers absorb 100M req/s below 90 µs... (see EXPERIMENTS.md for the
//! bandwidth caveat), 512 servers handle 1M req/s under 20 ms, and 1024
//! jumps ≈4× because the 6-nines overlay needs degree 11.

use allconcur_bench::output::{fmt_time, has_flag, Table};
use allconcur_bench::workloads::{paper_overlay, run_rate_workload, RateWorkload};
use allconcur_sim::{NetworkModel, SimCluster};

const SYSTEM_RATES: &[f64] = &[1e4, 1e5, 1e6, 1e7, 1e8];

fn main() {
    let csv = has_flag("--csv");
    let full = has_flag("--full");
    let mut sizes: Vec<usize> = vec![8, 16, 32, 64, 128, 256, 512];
    if full {
        sizes.push(1024);
    }
    let mut header = vec!["rate_per_system".to_string()];
    header.extend(sizes.iter().map(|n| format!("n={n}")));
    let mut table = Table::new(header);
    for &rate in SYSTEM_RATES {
        let mut row = vec![format!("{rate:.0}")];
        for &n in &sizes {
            let mut cluster = SimCluster::builder(paper_overlay(n))
                .network(NetworkModel::tcp_cluster())
                .seed(9)
                .build();
            let (rounds, warmup) = if n >= 256 { (3, 1) } else { (10, 2) };
            let w =
                RateWorkload { request_size: 40, rate_per_server: rate / n as f64, rounds, warmup };
            let cell = match run_rate_workload(&mut cluster, &w) {
                Ok(out) if out.unstable => "unstable".to_string(),
                Ok(out) => fmt_time(out.median_latency),
                Err(e) => format!("err:{e}"),
            };
            row.push(cell);
        }
        table.row(row);
    }
    println!("Fig. 9b — distributed exchange: 40-byte orders at a constant system-wide rate (TCP profile)");
    println!();
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}
