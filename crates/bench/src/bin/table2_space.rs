//! Table 2 — space complexity per server of Algorithm 1's data
//! structures, measured live against the theoretical bounds:
//!
//! | structure | bound      |
//! |-----------|-----------|
//! | `G`       | `O(n·d)`  |
//! | `M_i`     | `O(n)`    |
//! | `F_i`     | `O(f·d)`  |
//! | `g_i`     | `O(f²·d)` |
//! | `Q`       | `O(f·d)`  |
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin table2_space [--csv]
//! ```
//!
//! Method: run GS(64,5) rounds with 0..4 injected crashes; the harness
//! folds per-server [`allconcur_core::server::SpaceUsage`] into running
//! peaks after every protocol event, so the mid-round maxima (before
//! early termination clears the digraphs) are what gets reported.

use allconcur_bench::output::{has_flag, Table};
use allconcur_bench::workloads::paper_overlay;
use allconcur_core::ServerId;
use allconcur_sim::failure::FailurePlan;
use allconcur_sim::{NetworkModel, SimCluster, SimTime};
use bytes::Bytes;

fn main() {
    let csv = has_flag("--csv");
    let n = 64usize;
    let graph = paper_overlay(n);
    let d = graph.degree();
    let mut table = Table::new(vec![
        "f",
        "graph_bytes",
        "max_msgs(M)",
        "max_fails(F)",
        "max_track_digraphs",
        "max_track_vertices",
        "peak_1digraph_vertices",
        "bound_F(f·d)",
        "bound_g(f²·d)",
    ]);
    for f in 0..=4usize {
        let mut plan = FailurePlan::none();
        for victim in 0..f {
            // Crash mid-fan-out: after `victim+1` sends, the §2.3 regime
            // that actually grows the tracking digraphs.
            plan = plan.fail_after_sends((n - 1 - victim) as ServerId, (victim + 1) as u64);
        }
        let mut cluster = SimCluster::builder(graph.clone())
            .network(NetworkModel::ib_verbs())
            .failures(plan)
            .fd_detection_delay(SimTime::from_us(50))
            .track_space(true)
            .build();
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 64])).collect();
        cluster.run_round(&payloads).expect("f < k(G) keeps liveness");
        let mut max_msgs = 0;
        let mut max_fails = 0;
        let mut max_digraphs = 0;
        let mut max_vertices = 0;
        let mut peak_vertices = 0;
        let mut graph_bytes = 0;
        for s in cluster.live_servers() {
            let u = cluster.space_peaks(s);
            max_msgs = max_msgs.max(u.messages);
            max_fails = max_fails.max(u.fail_notifications);
            max_digraphs = max_digraphs.max(u.tracking_digraphs);
            max_vertices = max_vertices.max(u.tracking_vertices);
            peak_vertices = peak_vertices.max(u.peak_tracking_vertices);
            graph_bytes = graph_bytes.max(u.graph_bytes);
        }
        table.row(vec![
            f.to_string(),
            graph_bytes.to_string(),
            max_msgs.to_string(),
            max_fails.to_string(),
            max_digraphs.to_string(),
            max_vertices.to_string(),
            peak_vertices.to_string(),
            (f * d).to_string(),
            (f * f * d).to_string(),
        ]);
    }
    println!("Table 2 — measured space per server (event-level peaks), GS({n},{d}), f mid-broadcast crashes");
    println!("(G is O(n·d); M is O(n); F is O(f·d); tracking digraphs are O(f²·d) total with only O(f) growing past one vertex)\n");
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}
