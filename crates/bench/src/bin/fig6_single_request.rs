//! Fig. 6 — agreement latency for a single 64-byte request vs system
//! size, on the IBV (6a) and TCP (6b) network profiles, next to the LogP
//! work and depth models of §4.
//!
//! ```text
//! cargo run --release -p allconcur-bench --bin fig6_single_request [--csv] [--reps N]
//! ```
//!
//! Paper shape to check: measured latency between the depth model (lower
//! envelope at small n) and the work model (dominant at large n); TCP
//! ≈ 3× IBV.

use allconcur_bench::output::{arg_value, fmt_time, has_flag, Table};
use allconcur_bench::workloads::{paper_overlay, single_request_round};
use allconcur_sim::network::Jitter;
use allconcur_sim::stats;
use allconcur_sim::{logp, NetworkModel, SimCluster, SimTime};

const SIZES: &[usize] = &[6, 8, 11, 16, 22, 32, 45, 64, 90];

fn run_profile(name: &str, base: NetworkModel, reps: usize, csv: bool) {
    let mut table =
        Table::new(vec!["n", "d", "D", "median", "ci_lo", "ci_hi", "work_logp", "depth_logp"]);
    for &n in SIZES {
        let graph = paper_overlay(n);
        let d = graph.degree();
        let diameter = graph.diameter().expect("connected");
        // Measurement noise: a small exponential latency jitter gives the
        // median a real confidence interval, like the paper's error bars.
        let jittered = base.with_jitter(Jitter::Exponential {
            mean_ns: (base.latency.as_ns() / 20).max(10) as f64,
        });
        let mut lat_us = Vec::with_capacity(reps);
        let mut cluster = SimCluster::builder(graph.clone()).network(jittered).seed(42).build();
        for rep in 0..reps {
            let out = single_request_round(&mut cluster, (rep % n) as u32, 64)
                .expect("failure-free round");
            lat_us.push(out.agreement_latency().as_us_f64());
        }
        let ci = stats::median_ci95(&lat_us);
        let work = logp::work_bound(n, d, &base);
        let depth = logp::depth_bound(diameter, d, &base);
        table.row(vec![
            n.to_string(),
            d.to_string(),
            diameter.to_string(),
            fmt_time(SimTime::from_secs_f64(ci.median / 1e6)),
            fmt_time(SimTime::from_secs_f64(ci.lo / 1e6)),
            fmt_time(SimTime::from_secs_f64(ci.hi / 1e6)),
            fmt_time(work),
            fmt_time(depth),
        ]);
    }
    println!("Fig. 6{name} — single 64-byte request agreement latency");
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    println!();
}

fn main() {
    let reps: usize = arg_value("--reps").and_then(|v| v.parse().ok()).unwrap_or(15);
    let csv = has_flag("--csv");
    println!("LogP params — IBV: L=1.25µs o=0.38µs; TCP: L=12µs o=1.8µs (paper §5)\n");
    run_profile("a (AllConcur-IBV)", NetworkModel::ib_verbs(), reps, csv);
    run_profile("b (AllConcur-TCP)", NetworkModel::tcp_cluster(), reps, csv);
}
