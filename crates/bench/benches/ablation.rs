//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **overlay family** — GS(n,d) vs binomial vs complete digraph at the
//!   same n: GS buys the same agreement latency class with far less
//!   redundancy (work ∝ d);
//! * **failure-detector mode** — `P` vs `◇P` (the FWD/BWD majority gate
//!   costs one extra flood in each direction);
//! * **detection delay** — with early termination, a crashy round's
//!   latency is `≈ Δ_to + D sweeps`, not the worst-case
//!   `f + D_f` windows: sweeping `Δ_to` shows the linear dependence;
//! * **batching factor** — the Fig. 10 axis at micro scale.

use allconcur_core::batch::encode_fixed;
use allconcur_core::config::FdMode;
use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::standard::complete_digraph;
use allconcur_graph::Digraph;
use allconcur_sim::failure::FailurePlan;
use allconcur_sim::{NetworkModel, SimCluster, SimTime};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn payloads(n: usize) -> Vec<Bytes> {
    (0..n).map(|i| Bytes::from(vec![i as u8; 64])).collect()
}

fn run_once(graph: Digraph, fd_mode: FdMode, payloads: &[Bytes]) -> SimTime {
    let mut cluster =
        SimCluster::builder(graph).network(NetworkModel::ib_verbs()).fd_mode(fd_mode).build();
    cluster.run_round(payloads).unwrap().agreement_latency()
}

/// Overlay family at n = 16: simulated agreement latency (the metric the
/// protocol itself optimises; wall time of the bench is the DES cost).
fn ablate_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/overlay_n16");
    let ps = payloads(16);
    for (name, graph) in [
        ("gs_d4", gs_digraph(16, 4).unwrap()),
        ("binomial_d9", binomial_graph(16)),
        ("complete_d15", complete_digraph(16)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter_batched(
                || g.clone(),
                |g| run_once(g, FdMode::Perfect, &ps),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// `P` vs `◇P`: the cost of the surviving-partition gate.
fn ablate_fd_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/fd_mode_n16");
    let ps = payloads(16);
    for (name, mode) in
        [("perfect", FdMode::Perfect), ("eventually_perfect", FdMode::EventuallyPerfect)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter_batched(
                || gs_digraph(16, 4).unwrap(),
                |g| run_once(g, mode, &ps),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// One crash per round, sweeping the FD detection delay: early
/// termination makes round latency track Δ_to linearly (DES wall time is
/// roughly constant; the *simulated* latency is the interesting output,
/// asserted in tests — here we pin the DES cost).
fn ablate_detection_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/detection_delay_us");
    let ps = payloads(16);
    for delay_us in [20u64, 100, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(delay_us), &delay_us, |b, &delay| {
            b.iter_batched(
                || {
                    SimCluster::builder(gs_digraph(16, 4).unwrap())
                        .network(NetworkModel::ib_verbs())
                        .failures(FailurePlan::none().fail_at(15, SimTime::from_ns(1)))
                        .fd_detection_delay(SimTime::from_us(delay))
                        .build()
                },
                |mut cluster| cluster.run_round(&ps).unwrap().agreement_latency(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Batching factor at micro scale: protocol cost per round as messages
/// grow from 128 B to 32 KiB.
fn ablate_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/batch_factor_n8");
    group.sample_size(30);
    for factor in [16usize, 256, 4096] {
        let ps: Vec<Bytes> = (0..8).map(|_| encode_fixed(factor, 8, 0xAA)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, _| {
            b.iter_batched(
                || {
                    SimCluster::builder(gs_digraph(8, 3).unwrap())
                        .network(NetworkModel::tcp_cluster())
                        .build()
                },
                |mut cluster| cluster.run_round(&ps).unwrap().agreement_latency(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_overlay,
    ablate_fd_mode,
    ablate_detection_delay,
    ablate_batch_size
);
criterion_main!(benches);
