//! Benchmarks of the discrete-event simulator itself: events per second
//! for full agreement rounds — the quantity that bounds how large a
//! deployment the figure binaries can sweep.

use allconcur_bench::workloads::paper_overlay;
use allconcur_sim::{NetworkModel, SimCluster};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

fn bench_sim_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/round");
    group.sample_size(20);
    for n in [8usize, 32, 64] {
        let graph = paper_overlay(n);
        let d = graph.degree();
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 64])).collect();
        // Each round moves n²·d messages, two NIC events each.
        group.throughput(Throughput::Elements((2 * n * n * d) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || SimCluster::builder(graph.clone()).network(NetworkModel::ib_verbs()).build(),
                |mut cluster| {
                    cluster.run_round(&payloads).unwrap();
                    cluster
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_sim_round_with_crash(c: &mut Criterion) {
    let n = 16usize;
    let graph = paper_overlay(n);
    let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 64])).collect();
    c.bench_function("simulator/round_with_crash_n16", |b| {
        b.iter_batched(
            || {
                SimCluster::builder(graph.clone())
                    .network(NetworkModel::ib_verbs())
                    .failures(
                        allconcur_sim::failure::FailurePlan::none()
                            .fail_after_sends((n - 1) as u32, 2),
                    )
                    .fd_detection_delay(allconcur_sim::SimTime::from_us(30))
                    .build()
            },
            |mut cluster| {
                cluster.run_round(&payloads).unwrap();
                cluster
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_sim_round, bench_sim_round_with_crash);
criterion_main!(benches);
