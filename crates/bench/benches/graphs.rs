//! Microbenchmarks of the digraph substrate: GS(n,d) construction
//! (needed at every reconfiguration), diameter, connectivity, and the
//! §4.2.3 min-sum disjoint-paths heuristic.

use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::choose_gs_degree;
use allconcur_graph::connectivity::vertex_connectivity;
use allconcur_graph::disjoint_paths::min_sum_disjoint_paths;
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::reliability::ReliabilityModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_gs_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphs/gs_construction");
    for (n, d) in [(64usize, 5usize), (256, 7), (1024, 11)] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &(n, d), |b, &(n, d)| {
            b.iter(|| gs_digraph(n, d).unwrap());
        });
    }
    group.finish();
}

fn bench_binomial_construction(c: &mut Criterion) {
    c.bench_function("graphs/binomial_1024", |b| {
        b.iter(|| binomial_graph(1024));
    });
}

fn bench_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphs/diameter");
    for (n, d) in [(64usize, 5usize), (256, 7)] {
        let g = gs_digraph(n, d).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| g.diameter().unwrap());
        });
    }
    group.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let g = gs_digraph(22, 4).unwrap();
    c.bench_function("graphs/vertex_connectivity_gs22", |b| {
        b.iter(|| vertex_connectivity(&g));
    });
}

fn bench_disjoint_paths(c: &mut Criterion) {
    let g = binomial_graph(12);
    c.bench_function("graphs/min_sum_disjoint_paths_binomial12", |b| {
        b.iter(|| min_sum_disjoint_paths(&g, 0, 3, 6).unwrap());
    });
}

fn bench_degree_selection(c: &mut Criterion) {
    let model = ReliabilityModel::paper_default();
    c.bench_function("graphs/choose_gs_degree_4096", |b| {
        b.iter(|| choose_gs_degree(4096, &model, 6.0).unwrap());
    });
}

criterion_group!(
    benches,
    bench_gs_construction,
    bench_binomial_construction,
    bench_diameter,
    bench_connectivity,
    bench_disjoint_paths,
    bench_degree_selection
);
criterion_main!(benches);
