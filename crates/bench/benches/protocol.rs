//! Microbenchmarks of the protocol hot path: state-machine event
//! handling, tracking-digraph updates under failure notifications, and
//! the wire codec.

use allconcur_core::config::Config;
use allconcur_core::message::Message;
use allconcur_core::server::{Event, Server};
use allconcur_core::tracking::{TrackingContext, TrackingDigraph};
use allconcur_graph::gs::gs_digraph;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

/// Drive one full failure-free round through n in-memory servers,
/// hand-delivering every message — pure state-machine cost, no network
/// model.
fn bench_full_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/full_round");
    for n in [8usize, 16, 32, 64] {
        let d = if n < 16 {
            3
        } else if n < 64 {
            4
        } else {
            5
        };
        let cfg = Config::new(Arc::new(gs_digraph(n, d).unwrap()), d - 1);
        group.throughput(Throughput::Elements((n * n * d) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let servers: Vec<Server> =
                        (0..n as u32).map(|i| Server::new(cfg.clone(), i)).collect();
                    servers
                },
                |mut servers| {
                    let mut inbox: std::collections::VecDeque<(u32, u32, Message)> =
                        std::collections::VecDeque::new();
                    for i in 0..n as u32 {
                        for a in servers[i as usize]
                            .handle(Event::ABroadcast(Bytes::from_static(&[0u8; 64])))
                        {
                            if let allconcur_core::server::Action::Send { to, msg } = a {
                                inbox.push_back((i, to, msg));
                            }
                        }
                    }
                    while let Some((from, to, msg)) = inbox.pop_front() {
                        for a in servers[to as usize].handle(Event::Receive { from, msg }) {
                            if let allconcur_core::server::Action::Send { to: t, msg } = a {
                                inbox.push_back((to, t, msg));
                            }
                        }
                    }
                    servers
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

struct StaticCtx {
    succ: Vec<Vec<u32>>,
    fails: std::collections::BTreeSet<(u32, u32)>,
}

impl TrackingContext for StaticCtx {
    fn successors(&self, p: u32) -> &[u32] {
        &self.succ[p as usize]
    }
    fn is_known_failed(&self, p: u32) -> bool {
        self.fails.iter().any(|&(f, _)| f == p)
    }
    fn has_notification(&self, failed: u32, detector: u32) -> bool {
        self.fails.contains(&(failed, detector))
    }
}

/// Tracking-digraph expansion + pruning for one failure notification on a
/// GS(64,5) overlay — the per-notification cost in Algorithm 1's
/// lines 24–40.
fn bench_tracking_update(c: &mut Criterion) {
    let graph = gs_digraph(64, 5).unwrap();
    let succ: Vec<Vec<u32>> = (0..64u32).map(|v| graph.successors(v).to_vec()).collect();
    let mut fails = std::collections::BTreeSet::new();
    fails.insert((0u32, 1u32));
    let ctx = StaticCtx { succ, fails };
    c.bench_function("protocol/tracking_first_notification", |b| {
        b.iter_batched(
            || TrackingDigraph::new(0),
            |mut g| {
                g.on_failure(0, 1, &ctx);
                g
            },
            BatchSize::SmallInput,
        );
    });
}

/// Wire codec throughput for the hot message kinds.
fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/codec");
    let bcast = Message::Bcast { round: 42, origin: 7, payload: Bytes::from(vec![0xAB; 1024]) };
    let fail = Message::Fail { round: 42, failed: 3, detector: 9 };
    for (name, msg) in [("bcast_1k", &bcast), ("fail", &fail)] {
        group.throughput(Throughput::Bytes(msg.encoded_len() as u64));
        group.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| std::hint::black_box(msg.to_bytes()));
        });
        let bytes = msg.to_bytes();
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| {
                let mut buf = bytes.clone();
                std::hint::black_box(Message::decode(&mut buf).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_round, bench_tracking_update, bench_codec);
criterion_main!(benches);
