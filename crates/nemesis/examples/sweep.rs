//! Sweep a range of nemesis seeds on the simulator and print one line
//! per scenario — the quick way to vet new seeds before pinning them in
//! a suite, or to reproduce a CI failure locally:
//!
//! ```text
//! cargo run -p allconcur-nemesis --example sweep            # seeds 0..30
//! cargo run -p allconcur-nemesis --example sweep -- 120 150 # seeds 120..150
//! ```

use allconcur_nemesis::Scenario;

fn main() {
    let args: Vec<u64> =
        std::env::args().skip(1).map(|a| a.parse().expect("numeric seed")).collect();
    let (start, end) = match args.as_slice() {
        [] => (0, 30),
        [end] => (0, *end),
        [start, end, ..] => (*start, *end),
    };
    let mut failures = 0;
    for seed in start..end {
        let scenario = Scenario::generate(seed);
        match scenario.run_sim() {
            Ok(r) => println!(
                "seed {seed}: {scenario} OK rounds={} resolved={} failed={} epochs={} dropped={}",
                r.rounds, r.resolved, r.failed, r.epochs, r.dropped
            ),
            Err(e) => {
                failures += 1;
                println!("seed {seed}: {scenario} FAILED: {e}");
            }
        }
    }
    // Exit status is a single byte: clamp so 256 failures can't read
    // as success.
    std::process::exit(if failures > 0 { 1 } else { 0 });
}
