//! Timed nemesis plans.
//!
//! [`allconcur_sim::failure::FailurePlan`] scripts fail-stop crashes at
//! simulated instants; a [`NemesisPlan`] is its grown form: a schedule of
//! *arbitrary* fault actions — link faults, crashes, restarts-with-rejoin,
//! FD suspicions — keyed by **workload tick** rather than simulated time,
//! so one plan drives the simulated and TCP backends identically (the
//! scenario executor applies each tick's actions before submitting that
//! tick's commands).

use allconcur_cluster::FaultCommand;
use allconcur_core::ServerId;

/// One scheduled nemesis action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NemesisAction {
    /// Inject (or heal/clear) a link-level fault through
    /// [`allconcur_cluster::Cluster::inject_fault`].
    Fault(FaultCommand),
    /// Fail-stop `server` (peers detect it through the backend's FD).
    Crash {
        /// The victim (a server id of the current configuration).
        server: ServerId,
    },
    /// Rejoin `joiners` fresh servers through an agreed reconfiguration:
    /// the executor settles outstanding work, snapshots a surviving
    /// replica, and every member of the new overlay — survivor or joiner
    /// — restores from that snapshot (the crash-*restart* path; server
    /// ids renumber on the new overlay, so a restart is membership
    /// returning, not a pid coming back).
    Restart {
        /// Servers to add alongside the survivors.
        joiners: usize,
    },
    /// Inject a (possibly false) FD suspicion at `at` against `suspect`.
    Suspect {
        /// The server whose local FD raises the suspicion.
        at: ServerId,
        /// The suspected server.
        suspect: ServerId,
    },
    /// Power-fail the **whole deployment** at once, then recover it from
    /// its write-ahead logs alone. Requires a durability-enabled
    /// scenario ([`crate::Scenario::generate_durability`]) and a
    /// rebuildable backend (`run_sim`); the executor accounts every
    /// outstanding command at the crash instant (durably acknowledged →
    /// resolved, anything else → a typed loss), injects the scheduled
    /// torn writes, crashes every virtual disk (unsynced bytes vanish),
    /// and rebuilds the service with `Service::recover`.
    KillAllAndRecover {
        /// Torn-write injection: for each `(server, keep)`, every WAL
        /// segment with unsynced bytes on that server's disk keeps only
        /// `keep % unsynced_len` bytes of its unsynced tail — a
        /// byte-exact partial write for recovery to trim.
        torn: Vec<(ServerId, u64)>,
    },
    /// Toggle a disk-slow fault on `server`: while on, its fsyncs stall
    /// (`sync` completes nothing), so the server's durable watermark
    /// freezes while appends continue — group commit must ride the
    /// other servers' disks.
    DiskSlow {
        /// The server whose disk stalls.
        server: ServerId,
        /// `true` to stall fsyncs, `false` to restore them.
        on: bool,
    },
    /// Silently corrupt `server`'s replica state *outside* agreement (a
    /// stray write no round carried — the model for bit rot in applied
    /// state or a non-deterministic apply). The divergence audit must
    /// catch it at the next digest cross-check, quarantine the replica
    /// with a typed `Diverged`, and heal it back in from a peer
    /// snapshot; [`crate::PropertyChecker::check_quarantine_converges`]
    /// asserts the full detect → quarantine → rejoin cycle.
    PoisonReplica {
        /// The replica whose state is silently mutated.
        server: ServerId,
    },
    /// Durably flip one bit inside `server`'s oldest write-ahead-log
    /// segment — mid-log rot on *acknowledged* history (survives the
    /// disk's crash semantics, unlike a torn tail). Requires a
    /// durability-enabled scenario; only observable at the next
    /// [`NemesisAction::KillAllAndRecover`], where recovery must refuse
    /// to trim the rotted log and rebuild the server from its peers'
    /// chunked catch-up instead.
    DiskRot {
        /// The server whose log rots.
        server: ServerId,
        /// Absolute bit offset into the oldest segment (the generator
        /// keeps it inside the first frame's checksummed region).
        bit: u64,
    },
}

/// A schedule of nemesis actions keyed by workload tick (applied before
/// that tick's submissions), kept sorted by tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NemesisPlan {
    steps: Vec<(u64, NemesisAction)>,
}

impl NemesisPlan {
    /// The empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `action` at `tick` (builder style). Actions sharing a
    /// tick apply in insertion order.
    pub fn at(mut self, tick: u64, action: NemesisAction) -> Self {
        let pos = self.steps.partition_point(|&(t, _)| t <= tick);
        self.steps.insert(pos, (tick, action));
        self
    }

    /// The actions scheduled at exactly `tick`, in order.
    pub fn actions_at(&self, tick: u64) -> impl Iterator<Item = &NemesisAction> {
        let start = self.steps.partition_point(|&(t, _)| t < tick);
        self.steps[start..].iter().take_while(move |&&(t, _)| t == tick).map(|(_, a)| a)
    }

    /// The latest scheduled tick (0 for an empty plan).
    pub fn last_tick(&self) -> u64 {
        self.steps.last().map(|&(t, _)| t).unwrap_or(0)
    }

    /// Every step, in tick order.
    pub fn steps(&self) -> &[(u64, NemesisAction)] {
        &self.steps
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_tick_and_preserves_same_tick_order() {
        let plan = NemesisPlan::new()
            .at(5, NemesisAction::Restart { joiners: 1 })
            .at(2, NemesisAction::Crash { server: 3 })
            .at(5, NemesisAction::Crash { server: 0 })
            .at(2, NemesisAction::Fault(FaultCommand::HealPartitions));
        assert_eq!(plan.len(), 4);
        let at2: Vec<_> = plan.actions_at(2).collect();
        assert_eq!(at2.len(), 2);
        assert_eq!(at2[0], &NemesisAction::Crash { server: 3 });
        assert_eq!(at2[1], &NemesisAction::Fault(FaultCommand::HealPartitions));
        let at5: Vec<_> = plan.actions_at(5).collect();
        assert_eq!(at5[0], &NemesisAction::Restart { joiners: 1 });
        assert_eq!(plan.actions_at(3).count(), 0);
        assert_eq!(plan.last_tick(), 5);
    }
}
