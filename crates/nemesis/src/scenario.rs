//! Seeded scenario generation and execution.
//!
//! A [`Scenario`] composes **topology × round window × nemesis plan**
//! deterministically from one `u64` seed: `Scenario::generate(seed)`
//! always yields the same overlay, the same fault schedule, and (on the
//! simulated backend) the same execution byte-for-byte — a CI failure
//! replays exactly from its printed seed.
//!
//! Execution drives a typed `Service<KvStore>` over the [`Cluster`]
//! facade: every tick submits one uniquely-keyed command through each
//! live server, applies the tick's scheduled nemesis actions, and pumps
//! the deployment. At every epoch boundary (each restart/rejoin, and the
//! end of the run) the executor settles outstanding work and hands the
//! recorded delivery streams to the [`PropertyChecker`] — the four
//! atomic-broadcast properties plus RSM snapshot convergence are
//! asserted after *every* scenario, not only the ones that look
//! suspicious.

use crate::checker::{uid_command, EpochRecord, PropertyChecker, PropertyViolation};
use crate::plan::{NemesisAction, NemesisPlan};
use allconcur_cluster::{Cluster, FaultCommand, SimOptions};
use allconcur_core::config::FdMode;
use allconcur_core::membership::plan_reconfiguration;
use allconcur_core::replica::{KvResponse, KvStore};
use allconcur_core::ServerId;
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::standard::complete_digraph;
use allconcur_graph::{Digraph, ReliabilityModel};
use allconcur_rsm::{CommandHandle, Service, ServiceError};
use allconcur_sim::network::{Jitter, NetworkModel};
use allconcur_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Budget for the settle-everything barrier at epoch boundaries.
const SYNC_TIMEOUT: Duration = Duration::from_secs(60);

/// The five generated fault families, spanning the adversarial regimes
/// of the companion formal-spec paper's schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Symmetric two-group partition, healed mid-run.
    PartitionHeal,
    /// Fail-stop crash, then rejoin via snapshot catch-up.
    CrashRestart,
    /// Probabilistic loss on a couple of overlay links.
    MessageLoss,
    /// Per-link latency spikes.
    DelaySpike,
    /// Repeated crash + rejoin cycles.
    Churn,
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultClass::PartitionHeal => "partition+heal",
            FaultClass::CrashRestart => "crash-restart",
            FaultClass::MessageLoss => "message-loss",
            FaultClass::DelaySpike => "delay-spike",
            FaultClass::Churn => "churn",
        };
        f.write_str(name)
    }
}

/// A fully specified nemesis scenario. Construct with
/// [`Scenario::generate`] (seeded) or assemble the fields by hand for a
/// scripted schedule.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generation seed (echoed in failure reports for replay).
    pub seed: u64,
    /// Deployment size.
    pub n: usize,
    /// Round-pipelining window / service pipeline depth.
    pub window: usize,
    /// Workload length: one command per live server per tick.
    pub ticks: u64,
    /// The fault family this scenario exercises.
    pub class: FaultClass,
    /// The timed fault schedule.
    pub plan: NemesisPlan,
    /// How long each tick drives the deployment before the next batch of
    /// submissions (simulated time on the sim backend, wall time on
    /// TCP).
    pub tick_budget: Duration,
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario seed={} class={} n={} window={} ticks={}",
            self.seed, self.class, self.n, self.window, self.ticks
        )
    }
}

/// Outcome counters of a completed (and property-checked) scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Configuration epochs executed (1 + number of restarts).
    pub epochs: u64,
    /// Agreement rounds delivered, summed over epochs (reference-stream
    /// length).
    pub rounds: u64,
    /// Commands whose typed responses resolved.
    pub resolved: u64,
    /// Commands that failed typed (origin down, command lost to a crash,
    /// outstanding across a reconfiguration) — accounted, not silent.
    pub failed: u64,
    /// Messages destroyed by probabilistic link loss (simulated backend
    /// only; 0 on TCP, whose drops happen inside the runtimes).
    pub dropped: u64,
}

/// Why a scenario failed. Every variant is replayable from the
/// scenario's seed.
#[derive(Debug)]
pub enum ScenarioError {
    /// Driving the service failed (stall, transport error, timeout).
    Service(ServiceError),
    /// An atomic-broadcast property (or snapshot convergence) was
    /// violated.
    Property(PropertyViolation),
    /// A command neither resolved nor failed typed after the final
    /// settle — a silent loss.
    Unresolved {
        /// The origin the command was submitted through.
        origin: ServerId,
        /// Its per-origin sequence number.
        seq: u64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Service(e) => write!(f, "scenario execution failed: {e}"),
            ScenarioError::Property(v) => write!(f, "property violation: {v}"),
            ScenarioError::Unresolved { origin, seq } => write!(
                f,
                "command {seq} via server {origin} neither resolved nor failed typed \
                 (silent loss)"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ServiceError> for ScenarioError {
    fn from(e: ServiceError) -> Self {
        ScenarioError::Service(e)
    }
}

impl From<PropertyViolation> for ScenarioError {
    fn from(v: PropertyViolation) -> Self {
        ScenarioError::Property(v)
    }
}

impl Scenario {
    /// Deterministically compose a scenario from `seed`: the fault class
    /// cycles with `seed % 5` and the round window with `(seed / 5) % 3`
    /// over {1, 4, 8}, so any 15 consecutive seeds cover the full
    /// class × window matrix; size, victims, links, rates, and timings
    /// derive from the seeded RNG.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let class = match seed % 5 {
            0 => FaultClass::PartitionHeal,
            1 => FaultClass::CrashRestart,
            2 => FaultClass::MessageLoss,
            3 => FaultClass::DelaySpike,
            _ => FaultClass::Churn,
        };
        let window = [1usize, 4, 8][(seed as usize / 5) % 3];
        let n = rng.gen_range(6..=10);
        let overlay = overlay_for(n);
        let mut ticks = 10u64;
        let plan = match class {
            FaultClass::PartitionHeal => {
                let split = rng.gen_range(1..n);
                let groups = vec![
                    (0..split as ServerId).collect::<Vec<_>>(),
                    (split as ServerId..n as ServerId).collect::<Vec<_>>(),
                ];
                let cut: u64 = rng.gen_range(2..=3);
                let heal = cut + rng.gen_range(2u64..=4);
                NemesisPlan::new()
                    .at(cut, NemesisAction::Fault(FaultCommand::Partition { groups }))
                    .at(heal, NemesisAction::Fault(FaultCommand::HealPartitions))
            }
            FaultClass::CrashRestart => {
                let victim = rng.gen_range(0..n as ServerId);
                NemesisPlan::new()
                    .at(2, NemesisAction::Crash { server: victim })
                    .at(6, NemesisAction::Restart { joiners: 1 })
            }
            FaultClass::MessageLoss => {
                let edges: Vec<(ServerId, ServerId)> = overlay.edges().collect();
                let mut plan = NemesisPlan::new();
                for _ in 0..2 {
                    let (from, to) = edges[rng.gen_range(0..edges.len())];
                    let ppm = rng.gen_range(100_000..=400_000);
                    plan = plan.at(1, NemesisAction::Fault(FaultCommand::Drop { from, to, ppm }));
                }
                plan.at(8, NemesisAction::Fault(FaultCommand::ClearLinkFaults))
            }
            FaultClass::DelaySpike => {
                let edges: Vec<(ServerId, ServerId)> = overlay.edges().collect();
                let mut plan = NemesisPlan::new();
                for _ in 0..2 {
                    let (from, to) = edges[rng.gen_range(0..edges.len())];
                    let extra = Duration::from_micros(rng.gen_range(200..=2_000));
                    plan =
                        plan.at(1, NemesisAction::Fault(FaultCommand::Delay { from, to, extra }));
                }
                plan.at(7, NemesisAction::Fault(FaultCommand::ClearLinkFaults))
            }
            FaultClass::Churn => {
                ticks = 14;
                let v1 = rng.gen_range(0..n as ServerId);
                let v2 = rng.gen_range(0..n as ServerId);
                NemesisPlan::new()
                    .at(2, NemesisAction::Crash { server: v1 })
                    .at(5, NemesisAction::Restart { joiners: 1 })
                    .at(8, NemesisAction::Crash { server: v2 })
                    .at(11, NemesisAction::Restart { joiners: 1 })
            }
        };
        Scenario { seed, n, window, ticks, class, plan, tick_budget: Duration::from_millis(3) }
    }

    /// Override the per-tick driving budget (useful on TCP, where the
    /// budget is wall-clock and loopback rounds take longer than the
    /// simulator's default).
    pub fn with_tick_budget(mut self, budget: Duration) -> Scenario {
        self.tick_budget = budget;
        self
    }

    /// The initial overlay for this scenario's size.
    pub fn overlay(&self) -> Digraph {
        overlay_for(self.n)
    }

    /// Run on the discrete-event simulator (fully deterministic: same
    /// seed, same execution, byte-for-byte).
    pub fn run_sim(&self) -> Result<ScenarioReport, ScenarioError> {
        let opts = SimOptions {
            network: NetworkModel::tcp_cluster().with_jitter(Jitter::Uniform { max_ns: 2_000 }),
            fd_delay: SimTime::from_us(200),
            seed: self.seed,
            ..SimOptions::default()
        };
        self.run_on(Cluster::sim_with(self.overlay(), opts))
    }

    /// Run over an already-constructed cluster (any backend). The
    /// cluster must be deployed on [`Scenario::overlay`]. On TCP, plans
    /// containing sim-only fault commands (partition, delay, reorder)
    /// fail with [`ClusterError::Unsupported`] wrapped in
    /// [`ScenarioError::Service`] — generate a supported class
    /// ([`FaultClass::CrashRestart`], [`FaultClass::MessageLoss`],
    /// [`FaultClass::Churn`]) for TCP runs.
    ///
    /// [`ClusterError::Unsupported`]: allconcur_cluster::ClusterError::Unsupported
    pub fn run_on(&self, cluster: Cluster) -> Result<ScenarioReport, ScenarioError> {
        let mut service = Service::new(cluster, &KvStore::default())?;
        service.set_pipeline(self.window);
        service.record_deliveries(true);
        let mut report = ScenarioReport::default();
        let mut record = EpochRecord::new(0);
        let mut pending: Vec<(ServerId, CommandHandle<KvResponse>, u64)> = Vec::new();
        let mut next_uid: u64 = 1;
        let total_ticks = self.ticks.max(self.plan.last_tick());
        for tick in 0..=total_ticks {
            let actions: Vec<NemesisAction> = self.plan.actions_at(tick).cloned().collect();
            for action in actions {
                self.apply(&action, &mut service, &mut record, &mut pending, &mut report)?;
            }
            if tick < self.ticks {
                for origin in service.live_servers() {
                    let uid = next_uid;
                    match service.submit(origin, &uid_command(uid)) {
                        Ok(handle) => {
                            next_uid += 1;
                            record.submitted.insert(uid, origin);
                            pending.push((origin, handle, uid));
                        }
                        // Raced a crash between live_servers() and here.
                        Err(ServiceError::OriginDown(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            // One bounded driving step, then drain whatever is ready.
            service.pump(self.tick_budget)?;
            while service.pump(Duration::ZERO)? {}
        }
        self.close_epoch(&mut service, &mut record, &mut pending, &mut report)?;
        if let Some(sim) = service.cluster_mut().sim_transport_mut() {
            report.dropped = sim.cluster().dropped_messages();
        }
        Ok(report)
    }

    fn apply(
        &self,
        action: &NemesisAction,
        service: &mut Service<KvStore>,
        record: &mut EpochRecord,
        pending: &mut Vec<(ServerId, CommandHandle<KvResponse>, u64)>,
        report: &mut ScenarioReport,
    ) -> Result<(), ScenarioError> {
        match action {
            NemesisAction::Fault(cmd) => {
                service.cluster_mut().inject_fault(cmd).map_err(ServiceError::Cluster)?;
            }
            NemesisAction::Crash { server } => {
                if service.live_servers().contains(server) {
                    service.crash(*server)?;
                }
            }
            NemesisAction::Suspect { at, suspect } => {
                service.suspect(*at, *suspect)?;
            }
            NemesisAction::Restart { joiners } => {
                // Epoch boundary: settle and property-check the old
                // configuration, then rejoin through the agreed
                // reconfiguration — the surviving replicas' snapshot
                // seeds every member of the new overlay, so the
                // restarted capacity catches up without history replay.
                self.close_epoch(service, record, pending, report)?;
                let survivors = service.live_servers();
                let plan = plan_reconfiguration(
                    &survivors,
                    &[],
                    *joiners,
                    &ReliabilityModel::paper_default(),
                    6.0,
                    FdMode::Perfect,
                );
                let graph = (*plan.config.graph).clone();
                service.reconfigure(graph, SYNC_TIMEOUT)?;
                *record = EpochRecord::new(record.epoch + 1);
            }
        }
        Ok(())
    }

    /// Settle the current configuration and assert every property on it:
    /// heal and clear link faults, sync to quiescence, account every
    /// outstanding command (resolved or typed failure — never silence),
    /// then run the checker over the recorded streams and the live
    /// replicas' snapshots.
    fn close_epoch(
        &self,
        service: &mut Service<KvStore>,
        record: &mut EpochRecord,
        pending: &mut Vec<(ServerId, CommandHandle<KvResponse>, u64)>,
        report: &mut ScenarioReport,
    ) -> Result<(), ScenarioError> {
        let cluster = service.cluster_mut();
        cluster.inject_fault(&FaultCommand::HealPartitions).map_err(ServiceError::Cluster)?;
        cluster.inject_fault(&FaultCommand::ClearLinkFaults).map_err(ServiceError::Cluster)?;
        service.sync(SYNC_TIMEOUT)?;
        for (origin, handle, uid) in pending.drain(..) {
            match service.try_response(&handle) {
                Ok(Some(_)) => {
                    record.resolved.insert(uid);
                    report.resolved += 1;
                }
                Ok(None) => return Err(ScenarioError::Unresolved { origin, seq: handle.seq() }),
                Err(
                    ServiceError::OriginDown(_)
                    | ServiceError::CommandLost { .. }
                    | ServiceError::Reconfigured,
                ) => report.failed += 1,
                Err(e) => return Err(e.into()),
            }
        }
        for (at, delivery) in service.take_delivery_log() {
            record.streams.entry(at).or_default().push(delivery);
        }
        report.rounds += record.streams.values().map(|s| s.len() as u64).max().unwrap_or(0);
        PropertyChecker::check_epoch(record)?;
        let mut snapshots = Vec::new();
        for id in service.live_servers() {
            snapshots.push((id, service.replica(id)?.snapshot()));
        }
        PropertyChecker::check_snapshots(&snapshots)?;
        report.epochs += 1;
        Ok(())
    }
}

/// GS(n, 3) when valid, complete digraph below the GS threshold.
fn overlay_for(n: usize) -> Digraph {
    if n >= 6 {
        if let Ok(g) = gs_digraph(n, 3) {
            return g;
        }
    }
    complete_digraph(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..15 {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a.n, b.n);
            assert_eq!(a.window, b.window);
            assert_eq!(a.class, b.class);
            assert_eq!(a.plan, b.plan);
        }
    }

    #[test]
    fn fifteen_consecutive_seeds_span_the_matrix() {
        use std::collections::BTreeSet;
        let combos: BTreeSet<(String, usize)> = (0..15)
            .map(|s| {
                let sc = Scenario::generate(s);
                (sc.class.to_string(), sc.window)
            })
            .collect();
        assert_eq!(combos.len(), 15, "5 classes × 3 windows all distinct");
    }

    #[test]
    fn one_scenario_runs_green_per_class() {
        for seed in 0..5 {
            let scenario = Scenario::generate(seed);
            let report = scenario.run_sim().unwrap_or_else(|e| panic!("{scenario} failed: {e}"));
            assert!(report.rounds > 0, "{scenario} delivered nothing");
            assert!(report.resolved > 0, "{scenario} resolved nothing");
        }
    }
}
