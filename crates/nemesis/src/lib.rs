#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # allconcur-nemesis — deterministic fault injection + property checking
//!
//! AllConcur's guarantees hinge on the failure detector and on the
//! overlay's `f < k(G)` vertex connectivity (§2, §5 of the paper); the
//! regimes where the tracking digraphs and the FD actually earn their
//! keep are the *adversarial* ones — partitions, message loss, delay
//! spikes, crash-restart churn. This crate makes those regimes
//! repeatable:
//!
//! * [`NemesisPlan`] — a timed schedule of fault actions (link faults
//!   via the facade's `inject_fault`, crashes, restarts-with-rejoin, FD
//!   suspicions), keyed by workload tick so the same plan drives the
//!   simulated and TCP backends;
//! * [`PropertyChecker`] — consumes every server's recorded A-delivery
//!   stream and asserts the four atomic-broadcast properties (validity,
//!   uniform agreement, integrity, total order) plus RSM snapshot
//!   convergence, after **every** scenario;
//! * [`Scenario`] — seeded composition of topology × round window ×
//!   plan: `Scenario::generate(seed)` is fully deterministic, so any CI
//!   failure replays byte-for-byte from its printed seed;
//! * durability nemesis — [`Scenario::generate_durability`] schedules
//!   whole-cluster power losses with byte-exact torn tail writes and
//!   disk-slow fsync spikes against WAL-backed deployments, recovers
//!   them from the logs alone, and asserts the
//!   no-lost-acknowledged-command property
//!   ([`PropertyViolation::AcknowledgedLost`]) after every recovery;
//! * resilience nemesis — [`Scenario::generate_resilience`] schedules
//!   transient link flaps that must heal with zero membership removals
//!   ([`PropertyViolation::MembershipRemovedUnderGrace`]) and open-loop
//!   overload bursts whose every internal shed must surface as a typed
//!   `Busy` ([`PropertyViolation::SilentShed`]);
//! * integrity nemesis — [`Scenario::generate_integrity`] schedules wire
//!   bit-flip storms (every flip CRC-detected, never delivered), silent
//!   replica poison that the divergence audit must quarantine and heal
//!   ([`PropertyViolation::QuarantineStuck`]), and durable mid-log WAL
//!   rot that recovery must detect and rebuild from peers — any
//!   corruption leaking past its detection boundary is
//!   [`PropertyViolation::SilentCorruption`].
//!
//! ```
//! use allconcur_nemesis::Scenario;
//!
//! let scenario = Scenario::generate(7);
//! let report = scenario.run_sim().unwrap_or_else(|e| panic!("{scenario} failed: {e}"));
//! assert!(report.rounds > 0);
//! ```

pub mod checker;
pub mod plan;
pub mod scenario;

pub use checker::{uid_command, EpochRecord, PropertyChecker, PropertyViolation};
pub use plan::{NemesisAction, NemesisPlan};
pub use scenario::{FaultClass, Scenario, ScenarioError, ScenarioReport};
