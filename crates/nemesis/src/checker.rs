//! The always-on atomic-broadcast property checker.
//!
//! Consumes the per-server A-delivery streams a scenario recorded (one
//! configuration epoch at a time — reconfiguration restarts rounds at
//! zero) plus the executor's knowledge of what was submitted and what
//! resolved, and asserts the four properties of §2.1–2.2:
//!
//! * **Validity** — every command whose typed response resolved appears
//!   in the agreed history (a correct server's A-broadcast message is
//!   A-delivered);
//! * **Uniform agreement** — every server's stream (including servers
//!   that crashed mid-epoch) is a prefix of the longest stream: if *any*
//!   server delivers a round, every server that delivers it delivers the
//!   same message set;
//! * **Integrity** — each command is delivered at most once, and only
//!   commands actually submitted are ever delivered;
//! * **Total order** — the prefix relation above, round by round: all
//!   streams are byte-identical up to their length, with contiguous
//!   round numbers from zero.
//!
//! Plus the RSM-level corollary: after a scenario settles, every live
//! replica's snapshot must be byte-identical
//! ([`PropertyChecker::check_snapshots`]).

use allconcur_core::batch::iter_batch;
use allconcur_core::delivery::Delivery;
use allconcur_core::replica::{Codec, KvCodec, KvCommand, KvStore};
use allconcur_core::ServerId;
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet};

/// Everything a scenario records about one configuration epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochRecord {
    /// Epoch index (0 before the first reconfiguration).
    pub epoch: u64,
    /// Per-server A-delivery streams, in per-server delivery order.
    pub streams: BTreeMap<ServerId, Vec<Delivery>>,
    /// Unique id of every command submitted this epoch → its origin.
    pub submitted: BTreeMap<u64, ServerId>,
    /// Unique ids whose typed responses resolved (these *must* be in the
    /// agreed history; ids that failed typed — origin down, command
    /// lost, reconfigured — are accounted for, not silently dropped).
    pub resolved: BTreeSet<u64>,
}

impl EpochRecord {
    /// An empty record for `epoch`.
    pub fn new(epoch: u64) -> Self {
        EpochRecord { epoch, ..Self::default() }
    }
}

/// A property violation found by [`PropertyChecker`]. Each variant names
/// the broken property and enough context to localise the divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyViolation {
    /// Total order / uniform agreement: `server`'s `index`-th delivery
    /// differs from the reference stream's.
    OrderDivergence {
        /// Epoch of the divergence.
        epoch: u64,
        /// The diverging server.
        server: ServerId,
        /// Position in the server's stream.
        index: usize,
    },
    /// A server's stream skips or repeats a round number.
    RoundGap {
        /// Epoch of the gap.
        epoch: u64,
        /// The server with the gap.
        server: ServerId,
        /// The round number found where `index` was expected.
        round: u64,
    },
    /// Integrity: a command id was delivered twice.
    DuplicateDelivery {
        /// Epoch of the duplicate.
        epoch: u64,
        /// The duplicated command id.
        uid: u64,
    },
    /// Integrity: the agreed history carries a payload never submitted
    /// (or undecodable as a workload command).
    ForeignDelivery {
        /// Epoch of the foreign payload.
        epoch: u64,
        /// The origin slot it was delivered under.
        origin: ServerId,
    },
    /// Validity: a command with a resolved typed response is missing
    /// from the agreed history.
    ResolvedNotDelivered {
        /// Epoch of the loss.
        epoch: u64,
        /// The missing command id.
        uid: u64,
        /// The origin it was submitted through.
        origin: ServerId,
    },
    /// RSM convergence: two live replicas settled on different states.
    SnapshotDivergence {
        /// One of the diverging servers.
        a: ServerId,
        /// The other diverging server.
        b: ServerId,
    },
    /// Durability: a command whose typed response was durably
    /// acknowledged before a whole-cluster crash is absent from the
    /// recovered state.
    AcknowledgedLost {
        /// The lost command id.
        uid: u64,
    },
    /// Resilience: a transient link fault whose outage stayed within the
    /// transport's grace budget still cost a server its membership — the
    /// reconnect-with-backoff layer failed to absorb the flap.
    MembershipRemovedUnderGrace {
        /// The server removed from the live set.
        server: ServerId,
    },
    /// Backpressure: the service shed submissions internally without
    /// reporting every one of them typed to its caller — the counters
    /// disagree, so some refusals were silent.
    SilentShed {
        /// Sheds counted inside the service.
        internal: u64,
        /// Typed `Busy` refusals the caller observed.
        observed: u64,
    },
    /// End-to-end integrity: injected corruption leaked past its
    /// detection boundary. A flipped wire bit changed replica state
    /// (the frame CRC should have discarded it), a poisoned replica was
    /// never flagged by the divergence audit, or rotted log bytes
    /// entered the recovered state (the recovery scrub should have
    /// refused the log and rebuilt from peers).
    SilentCorruption {
        /// The server whose state absorbed the corruption (the rot or
        /// poison victim when known).
        server: ServerId,
    },
    /// End-to-end integrity: a replica the divergence audit quarantined
    /// never completed the heal — it is still quarantined (or never
    /// rejoined) after the run settled, so the deployment lost a
    /// replica to corruption it was supposed to absorb.
    QuarantineStuck {
        /// The replica that never reconverged.
        server: ServerId,
    },
}

impl std::fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropertyViolation::OrderDivergence { epoch, server, index } => write!(
                f,
                "total order violated in epoch {epoch}: server {server}'s delivery #{index} \
                 differs from the reference stream"
            ),
            PropertyViolation::RoundGap { epoch, server, round } => write!(
                f,
                "round sequence broken in epoch {epoch}: server {server} delivered round {round} \
                 out of order"
            ),
            PropertyViolation::DuplicateDelivery { epoch, uid } => {
                write!(f, "integrity violated in epoch {epoch}: command {uid:#x} delivered twice")
            }
            PropertyViolation::ForeignDelivery { epoch, origin } => write!(
                f,
                "integrity violated in epoch {epoch}: never-submitted payload delivered under \
                 origin {origin}"
            ),
            PropertyViolation::ResolvedNotDelivered { epoch, uid, origin } => write!(
                f,
                "validity violated in epoch {epoch}: command {uid:#x} (origin {origin}) resolved \
                 but is absent from the agreed history"
            ),
            PropertyViolation::SnapshotDivergence { a, b } => {
                write!(f, "replica snapshots diverged between servers {a} and {b}")
            }
            PropertyViolation::AcknowledgedLost { uid } => write!(
                f,
                "durability violated: command {uid:#x} was acknowledged before the crash but is \
                 missing from the recovered state"
            ),
            PropertyViolation::MembershipRemovedUnderGrace { server } => write!(
                f,
                "resilience violated: server {server} lost its membership to a link fault that \
                 stayed within the transport's grace budget"
            ),
            PropertyViolation::SilentShed { internal, observed } => write!(
                f,
                "backpressure violated: {internal} submissions shed internally but only \
                 {observed} typed Busy refusals reached the caller"
            ),
            PropertyViolation::SilentCorruption { server } => write!(
                f,
                "integrity violated: injected corruption on server {server} leaked past its \
                 detection boundary (CRC, divergence audit, or recovery scrub stayed silent)"
            ),
            PropertyViolation::QuarantineStuck { server } => write!(
                f,
                "integrity violated: server {server} was quarantined by the divergence audit \
                 but never rejoined and reconverged"
            ),
        }
    }
}

impl std::error::Error for PropertyViolation {}

/// Encode `uid` as the workload command the scenario executor submits.
/// The checker inverts this mapping when auditing agreed payloads.
pub fn uid_command(uid: u64) -> KvCommand {
    KvCommand::Put {
        key: Bytes::copy_from_slice(&uid.to_le_bytes()),
        value: Bytes::from_static(b"nemesis"),
    }
}

/// Recover the command id from one agreed batch item, if it is a
/// well-formed workload command.
fn uid_of(item: &Bytes) -> Option<u64> {
    match KvCodec.decode(item).ok()? {
        KvCommand::Put { key, .. } if key.len() == 8 => {
            Some(u64::from_le_bytes(key.as_ref().try_into().expect("8 bytes")))
        }
        _ => None,
    }
}

/// The atomic-broadcast property checker.
pub struct PropertyChecker;

impl PropertyChecker {
    /// Check all four atomic-broadcast properties over one epoch's
    /// recorded streams. Returns the first violation found.
    pub fn check_epoch(record: &EpochRecord) -> Result<(), PropertyViolation> {
        let epoch = record.epoch;
        // Reference stream: the longest one. Uniform agreement + total
        // order reduce to "every stream is a prefix of the reference".
        let (ref_server, reference): (ServerId, &[Delivery]) = record
            .streams
            .iter()
            .max_by_key(|(_, s)| s.len())
            .map(|(&id, s)| (id, s.as_slice()))
            .unwrap_or((0, &[]));
        for (i, d) in reference.iter().enumerate() {
            if d.round != i as u64 {
                return Err(PropertyViolation::RoundGap {
                    epoch,
                    server: ref_server,
                    round: d.round,
                });
            }
        }
        for (&server, stream) in &record.streams {
            for (index, d) in stream.iter().enumerate() {
                // Prefix equality subsumes per-stream round contiguity:
                // a matching entry equals reference[index], whose round
                // was just verified to be `index`.
                match reference.get(index) {
                    Some(r) if r == d => {}
                    // Longer than the reference is impossible (the
                    // reference is the longest stream) — treat any
                    // mismatch as divergence at `index`.
                    _ => return Err(PropertyViolation::OrderDivergence { epoch, server, index }),
                }
            }
        }
        // Integrity over the reference (every other stream is a prefix
        // of it): each delivered command decodes to a submitted id, once.
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for delivery in reference {
            for (origin, payload) in &delivery.messages {
                for item in iter_batch(payload.clone()) {
                    let Ok(item) = item else {
                        return Err(PropertyViolation::ForeignDelivery { epoch, origin: *origin });
                    };
                    let Some(uid) = uid_of(&item) else {
                        return Err(PropertyViolation::ForeignDelivery { epoch, origin: *origin });
                    };
                    if !record.submitted.contains_key(&uid) {
                        return Err(PropertyViolation::ForeignDelivery { epoch, origin: *origin });
                    }
                    if !seen.insert(uid) {
                        return Err(PropertyViolation::DuplicateDelivery { epoch, uid });
                    }
                }
            }
        }
        // Validity: everything that resolved is in the agreed history.
        for &uid in &record.resolved {
            if !seen.contains(&uid) {
                let origin = record.submitted.get(&uid).copied().unwrap_or(0);
                return Err(PropertyViolation::ResolvedNotDelivered { epoch, uid, origin });
            }
        }
        Ok(())
    }

    /// The no-lost-acknowledged-command property: after a whole-cluster
    /// crash and recovery, every command id whose typed response was
    /// durably acknowledged before the crash must still be present in
    /// the recovered state (keyed as [`uid_command`] writes it).
    pub fn check_recovered_acks(
        acked: &BTreeSet<u64>,
        state: &KvStore,
    ) -> Result<(), PropertyViolation> {
        for &uid in acked {
            if state.get_local(&uid.to_le_bytes()).is_none() {
                return Err(PropertyViolation::AcknowledgedLost { uid });
            }
        }
        Ok(())
    }

    /// The no-removal-under-grace property: after a scenario whose link
    /// outages all stayed within the transport's grace budget, every
    /// configured server must still be in the live set — flaps heal
    /// through reconnection, they never escalate to FD removal.
    pub fn check_full_membership(n: usize, live: &[ServerId]) -> Result<(), PropertyViolation> {
        for id in 0..n as ServerId {
            if !live.contains(&id) {
                return Err(PropertyViolation::MembershipRemovedUnderGrace { server: id });
            }
        }
        Ok(())
    }

    /// The no-silent-shed property: every submission the service shed
    /// internally must have surfaced as a typed `Busy` to its caller —
    /// the two counters agree, or refusals went silent.
    pub fn check_shed_accounting(internal: u64, observed: u64) -> Result<(), PropertyViolation> {
        if internal != observed {
            return Err(PropertyViolation::SilentShed { internal, observed });
        }
        Ok(())
    }

    /// The quarantine-converges property: after a scenario that poisons
    /// one replica's state outside agreement, the divergence audit must
    /// have caught it (`divergences > 0` — anything else is silent
    /// corruption), the quarantined replica must have healed back in
    /// (`rejoins > 0`), and nobody may still be quarantined once the
    /// run settles.
    pub fn check_quarantine_converges(
        victim: ServerId,
        divergences: u64,
        rejoins: u64,
        still_quarantined: &[ServerId],
    ) -> Result<(), PropertyViolation> {
        if divergences == 0 {
            return Err(PropertyViolation::SilentCorruption { server: victim });
        }
        if let Some(&server) = still_quarantined.first() {
            return Err(PropertyViolation::QuarantineStuck { server });
        }
        if rejoins == 0 {
            return Err(PropertyViolation::QuarantineStuck { server: victim });
        }
        Ok(())
    }

    /// The no-silent-rot property: every server whose write-ahead log
    /// was rot-injected must appear in recovery's rotted report —
    /// recovery detected the bad checksum, refused to trim acknowledged
    /// history, and rebuilt the server from its peers. A rot-injected
    /// server missing from the report means the corrupted bytes entered
    /// the recovered state unnoticed.
    pub fn check_rot_detected(
        injected: &[ServerId],
        rebuilt: &[ServerId],
    ) -> Result<(), PropertyViolation> {
        for &server in injected {
            if !rebuilt.contains(&server) {
                return Err(PropertyViolation::SilentCorruption { server });
            }
        }
        Ok(())
    }

    /// RSM snapshot convergence: every live replica's settled snapshot
    /// must be byte-identical.
    pub fn check_snapshots(snapshots: &[(ServerId, Bytes)]) -> Result<(), PropertyViolation> {
        if let Some(((a, first), rest)) = snapshots.split_first() {
            for (b, snap) in rest {
                if snap != first {
                    return Err(PropertyViolation::SnapshotDivergence { a: *a, b: *b });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allconcur_core::batch::Batcher;

    fn payload_of(uids: &[u64]) -> Bytes {
        let mut b = Batcher::new();
        for &uid in uids {
            b.push(KvCodec.encode(&uid_command(uid)));
        }
        b.take_batch()
    }

    fn delivery(round: u64, per_origin: &[(ServerId, &[u64])]) -> Delivery {
        Delivery {
            round,
            messages: per_origin.iter().map(|&(o, uids)| (o, payload_of(uids))).collect(),
        }
    }

    fn healthy_record() -> EpochRecord {
        let mut rec = EpochRecord::new(0);
        let d0 = delivery(0, &[(0, &[1]), (1, &[2])]);
        let d1 = delivery(1, &[(0, &[3]), (1, &[])]);
        rec.streams.insert(0, vec![d0.clone(), d1.clone()]);
        rec.streams.insert(1, vec![d0, d1]);
        for (uid, origin) in [(1u64, 0u32), (2, 1), (3, 0)] {
            rec.submitted.insert(uid, origin);
            rec.resolved.insert(uid);
        }
        rec
    }

    #[test]
    fn healthy_epoch_passes() {
        PropertyChecker::check_epoch(&healthy_record()).unwrap();
    }

    #[test]
    fn crashed_server_prefix_passes() {
        let mut rec = healthy_record();
        rec.streams.get_mut(&1).unwrap().truncate(1);
        PropertyChecker::check_epoch(&rec).unwrap();
    }

    #[test]
    fn order_divergence_detected() {
        let mut rec = healthy_record();
        rec.streams.get_mut(&1).unwrap()[1] = delivery(1, &[(0, &[3]), (1, &[2])]);
        // Divergence between two equal-length streams: either side may
        // be reported, the position must be exact.
        match PropertyChecker::check_epoch(&rec) {
            Err(PropertyViolation::OrderDivergence { index: 1, .. }) => {}
            other => panic!("expected OrderDivergence, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_delivery_detected() {
        let mut rec = healthy_record();
        let dup = delivery(1, &[(0, &[1]), (1, &[])]);
        for s in rec.streams.values_mut() {
            s[1] = dup.clone();
        }
        match PropertyChecker::check_epoch(&rec) {
            Err(PropertyViolation::DuplicateDelivery { uid: 1, .. }) => {}
            other => panic!("expected DuplicateDelivery, got {other:?}"),
        }
    }

    #[test]
    fn foreign_delivery_detected() {
        let mut rec = healthy_record();
        let foreign = delivery(1, &[(0, &[99]), (1, &[])]);
        for s in rec.streams.values_mut() {
            s[1] = foreign.clone();
        }
        match PropertyChecker::check_epoch(&rec) {
            Err(PropertyViolation::ForeignDelivery { origin: 0, .. }) => {}
            other => panic!("expected ForeignDelivery, got {other:?}"),
        }
    }

    #[test]
    fn validity_loss_detected() {
        let mut rec = healthy_record();
        rec.submitted.insert(7, 1);
        rec.resolved.insert(7);
        match PropertyChecker::check_epoch(&rec) {
            Err(PropertyViolation::ResolvedNotDelivered { uid: 7, origin: 1, .. }) => {}
            other => panic!("expected ResolvedNotDelivered, got {other:?}"),
        }
    }

    #[test]
    fn round_gap_detected() {
        let mut rec = healthy_record();
        for s in rec.streams.values_mut() {
            s[1].round = 5;
        }
        match PropertyChecker::check_epoch(&rec) {
            Err(PropertyViolation::RoundGap { round: 5, .. }) => {}
            other => panic!("expected RoundGap, got {other:?}"),
        }
    }

    #[test]
    fn acknowledged_loss_detected() {
        use allconcur_core::replica::StateMachine;
        let mut kv = KvStore::default();
        kv.apply(0, uid_command(1));
        let acked: BTreeSet<u64> = [1].into();
        PropertyChecker::check_recovered_acks(&acked, &kv).unwrap();
        let acked: BTreeSet<u64> = [1, 2].into();
        match PropertyChecker::check_recovered_acks(&acked, &kv) {
            Err(PropertyViolation::AcknowledgedLost { uid: 2 }) => {}
            other => panic!("expected AcknowledgedLost, got {other:?}"),
        }
    }

    #[test]
    fn membership_removal_detected() {
        PropertyChecker::check_full_membership(3, &[0, 1, 2]).unwrap();
        match PropertyChecker::check_full_membership(3, &[0, 2]) {
            Err(PropertyViolation::MembershipRemovedUnderGrace { server: 1 }) => {}
            other => panic!("expected MembershipRemovedUnderGrace, got {other:?}"),
        }
    }

    #[test]
    fn silent_shed_detected() {
        PropertyChecker::check_shed_accounting(5, 5).unwrap();
        match PropertyChecker::check_shed_accounting(5, 3) {
            Err(PropertyViolation::SilentShed { internal: 5, observed: 3 }) => {}
            other => panic!("expected SilentShed, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_convergence_checked() {
        PropertyChecker::check_quarantine_converges(2, 1, 1, &[]).unwrap();
        match PropertyChecker::check_quarantine_converges(2, 0, 0, &[]) {
            Err(PropertyViolation::SilentCorruption { server: 2 }) => {}
            other => panic!("expected SilentCorruption, got {other:?}"),
        }
        match PropertyChecker::check_quarantine_converges(2, 1, 1, &[5]) {
            Err(PropertyViolation::QuarantineStuck { server: 5 }) => {}
            other => panic!("expected QuarantineStuck, got {other:?}"),
        }
        match PropertyChecker::check_quarantine_converges(2, 1, 0, &[]) {
            Err(PropertyViolation::QuarantineStuck { server: 2 }) => {}
            other => panic!("expected QuarantineStuck, got {other:?}"),
        }
    }

    #[test]
    fn rot_detection_checked() {
        PropertyChecker::check_rot_detected(&[3], &[3, 4]).unwrap();
        PropertyChecker::check_rot_detected(&[], &[]).unwrap();
        match PropertyChecker::check_rot_detected(&[3], &[4]) {
            Err(PropertyViolation::SilentCorruption { server: 3 }) => {}
            other => panic!("expected SilentCorruption, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_divergence_detected() {
        let same = Bytes::from_static(b"state");
        PropertyChecker::check_snapshots(&[(0, same.clone()), (1, same.clone())]).unwrap();
        match PropertyChecker::check_snapshots(&[(0, same), (2, Bytes::from_static(b"other"))]) {
            Err(PropertyViolation::SnapshotDivergence { a: 0, b: 2 }) => {}
            other => panic!("expected SnapshotDivergence, got {other:?}"),
        }
    }
}
