//! Admission-control behaviour of the typed [`Service`] layer: shed
//! typed, count every shed, recover admission once the backlog drains.

use allconcur_cluster::Cluster;
use allconcur_graph::gs::gs_digraph;
use allconcur_rsm::{AdmissionConfig, KvCommand, KvStore, Service, ServiceError};
use std::time::Duration;

fn put(n: u8) -> KvCommand {
    KvCommand::Put { key: vec![b'k', n].into(), value: vec![n].into() }
}

#[test]
fn saturated_submit_sheds_typed_and_counts() {
    let cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
    let mut kv = Service::new(cluster, &KvStore::default()).unwrap();
    kv.set_admission(AdmissionConfig { max_queued_per_origin: 4, ..AdmissionConfig::default() });

    // Saturate the (depth-1) pipeline: one round in flight...
    let first = kv.submit(0, &put(0)).unwrap();
    kv.flush().unwrap();
    assert_eq!(kv.in_flight_rounds(), 1);
    // ...then fill origin 0's pending batch to its cap.
    let mut queued = Vec::new();
    for i in 1..=4 {
        queued.push(kv.submit(0, &put(i)).unwrap());
    }

    // The next submission through origin 0 is shed, typed, with no
    // effect; other origins are still admitted.
    let err = kv.submit(0, &put(5)).unwrap_err();
    assert!(matches!(err, ServiceError::Busy { retry_after } if !retry_after.is_zero()), "{err}");
    assert_eq!(kv.shed_count(), 1);
    let other = kv.submit(1, &put(6)).unwrap();

    // Every admitted command still resolves; the shed one never ran.
    kv.sync(Duration::from_secs(60)).unwrap();
    kv.wait(&first, Duration::from_secs(60)).unwrap();
    for h in queued {
        kv.wait(&h, Duration::from_secs(60)).unwrap();
    }
    kv.wait(&other, Duration::from_secs(60)).unwrap();
    assert_eq!(kv.query_local(0).unwrap().get_local(b"k\x05"), None, "shed command had no effect");

    // Backlog drained: origin 0 is admitted again, and the shed counter
    // holds (no silent, uncounted refusals anywhere).
    let retry = kv.submit(0, &put(5)).unwrap();
    kv.sync(Duration::from_secs(60)).unwrap();
    kv.wait(&retry, Duration::from_secs(60)).unwrap();
    assert_eq!(kv.shed_count(), 1);
    kv.shutdown().unwrap();
}
