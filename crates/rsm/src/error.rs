//! The error surface of the typed [`crate::Service`] layer.
//!
//! Two layers compose here: [`RsmError`] (from `allconcur-core`) covers
//! everything that can go wrong *applying* agreed rounds — round gaps,
//! undecodable agreed payloads, bad snapshots — while [`ServiceError`]
//! adds what can go wrong *getting* a command agreed in the first place:
//! transport failures, crashed origins, reconfigurations that moved on
//! without an outstanding command.

use allconcur_cluster::ClusterError;
use allconcur_core::replica::RsmError;
use allconcur_core::ServerId;
use std::time::Duration;

/// Everything that can go wrong driving a replicated state machine
/// through [`crate::Service`].
#[derive(Debug)]
pub enum ServiceError {
    /// Applying an agreed round failed (round gap, undecodable agreed
    /// payload, bad snapshot) — see [`RsmError`].
    Rsm(RsmError),
    /// The underlying transport failed — see [`ClusterError`].
    Cluster(ClusterError),
    /// The command was submitted through a server that is down, so it
    /// can never be carried in a round. Resubmit through a live server.
    OriginDown(ServerId),
    /// The origin crashed after the command was handed to the transport:
    /// its round was agreed *without* the origin's message (early
    /// termination excluded it), so the command was never applied.
    CommandLost {
        /// The crashed origin.
        origin: ServerId,
        /// The per-origin command sequence number that was lost.
        seq: u64,
    },
    /// The command was still outstanding when the deployment
    /// reconfigured; rounds restarted on the new configuration without
    /// it. Resubmit on the new configuration.
    Reconfigured,
    /// The response did not arrive within the waiting budget.
    Timeout {
        /// The budget that elapsed.
        waited: Duration,
    },
    /// Admission control shed the command: the round pipeline is full,
    /// and either the origin's submission queue or the write-ahead
    /// log's group-commit backlog is over its configured cap (see
    /// [`crate::AdmissionConfig`]). The command was **not** enqueued
    /// and had no effect — back off for `retry_after` and resubmit.
    /// Shedding at submit keeps memory bounded under open-loop
    /// overload; the alternative (unbounded queueing) turns a transient
    /// burst into latency collapse and an eventual OOM kill.
    Busy {
        /// Suggested pause before resubmitting.
        retry_after: Duration,
    },
    /// The durability layer failed: a write-ahead-log append, sync,
    /// checkpoint, recovery scan, or catch-up transfer reported an
    /// error. Agreement itself is unaffected, but durable
    /// acknowledgments cannot be given.
    Durability(std::io::Error),
    /// The divergence audit caught this replica's state digest
    /// disagreeing with the majority at an audit round: its state
    /// silently diverged (bit rot, a stray write, a non-deterministic
    /// apply). The replica is **quarantined** — it stops answering
    /// queries and is excluded as a snapshot source — until it rejoins
    /// from a healthy peer's snapshot via the chunked catch-up path.
    Diverged {
        /// The quarantined server.
        server: ServerId,
        /// The audit round whose digest cross-check exposed it.
        round: allconcur_core::Round,
    },
}

/// How an unresolved command failed — the lightweight, copyable record
/// kept per `(origin, seq)` until the client collects it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FailReason {
    OriginDown(ServerId),
    CommandLost { origin: ServerId, seq: u64 },
    Reconfigured,
}

impl From<FailReason> for ServiceError {
    fn from(reason: FailReason) -> Self {
        match reason {
            FailReason::OriginDown(id) => ServiceError::OriginDown(id),
            FailReason::CommandLost { origin, seq } => ServiceError::CommandLost { origin, seq },
            FailReason::Reconfigured => ServiceError::Reconfigured,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rsm(e) => write!(f, "state machine error: {e}"),
            ServiceError::Cluster(e) => write!(f, "cluster error: {e}"),
            ServiceError::OriginDown(id) => {
                write!(f, "server {id} is down; command not submitted")
            }
            ServiceError::CommandLost { origin, seq } => {
                write!(f, "command {seq} via server {origin} lost to its crash")
            }
            ServiceError::Reconfigured => {
                write!(f, "command outstanding across a reconfiguration")
            }
            ServiceError::Timeout { waited } => write!(f, "no response within {waited:?}"),
            ServiceError::Busy { retry_after } => {
                write!(f, "service saturated; command shed, retry after {retry_after:?}")
            }
            ServiceError::Durability(e) => write!(f, "durability error: {e}"),
            ServiceError::Diverged { server, round } => {
                write!(
                    f,
                    "replica {server} diverged at audit round {round}; \
                     quarantined until snapshot catch-up"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Rsm(e) => Some(e),
            ServiceError::Cluster(e) => Some(e),
            ServiceError::Durability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RsmError> for ServiceError {
    fn from(e: RsmError) -> Self {
        ServiceError::Rsm(e)
    }
}

impl From<ClusterError> for ServiceError {
    fn from(e: ClusterError) -> Self {
        match e {
            // Transport-level shed surfaces as the same typed signal as
            // service-level admission control: callers handle one `Busy`.
            ClusterError::Busy { retry_after } => ServiceError::Busy { retry_after },
            other => ServiceError::Cluster(other),
        }
    }
}
