//! [`Service`] — the typed replicated-state-machine engine.
//!
//! A `Service<S>` owns a [`Cluster`] (the whole deployment, simulated
//! or TCP) plus one [`Replica<S>`] per server, and pumps deliveries
//! internally: clients submit *typed* commands and get typed responses
//! back, never touching payload bytes, batches, or `Delivery` values.
//!
//! ```text
//!   submit(origin, cmd) ──► per-origin queue ──► batch ──► A-broadcast
//!                                                              │
//!        CommandHandle ◄── (origin, seq) ◄──────── agreed round │
//!              │                                                ▼
//!        wait(handle) ◄── typed response ◄── Replica::apply_round
//! ```
//!
//! Correlation is by **origin + per-origin sequence**: commands
//! submitted through one server are carried in rounds in submission
//! order (the transports preserve per-origin order, and batches unpack
//! in push order), so the `k`-th command applied from `origin` is the
//! one with sequence `k` — batching-aware, no request ids on the wire.

use crate::error::{FailReason, ServiceError};
use allconcur_cluster::{Cluster, ClusterError};
use allconcur_core::delivery::Delivery;
use allconcur_core::replica::{Codec, Replica, StateMachine};
use allconcur_core::{Round, ServerId};
use allconcur_durability::{
    CatchupSink, CatchupSource, DurabilityConfig, DurabilityStore, MidLogRot, RecoverOutcome,
    Recovered, ScrubReport, TornTail, VirtualDisk, Wal,
};
use allconcur_graph::Digraph;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Commands pending at one origin, already encoded into the round
/// payload's batch framing (length-prefixed requests — the format
/// `allconcur_core::batch` speaks), plus their correlation sequences.
///
/// Encoding happens once, at [`Service::submit`], straight into this
/// buffer: flushing a round is a single copy-freeze of the accumulated
/// bytes instead of a per-command re-pack, and the buffer's capacity is
/// reused round over round.
#[derive(Debug, Default)]
struct PendingBatch {
    buf: Vec<u8>,
    seqs: Vec<u64>,
}

impl PendingBatch {
    fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Freeze the accumulated batch into a round payload and reset for
    /// the next round, keeping both buffers' capacity.
    fn take_payload(&mut self) -> (Bytes, Vec<u64>) {
        let payload =
            if self.buf.is_empty() { Bytes::new() } else { Bytes::copy_from_slice(&self.buf) };
        self.buf.clear();
        (payload, std::mem::take(&mut self.seqs))
    }
}

/// The durable-acknowledgment engine of a [`Service`]: one write-ahead
/// log per server plus the harvested responses withheld until their
/// round can no longer be lost to a whole-cluster power failure.
///
/// A round is *durably acknowledged* once it is below the fsync
/// watermark of **at least one** server's WAL: uniform agreement makes
/// every server's durable log a prefix of the one agreed history, and
/// [`Service::recover`] rebuilds from the longest durable prefix across
/// all disks — so one durable copy is enough for the acknowledgment to
/// survive even a kill-everyone crash.
struct Durability<R> {
    cfg: DurabilityConfig,
    /// Configuration epoch: bumped at every recovery/reconfiguration,
    /// tagged into every WAL frame (rounds restart at zero per epoch).
    epoch: u64,
    /// One WAL per server, indexed by [`ServerId`].
    wals: Vec<Wal>,
    /// Harvested typed responses awaiting durability, per round in
    /// round order.
    pending: VecDeque<WithheldRound<R>>,
}

/// One round's harvested responses withheld until the round is durable:
/// `(round, [(origin, seq, response)])`.
type WithheldRound<R> = (Round, Vec<(ServerId, u64, R)>);

impl<R> Durability<R> {
    /// Highest round durable on at least one server.
    fn durable_tip(&self) -> Round {
        self.wals.iter().map(Wal::durable_rounds).max().unwrap_or(0)
    }
}

/// What [`Service::recover`] reconstructed and how — returned alongside
/// the recovered service so operators (and the nemesis harness) can
/// verify the crash was absorbed as designed.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// The fresh configuration epoch the recovered deployment runs in.
    pub epoch: u64,
    /// Agreed rounds reconstructed from the most advanced durable log.
    pub recovered_rounds: Round,
    /// Torn tail writes found (and trimmed) per server.
    pub torn: Vec<(ServerId, TornTail)>,
    /// Servers whose own log already reached the reference snapshot, so
    /// they caught up from log frames alone — no state copy.
    pub frames_only: Vec<ServerId>,
    /// Servers that needed the reference snapshot streamed (their log
    /// did not cover it: older epoch, torn too far back, or fresh disk).
    pub snapshot_catchup: Vec<ServerId>,
    /// Total bounded chunks streamed across all catch-up transfers.
    pub catchup_chunks: usize,
    /// Servers whose log had **mid-log rot** — a checksum failure on an
    /// acknowledged round that cannot be a torn tail. Their own history
    /// was refused (trimming it would silently unacknowledge durable
    /// rounds); they were rebuilt from the reference server's chunked
    /// catch-up instead.
    pub rotted: Vec<(ServerId, MidLogRot)>,
}

fn dur_err(e: io::Error) -> ServiceError {
    ServiceError::Durability(e)
}

/// Divergence-audit counters of a [`Service`] — the replica-integrity
/// observability surface, mirroring what `LinkStatsSnapshot` exposes at
/// the transport layer ([`Service::integrity_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Audit rounds fully cross-checked (every expected digest arrived
    /// and was compared).
    pub audits: u64,
    /// Audit rounds where at least two replicas' digests disagreed.
    pub divergences: u64,
    /// Replicas quarantined because their digest dissented from a
    /// strict majority.
    pub quarantines: u64,
    /// Quarantined replicas healed back in via snapshot catch-up.
    pub rejoins: u64,
}

/// FNV-1a offset basis / prime for the replica state digest. FNV-1a
/// over the applied `(round, origin, payload)` tuples is deterministic
/// across replicas and platforms, and byte-at-a-time folding keeps the
/// apply path allocation-free.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Default divergence-audit cadence in rounds
/// ([`Service::set_audit_interval`]).
const DEFAULT_AUDIT_INTERVAL: u64 = 32;

/// Fold one applied `(round, origin, payload)` tuple into a replica's
/// incremental state digest. Every replica folds the same agreed
/// tuples in the same order, so equal digests ⇔ equal applied history
/// (up to hash collision) — without ever serializing the state.
// lint:hot_path — folded on every applied message of every round
fn fold_digest(mut digest: u64, round: Round, origin: ServerId, payload: &[u8]) -> u64 {
    for &byte in round.to_le_bytes().iter().chain(origin.to_le_bytes().iter()) {
        digest = (digest ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    for &byte in payload {
        digest = (digest ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    digest
}

/// A wait budget that only touches the wall clock on wall-clock
/// backends.
///
/// On the sim backend every `pump` is event-driven: the transport
/// advances virtual time and returns `false` the moment its event
/// queue drains, so `wait`/`sync` loops terminate without ever reading
/// `Instant::now()`. Keeping the wall clock out of sim runs means a
/// seeded replay (nemesis, golden transcripts) can never be perturbed
/// by host scheduling — the timeout argument still bounds each pump's
/// virtual-time budget, and a zero timeout still times out immediately.
enum Deadline {
    /// TCP and other wall-clock backends: a real deadline.
    Wall(Instant),
    /// Sim backend: no wall deadline; each iteration re-offers the full
    /// timeout as the virtual-time pump budget.
    Virtual(Duration),
}

impl Deadline {
    /// Budget for a backend: virtual for sim, wall otherwise.
    fn start(backend: &str, timeout: Duration) -> Self {
        if backend == "sim" {
            Deadline::Virtual(timeout)
        } else {
            // `Instant::now() + timeout`, surviving `Duration::MAX`.
            let now = Instant::now();
            Deadline::Wall(
                now.checked_add(timeout)
                    .unwrap_or_else(|| now + Duration::from_secs(60 * 60 * 24 * 365)),
            )
        }
    }

    /// Time left to offer the next pump; `zero` means give up now.
    fn remaining(&self) -> Duration {
        match self {
            Deadline::Wall(at) => at.saturating_duration_since(Instant::now()),
            Deadline::Virtual(timeout) => *timeout,
        }
    }
}

/// Admission-control policy of a [`Service`]: when to shed a
/// [`Service::submit`] with [`ServiceError::Busy`] instead of queueing
/// it.
///
/// The service stays healthy under open-loop overload by bounding the
/// two places submissions can pile up: the per-origin pending batch
/// (commands encoded but not yet carried by a round) and the
/// write-ahead log's group-commit backlog (rounds appended but not yet
/// fsynced). A shed command has **no effect** — the client backs off
/// [`AdmissionConfig::retry_after`] and resubmits. Shedding only
/// engages once the round pipeline is saturated, so closed-loop
/// clients under the knee never see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Shed once an origin's pending batch holds this many commands
    /// while the pipeline window is full (default 8192 — roughly two
    /// deep rounds of batched commands).
    pub max_queued_per_origin: usize,
    /// With durability on: shed while any server's WAL has more than
    /// this many appended-but-unsynced rounds (default 64). A disk
    /// that cannot keep up must slow admissions, not grow the withheld
    /// acknowledgment queue without bound.
    pub max_wal_backlog_rounds: u64,
    /// Suggested client back-off reported in [`ServiceError::Busy`]
    /// (default 1 ms).
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queued_per_origin: 8192,
            max_wal_backlog_rounds: 64,
            retry_after: Duration::from_millis(1),
        }
    }
}

/// Receipt for one [`Service::submit`] call, resolving to the typed
/// response of *this* command once its round delivers.
///
/// Redeem it with [`Service::wait`] (blocking) or
/// [`Service::try_response`] (non-blocking). The phantom type parameter
/// carries the response type, so redeeming a handle against a service
/// of a different state machine is a compile error.
pub struct CommandHandle<R> {
    origin: ServerId,
    seq: u64,
    _resp: PhantomData<fn() -> R>,
}

impl<R> CommandHandle<R> {
    /// The server the command was submitted through.
    pub fn origin(&self) -> ServerId {
        self.origin
    }

    /// Per-origin command sequence number (submission order through
    /// [`CommandHandle::origin`]).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl<R> Clone for CommandHandle<R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<R> Copy for CommandHandle<R> {}

impl<R> std::fmt::Debug for CommandHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandHandle")
            .field("origin", &self.origin)
            .field("seq", &self.seq)
            .finish()
    }
}

/// A replicated state machine service: every server of the wrapped
/// [`Cluster`] runs a [`Replica<S>`], commands go in typed, responses
/// come out typed.
///
/// Reads come in two consistencies, matching §1's discussion:
///
/// * [`Service::query_local`] — read any server's replica directly; no
///   coordination, stale by at most one round ("a server's view of the
///   shared state cannot fall behind more than one round");
/// * [`Service::query_linearizable`] — the query rides atomic broadcast
///   as a command and is answered at the agreed point.
pub struct Service<S: StateMachine> {
    cluster: Cluster,
    codec: S::Codec,
    replicas: Vec<Replica<S>>,
    /// Per-origin encoded-but-unflushed commands, in submission order.
    queues: Vec<PendingBatch>,
    /// Per-origin in-flight correlation: for each flushed round, the
    /// sequence numbers packed into that origin's payload.
    flights: Vec<VecDeque<(Round, Vec<u64>)>>,
    /// Per-origin next command sequence number. Monotone across
    /// reconfigurations so correlation keys never collide.
    next_seq: Vec<u64>,
    /// Rounds flushed (submitted to every live origin) this epoch.
    flushed: u64,
    /// Rounds whose responses were harvested (from the first replica to
    /// apply them) this epoch.
    harvested: u64,
    /// How many rounds may be in flight before [`Service::submit`]ted
    /// commands wait in the queue (≥ 1).
    pipeline: u64,
    /// When to shed submissions with [`ServiceError::Busy`] instead of
    /// queueing them (see [`AdmissionConfig`]).
    admission: AdmissionConfig,
    /// Submissions shed by admission control since construction.
    shed: u64,
    /// Per-origin resolved responses awaiting redemption, ascending by
    /// sequence (responses resolve in per-origin submission order, so a
    /// ring buffer + binary search beats a map: redemption is usually a
    /// front pop). Unclaimed responses accumulate, as they did under the
    /// previous map representation — redeem or drop handles promptly.
    resolved: Vec<VecDeque<(u64, S::Response)>>,
    failed: BTreeMap<(ServerId, u64), FailReason>,
    /// Per-round decoded commands, shared across replicas: the first
    /// delivery of a round decodes it once
    /// (`Replica::decode_round`), every later replica applies the
    /// cached commands (`Replica::apply_decoded`) instead of
    /// re-decoding the same agreed bytes n times. Bounded by
    /// [`Service::decoded_cache_rounds`]; a replica straggling past the
    /// window re-decodes — correctness is unaffected (codecs are
    /// deterministic).
    decoded: BTreeMap<Round, Vec<(ServerId, S::Command)>>,
    /// When enabled ([`Service::record_deliveries`]), every delivery
    /// ingested is appended here in ingestion order — the raw per-server
    /// A-delivery streams an external property checker (the nemesis
    /// harness) verifies the atomic-broadcast properties against.
    delivery_log: Option<Vec<(ServerId, Delivery)>>,
    /// Durable acknowledgment, when constructed with
    /// [`Service::with_durability`] / [`Service::recover`]: per-server
    /// WALs plus responses withheld until their round is fsynced
    /// somewhere. `None` keeps the original memory-only semantics.
    durability: Option<Durability<S::Response>>,
    /// Per-replica incremental FNV-1a state digest over applied
    /// `(round, origin, payload)` tuples — the divergence-audit input.
    digests: Vec<u64>,
    /// Published digests awaiting cross-check, per server:
    /// `(audit round, digest)` ascending by round.
    audit_log: Vec<VecDeque<(Round, u64)>>,
    /// First audit round each server is expected to vote on (moves
    /// past the snapshot point when a server rejoins after quarantine:
    /// it cannot vouch for rounds it restored rather than applied).
    audit_floor: Vec<Round>,
    /// Digest cross-check cadence in rounds; 0 disables the audit.
    audit_interval: u64,
    /// `Some(audit round)` while a server is quarantined: the digest
    /// cross-check at that round proved its replica diverged, so it
    /// answers no queries ([`ServiceError::Diverged`]) until healed.
    quarantined: Vec<Option<Round>>,
    /// After a rejoin, rounds at or below this are already covered by
    /// the rejoin snapshot: logged but not re-applied.
    resume_after: Vec<Option<Round>>,
    /// Divergence-audit counters.
    integrity: IntegrityStats,
}

/// Minimum rounds of decoded commands kept in [`Service`]'s share cache;
/// the effective bound scales with the pipeline depth (see
/// [`Service::decoded_cache_rounds`]).
const DECODED_CACHE_MIN_ROUNDS: usize = 16;

impl<S: StateMachine> Service<S> {
    /// Start a replicated `initial` state on `cluster`: every server's
    /// replica is seeded from `initial.snapshot()` — the same hand-off a
    /// joining server uses, so the snapshot path is exercised from round
    /// zero.
    pub fn new(cluster: Cluster, initial: &S) -> Result<Self, ServiceError> {
        let n = cluster.n();
        let snap = initial.snapshot();
        let replicas =
            (0..n).map(|_| Replica::from_snapshot(&snap)).collect::<Result<Vec<_>, _>>()?;
        Ok(Service {
            cluster,
            codec: S::Codec::default(),
            replicas,
            queues: (0..n).map(|_| PendingBatch::default()).collect(),
            flights: vec![VecDeque::new(); n],
            next_seq: vec![0; n],
            flushed: 0,
            harvested: 0,
            pipeline: 1,
            admission: AdmissionConfig::default(),
            shed: 0,
            resolved: (0..n).map(|_| VecDeque::new()).collect(),
            failed: BTreeMap::new(),
            decoded: BTreeMap::new(),
            delivery_log: None,
            durability: None,
            digests: vec![FNV_OFFSET; n],
            audit_log: vec![VecDeque::new(); n],
            audit_floor: vec![0; n],
            audit_interval: DEFAULT_AUDIT_INTERVAL,
            quarantined: vec![None; n],
            resume_after: vec![None; n],
            integrity: IntegrityStats::default(),
        })
    }

    /// Start a replicated `initial` state with durable acknowledgment:
    /// one write-ahead log per server on the matching disk of `store`,
    /// group-committed per `cfg`. Every agreed round is logged *before*
    /// it is applied, and a command's typed response is withheld until
    /// its round is fsynced on at least one server — after which it
    /// survives even a whole-cluster power failure (see
    /// [`Service::recover`]).
    pub fn with_durability(
        cluster: Cluster,
        initial: &S,
        store: DurabilityStore,
        cfg: DurabilityConfig,
    ) -> Result<Self, ServiceError> {
        let n = cluster.n();
        if store.len() != n {
            return Err(dur_err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("store has {} disks for {n} servers", store.len()),
            )));
        }
        let mut service = Service::new(cluster, initial)?;
        let snap = initial.snapshot();
        let mut wals = Vec::with_capacity(n);
        for disk in store.into_disks() {
            wals.push(Wal::create(disk, cfg.clone(), &snap).map_err(dur_err)?);
        }
        service.durability = Some(Durability { cfg, epoch: 0, wals, pending: VecDeque::new() });
        Ok(service)
    }

    /// Rebuild a deployment from its per-server disks after a crash —
    /// even of every server at once.
    ///
    /// Each disk is recovered independently ([`Wal::recover`]): newest
    /// valid snapshot plus the longest checksummed contiguous log
    /// suffix, torn tail writes trimmed. The server with the highest
    /// epoch and most durable rounds defines the authoritative history
    /// (uniform agreement makes every durable log a prefix of it); all
    /// other servers catch up **incrementally** — a server whose own
    /// log reaches the reference snapshot point streams only the log
    /// frames it lacks, everyone else streams `snapshot + suffix` — in
    /// bounded chunks ([`DurabilityConfig::catchup_chunk_bytes`]).
    /// Finally every WAL starts a fresh epoch at the settled state, and
    /// the returned service agrees rounds from zero again.
    ///
    /// `initial` is only consulted for never-initialised disks (a
    /// first-boot recovery); `cluster` must be a freshly built
    /// deployment of the same `n` as `store`.
    pub fn recover(
        cluster: Cluster,
        initial: &S,
        store: DurabilityStore,
        cfg: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let n = cluster.n();
        if store.len() != n {
            return Err(dur_err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("store has {} disks for {n} servers", store.len()),
            )));
        }
        let initial_snap = initial.snapshot();
        let mut report = RecoveryReport::default();
        let mut wals = Vec::with_capacity(n);
        let mut recs = Vec::with_capacity(n);
        for (s, disk) in store.into_disks().into_iter().enumerate() {
            match Wal::recover_or_rot(disk, cfg.clone()).map_err(dur_err)? {
                RecoverOutcome::Intact(wal, rec) => {
                    wals.push(wal);
                    recs.push(rec);
                }
                RecoverOutcome::Rotted { disk, rot } => {
                    // Mid-log rot: an *acknowledged* round on this disk
                    // is damaged. Trimming it (the torn-tail action)
                    // would silently unacknowledge durable history, so
                    // this server's log is refused wholesale — it is
                    // treated as a fresh disk and rebuilt below from
                    // the reference server's chunked catch-up. Its
                    // rotted files are swept when the new epoch begins.
                    report.rotted.push((s as ServerId, rot));
                    wals.push(Wal::create(disk, cfg.clone(), &initial_snap).map_err(dur_err)?);
                    recs.push(Recovered {
                        epoch: 0,
                        snapshot: None,
                        snapshot_covers: 0,
                        suffix: Vec::new(),
                        torn: None,
                    });
                }
            }
        }
        for (s, rec) in recs.iter().enumerate() {
            if let Some(torn) = rec.torn.clone() {
                report.torn.push((s as ServerId, torn));
            }
        }

        // The authoritative durable history: highest epoch, then most
        // durable rounds. Every other durable log is a prefix of it.
        let top_epoch = recs.iter().map(|r| r.epoch).max().unwrap_or(0);
        let reference = (0..n)
            .filter(|&s| recs[s].epoch == top_epoch)
            .max_by_key(|&s| recs[s].tip())
            .expect("n >= 1");
        let base = recs[reference].snapshot_covers;
        let tip = recs[reference].tip();
        report.recovered_rounds = tip;
        let reference_snapshot: &[u8] = match &recs[reference].snapshot {
            Some(bytes) => bytes,
            None => &initial_snap, // never-initialised disks: first boot
        };

        // Rebuild every server's state at `tip` via the chunked
        // catch-up protocol, transferring only what its own log does
        // not cover.
        let mut states: Vec<Bytes> = Vec::with_capacity(n);
        for s in 0..n {
            let own_tip = recs[s].tip();
            let frames_only = s == reference
                || (recs[s].epoch == top_epoch && recs[s].snapshot.is_some() && own_tip >= base);
            let (snap, from, suffix): (Option<&[u8]>, Round, &[Delivery]) = if frames_only {
                // The server's own log reaches the reference snapshot
                // point: stream just the rounds past its tip.
                (None, own_tip, &recs[reference].suffix[(own_tip - base) as usize..])
            } else {
                report.snapshot_catchup.push(s as ServerId);
                (Some(reference_snapshot), base, &recs[reference].suffix[..])
            };
            if frames_only && s != reference {
                report.frames_only.push(s as ServerId);
            }
            let mut sink = CatchupSink::new();
            for chunk in CatchupSource::new(snap, from, suffix, cfg.catchup_chunk_bytes) {
                report.catchup_chunks += 1;
                sink.accept(&chunk).map_err(dur_err)?;
            }
            let payload = sink.finish().map_err(dur_err)?;

            let mut replica: Replica<S> = if frames_only {
                // Start from the server's own durable state...
                let own_snapshot: &[u8] = match &recs[s].snapshot {
                    Some(bytes) => bytes,
                    None => &initial_snap,
                };
                let mut replica = Replica::from_snapshot(own_snapshot)?;
                for delivery in &recs[s].suffix {
                    replica.apply_round(delivery.round, &delivery.messages, true)?;
                }
                replica
            } else {
                let snapshot = payload.snapshot.as_deref().unwrap_or(&initial_snap);
                Replica::from_snapshot(snapshot)?
            };
            // ...then replay the streamed suffix on top.
            for delivery in &payload.suffix {
                replica.apply_round(delivery.round, &delivery.messages, true)?;
            }
            states.push(replica.snapshot());
        }

        // Settle the disks: fresh epoch, fresh snapshot, logs truncated.
        let new_epoch = top_epoch + 1;
        report.epoch = new_epoch;
        for (s, wal) in wals.iter_mut().enumerate() {
            wal.begin_epoch(new_epoch, &states[s]).map_err(dur_err)?;
        }

        let replicas = states
            .iter()
            .map(|snap| Replica::from_snapshot(snap))
            .collect::<Result<Vec<_>, _>>()?;
        let service = Service {
            cluster,
            codec: S::Codec::default(),
            replicas,
            queues: (0..n).map(|_| PendingBatch::default()).collect(),
            flights: vec![VecDeque::new(); n],
            next_seq: vec![0; n],
            flushed: 0,
            harvested: 0,
            pipeline: 1,
            admission: AdmissionConfig::default(),
            shed: 0,
            resolved: (0..n).map(|_| VecDeque::new()).collect(),
            failed: BTreeMap::new(),
            decoded: BTreeMap::new(),
            delivery_log: None,
            durability: Some(Durability { cfg, epoch: new_epoch, wals, pending: VecDeque::new() }),
            digests: vec![FNV_OFFSET; n],
            audit_log: vec![VecDeque::new(); n],
            audit_floor: vec![0; n],
            audit_interval: DEFAULT_AUDIT_INTERVAL,
            quarantined: vec![None; n],
            resume_after: vec![None; n],
            integrity: IntegrityStats::default(),
        };
        Ok((service, report))
    }

    /// Record every ingested delivery for external inspection (off by
    /// default — recording clones each delivery's refcounted payload
    /// list). The log survives [`Service::reconfigure`]; a consumer
    /// tracking configuration epochs should [`Service::take_delivery_log`]
    /// before reconfiguring, since rounds restart at zero afterwards.
    pub fn record_deliveries(&mut self, on: bool) {
        match (on, self.delivery_log.is_some()) {
            (true, false) => self.delivery_log = Some(Vec::new()),
            (false, true) => self.delivery_log = None,
            _ => {}
        }
    }

    /// Drain the recorded `(server, delivery)` stream (ingestion order;
    /// per-server subsequences are exactly each server's A-delivery
    /// order). Empty unless [`Service::record_deliveries`] is enabled.
    pub fn take_delivery_log(&mut self) -> Vec<(ServerId, Delivery)> {
        self.delivery_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Allow up to `depth` rounds in flight before further submissions
    /// queue (default 1). Deeper pipelines trade per-command latency for
    /// throughput — Fig. 8's rate/latency trade-off.
    ///
    /// The depth maps straight onto the transport's round-pipelining
    /// window: the deployment actually runs `depth` agreement rounds
    /// concurrently, instead of the service merely queueing ahead of
    /// one-round-at-a-time agreement. (Best-effort on the transport —
    /// a shut-down cluster keeps the service-side depth only.)
    pub fn set_pipeline(&mut self, depth: usize) {
        self.pipeline = depth.max(1) as u64;
        let _ = self.cluster.set_round_window(depth.max(1));
    }

    /// Rounds of decoded commands worth caching: the pipeline depth
    /// (every in-flight round can have deliveries outstanding) plus the
    /// same again for replica skew within rounds, floored at
    /// [`DECODED_CACHE_MIN_ROUNDS`]. Deep windows on TCP genuinely keep
    /// `depth` rounds of deliveries in flight, so a fixed constant would
    /// silently degrade to per-replica re-decoding.
    fn decoded_cache_rounds(&self) -> usize {
        DECODED_CACHE_MIN_ROUNDS.max(2 * self.pipeline as usize)
    }

    /// Rounds currently in flight: flushed to the transport but not yet
    /// harvested. Submissions keep flowing while this is below the
    /// pipeline depth.
    pub fn in_flight_rounds(&self) -> u64 {
        self.flushed - self.harvested
    }

    /// Replace the admission-control policy (defaults:
    /// [`AdmissionConfig::default`]).
    pub fn set_admission(&mut self, cfg: AdmissionConfig) {
        self.admission = cfg;
    }

    /// The active admission-control policy.
    pub fn admission(&self) -> &AdmissionConfig {
        &self.admission
    }

    /// Submissions shed with [`ServiceError::Busy`] since construction
    /// — the no-silent-shed counter: every refused command is visible
    /// here (and was reported typed to its caller).
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Flush queued commands into the next round now, if the pipeline
    /// window allows — the explicit form of the flush [`Service::pump`]
    /// performs, for callers that interleave submission batches with
    /// round boundaries themselves (benchmarks, load generators).
    pub fn flush(&mut self) -> Result<(), ServiceError> {
        self.flush_if_ready()
    }

    /// Number of configured servers.
    pub fn n(&self) -> usize {
        self.cluster.n()
    }

    /// Backend name of the wrapped cluster (`"sim"` or `"tcp"`).
    pub fn backend(&self) -> &'static str {
        self.cluster.backend()
    }

    /// Servers currently live.
    pub fn live_servers(&self) -> Vec<ServerId> {
        self.cluster.live_servers()
    }

    /// The wrapped cluster, for instrumentation (e.g. the simulator's
    /// clock and traffic counters).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the wrapped cluster. Driving rounds manually
    /// while commands are in flight voids the correlation warranty.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Server `at`'s replica (bounded staleness: at most one round
    /// behind the freshest agreed state, §1).
    pub fn replica(&self, at: ServerId) -> Result<&Replica<S>, ServiceError> {
        self.replicas.get(at as usize).ok_or(ServiceError::Cluster(ClusterError::UnknownServer(at)))
    }

    /// Local read of server `at`'s state — no coordination, stale by at
    /// most one round. Drive the service ([`Service::pump`],
    /// [`Service::sync`], [`Service::wait`]) to keep replicas current.
    ///
    /// A quarantined replica answers [`ServiceError::Diverged`] instead
    /// of serving state the divergence audit proved wrong.
    pub fn query_local(&self, at: ServerId) -> Result<&S, ServiceError> {
        let replica = self.replica(at)?;
        if let Some(round) = self.quarantined_at(at) {
            return Err(ServiceError::Diverged { server: at, round });
        }
        Ok(replica.query())
    }

    /// Submit a typed command through `origin`. The command is encoded,
    /// queued, and packed with any other commands pending at `origin`
    /// into its next round payload (§5's request batching). The handle
    /// resolves with the command's typed response once its round
    /// delivers.
    pub fn submit(
        &mut self,
        origin: ServerId,
        command: &S::Command,
    ) -> Result<CommandHandle<S::Response>, ServiceError> {
        if (origin as usize) >= self.cluster.n() {
            return Err(ServiceError::Cluster(ClusterError::UnknownServer(origin)));
        }
        if !self.cluster.is_live(origin) {
            return Err(ServiceError::OriginDown(origin));
        }
        // Admission control: once the round pipeline is saturated, a
        // full pending batch or a lagging group commit sheds the
        // command instead of queueing it unboundedly. The checks run
        // before encoding, so a shed command touches no buffer.
        let pipeline_full = self.in_flight_rounds() >= self.pipeline;
        let origin_full =
            self.queues[origin as usize].seqs.len() >= self.admission.max_queued_per_origin;
        let wal_behind = self.durability.as_ref().is_some_and(|d| {
            d.wals.iter().any(|w| w.unsynced_rounds() > self.admission.max_wal_backlog_rounds)
        });
        if (pipeline_full && origin_full) || wal_behind {
            self.shed += 1;
            return Err(ServiceError::Busy { retry_after: self.admission.retry_after });
        }
        // Encode straight into the origin's pending batch buffer under
        // the batch framing (u32-le length prefix, backfilled after the
        // codec has written), skipping the intermediate `Bytes`.
        let queue = &mut self.queues[origin as usize];
        let start = queue.buf.len();
        queue.buf.extend_from_slice(&[0u8; 4]);
        self.codec.encode_into(command, &mut queue.buf);
        let len = (queue.buf.len() - start - 4) as u32;
        queue.buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
        let seq = self.next_seq[origin as usize];
        self.next_seq[origin as usize] += 1;
        queue.seqs.push(seq);
        Ok(CommandHandle { origin, seq, _resp: PhantomData })
    }

    /// Submit and wait: the typed response once the command's round is
    /// agreed and applied.
    pub fn execute(
        &mut self,
        origin: ServerId,
        command: &S::Command,
        timeout: Duration,
    ) -> Result<S::Response, ServiceError> {
        let handle = self.submit(origin, command)?;
        self.wait(&handle, timeout)
    }

    /// Linearizable read: the query rides atomic broadcast like any
    /// write and is answered at the agreed point (§1's strongly
    /// consistent read). Alias of [`Service::execute`] named for call
    /// sites where the command is a pure read.
    pub fn query_linearizable(
        &mut self,
        origin: ServerId,
        query: &S::Command,
        timeout: Duration,
    ) -> Result<S::Response, ServiceError> {
        self.execute(origin, query, timeout)
    }

    /// Block until `handle`'s command is agreed and applied, and return
    /// its typed response. Each handle redeems once; waiting again (or
    /// after [`Service::try_response`] returned the value) times out.
    pub fn wait(
        &mut self,
        handle: &CommandHandle<S::Response>,
        timeout: Duration,
    ) -> Result<S::Response, ServiceError> {
        let key = (handle.origin, handle.seq);
        // Fast path: already agreed and applied — no clock reads.
        if let Some(response) = self.take_resolved(handle.origin, handle.seq) {
            return Ok(response);
        }
        let deadline = Deadline::start(self.cluster.backend(), timeout);
        loop {
            if let Some(response) = self.take_resolved(handle.origin, handle.seq) {
                return Ok(response);
            }
            if let Some(reason) = self.failed.remove(&key) {
                return Err(reason.into());
            }
            // Commit wait: the response is harvested but withheld for
            // durability — force the group commit early rather than
            // stall a blocked client behind the fsync batching window.
            if self.durable_ack_withheld(handle.origin, handle.seq) {
                self.flush_durability()?;
                if let Some(response) = self.take_resolved(handle.origin, handle.seq) {
                    return Ok(response);
                }
                // Not released (disk-slow fault everywhere): fall
                // through and keep pumping until the budget runs out.
            }
            let remaining = deadline.remaining();
            if remaining.is_zero() {
                return Err(ServiceError::Timeout { waited: timeout });
            }
            if !self.pump(remaining)? {
                // Nothing arrived in the whole window. If the origin is
                // dead and the command never reached the transport, it
                // can no longer make progress — report that. A command
                // already *in flight* may still be carried (crash after
                // propagation), so its outcome is genuinely unknown:
                // report a timeout, not a resubmittable failure.
                let in_flight = self.flights[handle.origin as usize]
                    .iter()
                    .any(|(_, seqs)| seqs.contains(&handle.seq));
                if !self.cluster.is_live(handle.origin) && !in_flight {
                    return Err(ServiceError::OriginDown(handle.origin));
                }
                return Err(ServiceError::Timeout { waited: timeout });
            }
        }
    }

    /// Non-blocking redeem: `Some(response)` if `handle`'s command has
    /// already been applied. Deliveries the transport has ready are
    /// drained first (without waiting), so a response that has already
    /// been agreed is found even if nothing else pumps the service.
    pub fn try_response(
        &mut self,
        handle: &CommandHandle<S::Response>,
    ) -> Result<Option<S::Response>, ServiceError> {
        self.fail_dead_queued();
        self.flush_if_ready()?;
        while let Some((at, delivery)) = self.cluster.try_next_delivery()? {
            self.ingest(at, delivery)?;
        }
        let key = (handle.origin, handle.seq);
        if let Some(reason) = self.failed.remove(&key) {
            return Err(reason.into());
        }
        Ok(self.take_resolved(handle.origin, handle.seq))
    }

    /// One engine step: flush queued commands into a round if the
    /// pipeline window allows, then wait up to `timeout` for the next
    /// delivery and apply it. Returns whether a delivery was applied.
    // lint:hot_path — the RSM engine step, called once per delivery
    pub fn pump(&mut self, timeout: Duration) -> Result<bool, ServiceError> {
        self.fail_dead_queued();
        self.flush_if_ready()?;
        match self.cluster.next_delivery(timeout) {
            Ok((at, delivery)) => {
                self.ingest(at, delivery)?;
                Ok(true)
            }
            Err(ClusterError::Timeout { .. }) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Drive until quiescent: every queued command flushed, every
    /// in-flight round agreed, and every live replica caught up on all
    /// flushed rounds. The barrier to call before comparing replicas or
    /// reconfiguring.
    pub fn sync(&mut self, timeout: Duration) -> Result<(), ServiceError> {
        let deadline = Deadline::start(self.cluster.backend(), timeout);
        loop {
            self.fail_dead_queued();
            self.flush_if_ready()?;
            // A barrier settles durability too: force the group commit
            // so withheld acknowledgments release (no-op when every
            // pending round is already durable somewhere).
            if self.durability.as_ref().is_some_and(|d| !d.pending.is_empty()) {
                self.flush_durability()?;
            }
            if self.is_quiescent() {
                return Ok(());
            }
            let remaining = deadline.remaining();
            if remaining.is_zero() {
                return Err(ServiceError::Timeout { waited: timeout });
            }
            if !self.pump(remaining)? && !self.is_quiescent() {
                return Err(ServiceError::Timeout { waited: timeout });
            }
        }
    }

    /// Fail-stop `id` right now. Its queued-but-unflushed commands fail
    /// with [`ServiceError::OriginDown`]; commands already handed to the
    /// transport either ride their round (crash after propagation) or
    /// fail with [`ServiceError::CommandLost`] (round agreed without
    /// the origin's message).
    pub fn crash(&mut self, id: ServerId) -> Result<(), ServiceError> {
        self.cluster.crash(id)?;
        self.fail_dead_queued();
        Ok(())
    }

    /// Inject a (possibly false) suspicion at `at` against `suspected`.
    pub fn suspect(&mut self, at: ServerId, suspected: ServerId) -> Result<(), ServiceError> {
        self.cluster.suspect(at, suspected)?;
        Ok(())
    }

    /// Move the deployment to a fresh overlay (§3's agreed
    /// reconfiguration), carrying the replicated state across via
    /// snapshot: outstanding work is settled ([`Service::sync`]), the
    /// most advanced live replica is snapshotted, and every server of
    /// the new configuration — surviving or joining — restores from
    /// that snapshot, so joiners catch up without replaying history.
    /// Rounds and correlation restart from zero on the new overlay.
    pub fn reconfigure(&mut self, graph: Digraph, timeout: Duration) -> Result<(), ServiceError> {
        self.sync(timeout)?;
        // Never seed the new configuration from a quarantined replica.
        let source = self
            .cluster
            .live_servers()
            .into_iter()
            .find(|&id| self.quarantined[id as usize].is_none())
            .ok_or(ServiceError::Cluster(ClusterError::ShutDown))?;
        let snap = self.replicas[source as usize].snapshot();
        self.cluster.reconfigure(graph)?;
        let n = self.cluster.n();
        if let Some(d) = &self.durability {
            if d.wals.len() != n {
                return Err(dur_err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!(
                        "reconfiguring {} durable servers to {n}: provision disks and recover \
                         instead (membership size changes need one disk per server)",
                        d.wals.len()
                    ),
                )));
            }
            // Rejoining servers receive the settled state through the
            // chunked catch-up protocol — bounded chunks, one sink per
            // server — instead of one whole-snapshot hand-off.
            let chunk_bytes = d.cfg.catchup_chunk_bytes;
            let chunks: Vec<Vec<u8>> =
                CatchupSource::new(Some(&snap), self.harvested, &[], chunk_bytes).collect();
            let mut replicas = Vec::with_capacity(n);
            for _ in 0..n {
                let mut sink = CatchupSink::new();
                for chunk in &chunks {
                    sink.accept(chunk).map_err(dur_err)?;
                }
                let payload = sink.finish().map_err(dur_err)?;
                let state = payload.snapshot.unwrap_or_default();
                replicas.push(Replica::from_snapshot(&state)?);
            }
            self.replicas = replicas;
        } else {
            self.replicas =
                (0..n).map(|_| Replica::from_snapshot(&snap)).collect::<Result<Vec<_>, _>>()?;
        }
        // Settle every WAL at the new configuration: fresh epoch, fresh
        // snapshot of the agreed state, old segments truncated. Rounds
        // restart at zero on disk exactly as they do in flight.
        if let Some(d) = self.durability.as_mut() {
            let new_epoch = d.epoch + 1;
            for wal in &mut d.wals {
                wal.begin_epoch(new_epoch, &snap).map_err(dur_err)?;
            }
            d.epoch = new_epoch;
        }
        // Defensive: anything still unflushed or in flight (sync can
        // only leave residue behind a dead origin) fails typed.
        for origin in 0..self.queues.len() {
            self.queues[origin].buf.clear();
            for seq in std::mem::take(&mut self.queues[origin].seqs) {
                self.failed.insert((origin as ServerId, seq), FailReason::Reconfigured);
            }
            for (_, seqs) in std::mem::take(&mut self.flights[origin]) {
                for seq in seqs {
                    self.failed.insert((origin as ServerId, seq), FailReason::Reconfigured);
                }
            }
        }
        self.queues = (0..n).map(|_| PendingBatch::default()).collect();
        self.flights = vec![VecDeque::new(); n];
        // Sequence numbers restart above every previously issued number
        // so old unclaimed correlation keys cannot collide with new ones
        // — even for server ids that leave and later reappear across
        // several reconfigurations.
        let floor = self.next_seq.iter().copied().max().unwrap_or(0);
        self.next_seq = vec![floor; n];
        // Unclaimed responses stay redeemable (sequence floors keep old
        // and new correlation keys disjoint) — grow for the new n but
        // never shrink: a shrinking reconfiguration must not drop
        // resolved responses of removed origins.
        while self.resolved.len() < n {
            self.resolved.push(VecDeque::new());
        }
        self.flushed = 0;
        self.harvested = 0;
        // Rounds restart from zero on the new overlay: cached decodes of
        // old-configuration rounds must not leak into the new numbering.
        self.decoded.clear();
        // Every replica of the new configuration restored from the same
        // settled snapshot: digests and audit state restart with the new
        // round numbering, and any quarantine is healed by the restore.
        self.digests = vec![FNV_OFFSET; n];
        self.audit_log = vec![VecDeque::new(); n];
        self.audit_floor = vec![0; n];
        self.quarantined = vec![None; n];
        self.resume_after = vec![None; n];
        Ok(())
    }

    /// Snapshot of the most advanced live replica's state. Quarantined
    /// replicas are never snapshot sources — their state is exactly
    /// what the divergence audit refused to trust.
    pub fn snapshot(&self) -> Result<Bytes, ServiceError> {
        let best = self
            .cluster
            .live_servers()
            .into_iter()
            .filter(|&id| self.quarantined[id as usize].is_none())
            .max_by_key(|&id| self.replicas[id as usize].applied_rounds())
            .ok_or(ServiceError::Cluster(ClusterError::ShutDown))?;
        Ok(self.replicas[best as usize].snapshot())
    }

    /// Graceful shutdown of the deployment.
    pub fn shutdown(self) -> Result<(), ServiceError> {
        self.cluster.shutdown()?;
        Ok(())
    }

    // ---- integrity surface ------------------------------------------------

    /// Set the divergence-audit cadence: every `interval` rounds each
    /// replica publishes its incremental state digest, and once every
    /// expected replica's digest for an audit round is in they are
    /// cross-checked — a replica dissenting from a strict majority is
    /// quarantined ([`ServiceError::Diverged`]) and later healed back
    /// in via snapshot catch-up. `0` disables the audit (default: 32).
    pub fn set_audit_interval(&mut self, interval: u64) {
        self.audit_interval = interval;
    }

    /// The active divergence-audit cadence in rounds (0 = audits off).
    pub fn audit_interval(&self) -> u64 {
        self.audit_interval
    }

    /// Divergence-audit counters since construction.
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.integrity
    }

    /// `Some(audit round)` while server `id`'s replica is quarantined.
    pub fn quarantined_at(&self, id: ServerId) -> Option<Round> {
        self.quarantined.get(id as usize).copied().flatten()
    }

    /// Fault injection: silently corrupt server `at`'s replica by
    /// applying `command` **outside** agreement — state no agreed round
    /// carried, exactly what bit rot or a non-deterministic apply would
    /// produce. The corruption stays invisible (local queries answer
    /// from the poisoned state) until the next digest cross-check
    /// exposes and quarantines the replica. Test/nemesis surface.
    pub fn poison_replica(
        &mut self,
        at: ServerId,
        command: &S::Command,
    ) -> Result<(), ServiceError> {
        if (at as usize) >= self.cluster.n() {
            return Err(ServiceError::Cluster(ClusterError::UnknownServer(at)));
        }
        // Perturb state *and* digest, as a genuinely corrupt apply
        // would: the digest now attests to history no other replica
        // applied.
        let bytes = self.codec.encode(command);
        let round = self.replicas[at as usize].last_round().map_or(0, |r| r + 1);
        self.digests[at as usize] = fold_digest(self.digests[at as usize], round, at, &bytes);
        self.replicas[at as usize].apply_unchecked(at, command.clone());
        Ok(())
    }

    // ---- durability surface -----------------------------------------------

    /// The active durability policy, when durable acknowledgment is on.
    pub fn durability_config(&self) -> Option<&DurabilityConfig> {
        self.durability.as_ref().map(|d| &d.cfg)
    }

    /// Current configuration epoch of the durable logs (bumped at every
    /// recovery and reconfiguration), when durability is on.
    pub fn durability_epoch(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.epoch)
    }

    /// Highest round durable on at least one server — the point a
    /// whole-cluster crash cannot roll acknowledgments behind. `None`
    /// without durability.
    pub fn durable_rounds(&self) -> Option<Round> {
        self.durability.as_ref().map(Durability::durable_tip)
    }

    /// Server `id`'s write-ahead log, when durability is on.
    pub fn wal(&self, id: ServerId) -> Option<&Wal> {
        self.durability.as_ref().and_then(|d| d.wals.get(id as usize))
    }

    /// Run a read-only integrity scrub over server `id`'s write-ahead
    /// log: every frame checksum, epoch tag, and round slot of the
    /// current epoch is re-verified in place, plus the newest snapshot.
    /// `None` without durability; mid-log rot surfaces as the typed
    /// [`allconcur_durability::MidLogRot`] inside the error. The online
    /// counterpart of recovery's classification — run it periodically
    /// so rot is found before the next crash depends on the log.
    pub fn scrub_wal(&mut self, id: ServerId) -> Option<Result<ScrubReport, ServiceError>> {
        self.durability
            .as_mut()
            .and_then(|d| d.wals.get_mut(id as usize))
            .map(|wal| wal.scrub().map_err(dur_err))
    }

    /// Server `id`'s disk, for fault injection and inspection (e.g.
    /// downcasting to [`allconcur_durability::MemDisk`] to inject a
    /// torn write or a disk-slow fsync spike).
    pub fn wal_disk_mut(&mut self, id: ServerId) -> Option<&mut dyn VirtualDisk> {
        self.durability.as_mut().and_then(|d| d.wals.get_mut(id as usize)).map(Wal::disk_mut)
    }

    /// Force the group commit now on every server whose WAL has
    /// unsynced rounds, then release any acknowledgments that became
    /// durable. No-op without durability; under a disk-slow fault the
    /// affected server's watermark simply does not advance.
    pub fn flush_durability(&mut self) -> Result<(), ServiceError> {
        if let Some(d) = self.durability.as_mut() {
            for wal in &mut d.wals {
                if wal.unsynced_rounds() > 0 {
                    wal.sync().map_err(dur_err)?;
                }
            }
        }
        self.release_durable();
        Ok(())
    }

    /// Tear the deployment down but keep the disks: what a crash leaves
    /// behind, handed back for [`Service::recover`]. Returns `None` if
    /// the service ran without durability. No final fsync is forced —
    /// unsynced tail rounds are genuinely at the disk model's mercy,
    /// exactly as in a real power loss.
    pub fn shutdown_into_store(self) -> Result<Option<DurabilityStore>, ServiceError> {
        self.cluster.shutdown()?;
        Ok(self
            .durability
            .map(|d| DurabilityStore::from_disks(d.wals.into_iter().map(Wal::into_disk).collect())))
    }

    // ---- engine internals -------------------------------------------------

    /// Remove and return the resolved response for `(origin, seq)`, if
    /// present. Responses resolve in ascending sequence order per
    /// origin, so this is a binary search over the origin's ring — and
    /// in the common redeem-in-order pattern, a front pop.
    fn take_resolved(&mut self, origin: ServerId, seq: u64) -> Option<S::Response> {
        let queue = self.resolved.get_mut(origin as usize)?;
        let idx = queue.binary_search_by_key(&seq, |&(s, _)| s).ok()?;
        queue.remove(idx).map(|(_, response)| response)
    }

    /// Commands queued behind a dead origin can never be carried; fail
    /// them typed.
    fn fail_dead_queued(&mut self) {
        for origin in 0..self.queues.len() {
            if !self.cluster.is_live(origin as ServerId) && !self.queues[origin].is_empty() {
                self.queues[origin].buf.clear();
                for seq in std::mem::take(&mut self.queues[origin].seqs) {
                    self.failed.insert(
                        (origin as ServerId, seq),
                        FailReason::OriginDown(origin as ServerId),
                    );
                }
            }
        }
    }

    /// Open the next round if any commands are queued and the pipeline
    /// window allows: one payload per live origin (empty for origins
    /// with nothing pending — every server participates in every round).
    // lint:hot_path — runs on every pump; idle calls must not allocate
    fn flush_if_ready(&mut self) -> Result<(), ServiceError> {
        if self.flushed - self.harvested >= self.pipeline {
            return Ok(());
        }
        // Allocation-free idle check first: `pump` calls this on every
        // delivery, and almost all of those calls have nothing to flush.
        let any_pending = self
            .queues
            .iter()
            .enumerate()
            .any(|(id, q)| !q.is_empty() && self.cluster.is_live(id as ServerId));
        if !any_pending {
            return Ok(());
        }
        let live = self.cluster.live_servers();
        let round = self.flushed;
        // The round is now considered open no matter what happens below:
        // a partial flush must never reuse this round number, or flight
        // entries would duplicate and correlation would wedge forever.
        self.flushed += 1;
        let mut fatal: Option<ClusterError> = None;
        for &id in &live {
            let (payload, seqs) = self.queues[id as usize].take_payload();
            match self.cluster.submit(id, payload) {
                Ok(_handle) => self.flights[id as usize].push_back((round, seqs)),
                // The origin died between live_servers() and submit: its
                // commands can never be carried; the round proceeds with
                // the remaining origins (early termination excludes it).
                Err(ClusterError::ServerDown(_) | ClusterError::UnknownServer(_)) => {
                    for seq in seqs {
                        self.failed.insert((id, seq), FailReason::OriginDown(id));
                    }
                }
                // Transport-level failure: keep the flight so round
                // accounting stays consistent (if the round never
                // delivers, the handles time out), and report it.
                Err(e) => {
                    self.flights[id as usize].push_back((round, seqs));
                    fatal.get_or_insert(e);
                }
            }
        }
        match fatal {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Apply one delivery to its server's replica; if this is the first
    /// replica to apply the round, harvest the typed responses and
    /// resolve the round's in-flight correlation entries.
    ///
    /// The round's payloads are decoded once (first delivery seen) and
    /// the decoded commands shared across all replicas; only the
    /// harvesting replica collects typed responses.
    fn ingest(&mut self, at: ServerId, delivery: Delivery) -> Result<(), ServiceError> {
        if let Some(log) = &mut self.delivery_log {
            log.push((at, delivery.clone()));
        }
        // Durable A-delivery: the agreed round hits this server's WAL
        // *before* its replica applies it, so any state a crash
        // preserves is covered by the log (never the other way around).
        if let Some(d) = self.durability.as_mut() {
            d.wals[at as usize].append(&delivery).map_err(dur_err)?;
        }
        let round = delivery.round;
        // Quarantined replica: the agreed round is logged (the WAL
        // append above keeps its durable history contiguous) but never
        // applied to the untrusted state. First try to heal the replica
        // from a healthy peer's snapshot; while that is impossible the
        // round is skipped here and harvested by another replica.
        if self.quarantined[at as usize].is_some() {
            self.try_rejoin(at, round)?;
            if self.quarantined[at as usize].is_some() {
                self.release_durable();
                return Ok(());
            }
        }
        // Rounds the rejoin snapshot already covers are skipped, not
        // re-applied; past the snapshot point application resumes.
        if self.resume_after[at as usize].is_some_and(|covered| round <= covered) {
            self.release_durable();
            return Ok(());
        }
        let harvest = round == self.harvested;
        if !self.decoded.contains_key(&round) {
            let commands =
                self.replicas[at as usize].decode_round(round, &delivery.messages, true)?;
            self.decoded.insert(round, commands);
            while self.decoded.len() > self.decoded_cache_rounds() {
                self.decoded.pop_first();
            }
        }
        let outputs = match self.decoded.get(&round) {
            Some(commands) => self.replicas[at as usize].apply_decoded(round, commands, harvest)?,
            // Evicted (straggler far behind the cache window): decode
            // again just for this replica.
            None => self.replicas[at as usize].apply_round(round, &delivery.messages, true)?,
        };
        // Fold the applied round into this replica's state digest and,
        // at an audit boundary, publish it and cross-check.
        if self.audit_interval > 0 {
            let mut digest = self.digests[at as usize];
            for (origin, payload) in &delivery.messages {
                digest = fold_digest(digest, round, *origin, payload);
            }
            self.digests[at as usize] = digest;
            if (round + 1) % self.audit_interval == 0 {
                self.audit_log[at as usize].push_back((round, digest));
                self.check_audits();
            }
        }
        if self.quarantined[at as usize].is_some() {
            // The cross-check just quarantined this very replica: its
            // state is no longer trusted — never checkpoint it, never
            // harvest responses from it (another replica's delivery of
            // this round harvests instead, `harvested` did not move).
            self.release_durable();
            return Ok(());
        }
        self.maybe_checkpoint(at)?;
        if !harvest {
            self.release_durable();
            return Ok(()); // a later replica catching up on a harvested round
        }
        self.harvested += 1;
        // Responses arrive grouped by origin in ascending order (the
        // delivery is origin-ascending and batches unpack in push
        // order), so a single linear walk correlates them against the
        // per-origin flights — no intermediate grouping map.
        let mut round_acks: Vec<(ServerId, u64, S::Response)> = Vec::new();
        let mut outputs = outputs.into_iter().peekable();
        for origin in 0..self.flights.len() as ServerId {
            let this_round =
                self.flights[origin as usize].front().is_some_and(|&(r, _)| r == round);
            if !this_round {
                // No flight for this origin in this round: skip (and
                // drop) any stray responses attributed to it.
                while outputs.next_if(|&(o, _)| o == origin).is_some() {}
                continue;
            }
            let Some((_, seqs)) = self.flights[origin as usize].pop_front() else {
                continue; // front checked above; unreachable
            };
            let mut responses: Vec<S::Response> = Vec::with_capacity(seqs.len());
            while let Some((_, response)) = outputs.next_if(|&(o, _)| o == origin) {
                responses.push(response);
            }
            if responses.len() == seqs.len() {
                // Sequences are monotone per origin, so this stays the
                // ascending order `take_resolved`'s binary search needs.
                for (seq, response) in seqs.into_iter().zip(responses) {
                    round_acks.push((origin, seq, response));
                }
            } else {
                // The round was agreed without (or with a displaced
                // version of) the origin's payload — only possible when
                // the origin crashed mid-broadcast. Its commands of this
                // round are lost.
                for seq in seqs {
                    self.failed.insert((origin, seq), FailReason::CommandLost { origin, seq });
                }
            }
        }
        // Acknowledgment: immediate without durability; with it, typed
        // responses wait for their round's group commit somewhere.
        // (Failures above stay immediate — they are not acknowledgments
        // and carry no durability promise.)
        match self.durability.as_mut() {
            Some(d) if !round_acks.is_empty() => d.pending.push_back((round, round_acks)),
            _ => {
                for (origin, seq, response) in round_acks {
                    self.resolved[origin as usize].push_back((seq, response));
                }
            }
        }
        self.release_durable();
        Ok(())
    }

    /// Cross-check published digests: for every audit round all
    /// expected servers have voted on, compare — a strict-majority
    /// digest is taken as the agreed history, dissenters are
    /// quarantined. With no strict majority nobody can be blamed
    /// (the mismatch is still counted in
    /// [`IntegrityStats::divergences`]). Runs only at audit boundaries,
    /// never on the per-delivery hot path.
    fn check_audits(&mut self) {
        let n = self.cluster.n();
        loop {
            // The lowest audit round any server still has queued.
            let Some(r) = (0..n).filter_map(|s| self.audit_log[s].front().map(|&(r, _)| r)).min()
            else {
                return;
            };
            // Who must vote on `r`: live, unquarantined, and expected
            // to have applied it (audit floor at or below `r` — a
            // freshly rejoined server cannot vouch for rounds it
            // restored rather than applied).
            let mut votes: Vec<(ServerId, u64)> = Vec::new();
            let mut missing = false;
            for s in 0..n as ServerId {
                let expected = self.cluster.is_live(s)
                    && self.quarantined[s as usize].is_none()
                    && self.audit_floor[s as usize] <= r;
                if !expected {
                    continue;
                }
                match self.audit_log[s as usize].iter().find(|&&(round, _)| round == r) {
                    Some(&(_, digest)) => votes.push((s, digest)),
                    None => missing = true,
                }
            }
            if missing {
                return; // an expected voter has not reached `r` yet
            }
            if !votes.is_empty() {
                self.integrity.audits += 1;
                if votes.iter().any(|&(_, d)| d != votes[0].1) {
                    self.integrity.divergences += 1;
                    let majority = votes.iter().map(|&(_, d)| d).find(|&d| {
                        votes.iter().filter(|&&(_, v)| v == d).count() * 2 > votes.len()
                    });
                    if let Some(majority) = majority {
                        for &(s, d) in &votes {
                            if d != majority {
                                self.quarantine(s, r);
                            }
                        }
                    }
                }
            }
            self.drop_audits_through(r);
        }
    }

    /// Drop every queued audit vote at or below `r`.
    fn drop_audits_through(&mut self, r: Round) {
        for ring in &mut self.audit_log {
            while ring.front().is_some_and(|&(round, _)| round <= r) {
                ring.pop_front();
            }
        }
    }

    /// Quarantine server `s`: its digest dissented from the majority at
    /// audit round `r`, so its replica's state is no longer trusted. It
    /// stops answering queries and is excluded as a snapshot and audit
    /// source until a rejoin heals it.
    fn quarantine(&mut self, s: ServerId, r: Round) {
        if self.quarantined[s as usize].is_none() {
            self.quarantined[s as usize] = Some(r);
            self.integrity.quarantines += 1;
        }
    }

    /// Heal a quarantined replica: restore it from the healthiest live
    /// unquarantined peer's snapshot — streamed through the same
    /// bounded chunked catch-up a recovery uses — and resume applying
    /// agreed rounds past the snapshot point. `next_round` is the round
    /// about to be ingested: the snapshot must cover every round the
    /// quarantined replica already skipped, or applying `next_round` on
    /// top would leave a silent gap — a healer that lags behind defers
    /// the rejoin to a later delivery. No healthy live peer → stays
    /// quarantined (retried on the next delivery).
    fn try_rejoin(&mut self, at: ServerId, next_round: Round) -> Result<(), ServiceError> {
        let Some(healer) = self
            .cluster
            .live_servers()
            .into_iter()
            .filter(|&s| s != at && self.quarantined[s as usize].is_none())
            .max_by_key(|&s| self.replicas[s as usize].last_round())
        else {
            return Ok(());
        };
        let covered = self.replicas[healer as usize].last_round();
        if covered.map_or(0, |r| r + 1) < next_round {
            return Ok(()); // snapshot would not cover the skipped rounds
        }
        let snap = self.replicas[healer as usize].snapshot();
        let chunk_bytes = self.durability.as_ref().map_or_else(
            || DurabilityConfig::default().catchup_chunk_bytes,
            |d| d.cfg.catchup_chunk_bytes,
        );
        let mut sink = CatchupSink::new();
        for chunk in CatchupSource::new(Some(&snap), covered.map_or(0, |r| r + 1), &[], chunk_bytes)
        {
            sink.accept(&chunk).map_err(dur_err)?;
        }
        let payload = sink.finish().map_err(dur_err)?;
        let state: &[u8] = payload.snapshot.as_deref().unwrap_or(&snap);
        self.replicas[at as usize] = Replica::from_snapshot(state)?;
        // The healed replica adopts the healer's digest: identical
        // state, identical history as far as the audit is concerned.
        self.digests[at as usize] = self.digests[healer as usize];
        self.resume_after[at as usize] = covered;
        self.audit_floor[at as usize] = covered.map_or(0, |r| r + 1);
        self.audit_log[at as usize].clear();
        self.quarantined[at as usize] = None;
        self.integrity.rejoins += 1;
        Ok(())
    }

    /// Move every withheld acknowledgment whose round is durable on at
    /// least one server into the redeemable responses.
    fn release_durable(&mut self) {
        let Some(d) = self.durability.as_mut() else { return };
        let durable = d.durable_tip();
        loop {
            match d.pending.front() {
                Some(&(round, _)) if round < durable => {}
                _ => break,
            }
            let Some((_, acks)) = d.pending.pop_front() else { break };
            for (origin, seq, response) in acks {
                self.resolved[origin as usize].push_back((seq, response));
            }
        }
    }

    /// Whether `(origin, seq)`'s response is harvested but withheld
    /// pending durability.
    fn durable_ack_withheld(&self, origin: ServerId, seq: u64) -> bool {
        self.durability.as_ref().is_some_and(|d| {
            d.pending.iter().any(|(_, acks)| acks.iter().any(|&(o, s, _)| o == origin && s == seq))
        })
    }

    /// Checkpoint server `at`'s WAL if it accumulated
    /// [`DurabilityConfig::checkpoint_every_rounds`] since the last
    /// snapshot: durable snapshot of the replica's state, fully-covered
    /// segments truncated. Abandoned harmlessly under a disk-slow fault.
    fn maybe_checkpoint(&mut self, at: ServerId) -> Result<(), ServiceError> {
        let Some(d) = self.durability.as_mut() else { return Ok(()) };
        let wal = &mut d.wals[at as usize];
        let every = wal.config().checkpoint_every_rounds;
        if every > 0 && wal.appended_rounds() - wal.snapshot_covers() >= every {
            let snap = self.replicas[at as usize].snapshot();
            wal.checkpoint(&snap).map_err(dur_err)?;
        }
        Ok(())
    }

    /// Whether nothing is queued, in flight, or unapplied.
    fn is_quiescent(&self) -> bool {
        let queues_empty = self.queues.iter().all(PendingBatch::is_empty);
        let flights_empty = self.flights.iter().all(VecDeque::is_empty);
        let expected_last = self.flushed.checked_sub(1);
        let replicas_current =
            (0..self.cluster.n() as ServerId).filter(|&id| self.cluster.is_live(id)).all(|id| {
                // A quarantined replica holds no currency promise (it
                // is healed by rejoin, not by catching up), and a
                // freshly rejoined one is current as soon as its rejoin
                // snapshot covers every flushed round.
                self.quarantined[id as usize].is_some()
                    || self.replicas[id as usize].last_round() == expected_last
                    || matches!(
                        (self.resume_after[id as usize], expected_last),
                        (Some(covered), Some(expected)) if covered >= expected
                    )
            });
        let acks_released = self.durability.as_ref().is_none_or(|d| d.pending.is_empty());
        queues_empty && flights_empty && replicas_current && acks_released
    }
}
