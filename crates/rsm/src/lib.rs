#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]
//! # allconcur-rsm — typed replicated state machines over AllConcur
//!
//! The paper motivates AllConcur as the substrate for "large-scale
//! coordination services, such as replicated state machines" (§1), and
//! its safety-proof companion treats *set agreement + deterministic
//! apply* as the application contract. This crate turns that contract
//! into a first-class typed API, the same way `allconcur-cluster` did
//! for the transport layer:
//!
//! * a [`StateMachine`] declares typed `Command` / `Response` associated
//!   types and a [`Codec`] (hand-rolled bytes, no external serde);
//! * a [`Service`] owns a [`Cluster`] plus a `Replica<S>` per server and
//!   pumps deliveries internally — [`Service::submit`] returns a
//!   [`CommandHandle`] that resolves with the typed response of *this*
//!   command when its round delivers (correlated by origin + per-origin
//!   sequence, batching-aware);
//! * reads at both consistencies: [`Service::query_local`] (bounded
//!   staleness, §1) and [`Service::query_linearizable`] (the read rides
//!   atomic broadcast);
//! * [`StateMachine::snapshot`] / [`StateMachine::restore`] wired
//!   through [`Service::reconfigure`], so joining servers catch up
//!   without replaying history (§3's dynamic membership);
//! * every failure typed: [`RsmError`] for the apply path (a dropped
//!   round is a reportable [`RsmError::RoundGap`], not a panic),
//!   [`ServiceError`] for the submission path.
//!
//! ```
//! use allconcur_cluster::Cluster;
//! use allconcur_core::replica::{KvCommand, KvResponse, KvStore};
//! use allconcur_graph::gs::gs_digraph;
//! use allconcur_rsm::Service;
//! use std::time::Duration;
//!
//! // A replicated KV store on 8 simulated servers; swap `Cluster::sim`
//! // for `Cluster::tcp` and the same code runs over real sockets.
//! let cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
//! let mut kv = Service::new(cluster, &KvStore::default()).unwrap();
//!
//! let put = KvCommand::Put { key: b"epoch".to_vec().into(), value: b"2".to_vec().into() };
//! let handle = kv.submit(0, &put).unwrap();                   // typed in ...
//! let response = kv.wait(&handle, Duration::from_secs(10)).unwrap();
//! assert_eq!(response, KvResponse::Ack);                      // ... typed out
//!
//! // Strongly consistent read through any server — it rides broadcast.
//! let get = KvCommand::Get { key: b"epoch".to_vec().into() };
//! let value = kv.query_linearizable(5, &get, Duration::from_secs(10)).unwrap();
//! assert_eq!(value, KvResponse::Value(Some(b"2".to_vec().into())));
//!
//! // Local read from any replica: no coordination, ≤ 1 round stale.
//! kv.sync(Duration::from_secs(10)).unwrap(); // barrier: all replicas caught up
//! assert_eq!(kv.query_local(3).unwrap().get_local(b"epoch"), Some(&b"2"[..]));
//! ```

pub mod error;
pub mod service;

pub use allconcur_cluster::Cluster;
pub use allconcur_core::replica::{
    Codec, DecodeError, KvCodec, KvCommand, KvResponse, KvStore, Replica, RsmError, StateMachine,
};
pub use allconcur_durability::{DurabilityConfig, DurabilityStore};
pub use error::ServiceError;
pub use service::{AdmissionConfig, CommandHandle, IntegrityStats, RecoveryReport, Service};
