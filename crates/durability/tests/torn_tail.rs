//! Property: a torn write at **any byte offset** of the last (unsynced)
//! WAL frame recovers cleanly — the recovered suffix is exactly the
//! durable prefix of the appended history (plus the last frame iff it
//! survived whole), the torn remainder is trimmed, and the log accepts
//! appends at the recovered tip. Every offset of the last frame is
//! exercised exhaustively per generated case.

use allconcur_core::delivery::Delivery;
use allconcur_durability::{DurabilityConfig, MemDisk, VirtualDisk, Wal};
use bytes::Bytes;
use proptest::prelude::*;

/// A synthetic agreed round with a recognisable payload.
fn round_delivery(round: u64, payload_len: usize) -> Delivery {
    Delivery {
        round,
        messages: vec![
            (0, Bytes::from(vec![round as u8; payload_len])),
            (1, Bytes::from_static(b"torn-tail-proptest")),
        ],
    }
}

/// Build a WAL holding `rounds` appended rounds of which all but the
/// last are durable, then return the disk and the appended history.
fn build(rounds: u64, payload_len: usize) -> (Box<dyn VirtualDisk>, Vec<Delivery>) {
    let cfg = DurabilityConfig { fsync_every_n_rounds: 0, ..DurabilityConfig::deterministic(0) };
    let mut wal = Wal::create(Box::new(MemDisk::new()), cfg, b"initial-state").expect("create");
    let history: Vec<Delivery> = (0..rounds).map(|r| round_delivery(r, payload_len)).collect();
    for delivery in &history[..rounds as usize - 1] {
        wal.append(delivery).expect("append durable prefix");
    }
    assert!(wal.sync().expect("sync"), "MemDisk sync always completes");
    wal.append(&history[rounds as usize - 1]).expect("append unsynced tail");
    (wal.into_disk(), history)
}

/// The active segment: the lexicographically last `wal-` file (names
/// embed zero-padded epoch + start round, so order is chronological).
fn active_segment(disk: &dyn VirtualDisk) -> String {
    disk.list()
        .expect("list")
        .into_iter()
        .filter(|f| f.starts_with("wal-"))
        .max()
        .expect("a segment")
}

/// Tear the unsynced tail of `disk` down to `keep` bytes, crash, and
/// recover; assert the recovery contract for that exact offset.
fn check_offset(rounds: u64, payload_len: usize, keep: usize, unsynced: usize) {
    let (mut disk, history) = build(rounds, payload_len);
    let segment = active_segment(disk.as_ref());
    let mem = disk.as_any_mut().downcast_mut::<MemDisk>().expect("mem disk");
    mem.tear(&segment, keep);
    mem.crash();
    let (mut wal, recovered) =
        Wal::recover(disk, DurabilityConfig::deterministic(0)).expect("recover");
    let expect_tip = if keep == unsynced { rounds } else { rounds - 1 };
    assert_eq!(recovered.tip(), expect_tip, "offset {keep}/{unsynced}: wrong recovered tip");
    assert_eq!(
        recovered.suffix,
        &history[..expect_tip as usize],
        "offset {keep}/{unsynced}: recovered suffix diverged from the appended history"
    );
    // A torn frame is reported iff the cut fell strictly inside it.
    assert_eq!(
        recovered.torn.is_some(),
        keep > 0 && keep < unsynced,
        "offset {keep}/{unsynced}: torn-tail report mismatch"
    );
    assert_eq!(recovered.snapshot.as_deref(), Some(&b"initial-state"[..]));
    // The trimmed log must keep working: append the next round...
    wal.append(&round_delivery(expect_tip, payload_len)).expect("append after recovery");
    assert!(wal.sync().expect("sync after recovery"));
    // ... and a second recovery finds a clean (torn-free) log.
    let (_, again) =
        Wal::recover(wal.into_disk(), DurabilityConfig::deterministic(0)).expect("re-recover");
    assert!(again.torn.is_none(), "offset {keep}/{unsynced}: trim was not durable");
    assert_eq!(again.tip(), expect_tip + 1);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Exhaustive over the last frame: every byte offset from an empty
    /// tail (clean truncation) to the full frame (nothing torn).
    #[test]
    fn recovery_survives_every_torn_byte_offset(
        rounds in 1u64..8,
        payload_len in 0usize..96,
    ) {
        let (mut disk, _) = build(rounds, payload_len);
        let segment = active_segment(disk.as_ref());
        let unsynced =
            disk.as_any_mut().downcast_mut::<MemDisk>().expect("mem disk").unsynced_len(&segment);
        prop_assert!(unsynced > 0, "the last frame must be unsynced");
        for keep in 0..=unsynced {
            check_offset(rounds, payload_len, keep, unsynced);
        }
    }
}
