//! The per-server write-ahead log: checksummed round frames, group
//! commit, segment rotation, snapshot truncation, and crash recovery.
//!
//! ## Layout
//!
//! A server's disk holds two kinds of files, both built from the stable
//! framing in [`allconcur_core::wire`]:
//!
//! * `wal-<epoch:08>-<start:010>.seg` — an append-only segment whose
//!   `k`-th frame carries round `start + k` of `epoch`. Each frame
//!   payload is `[epoch: u64 le] ++ encode_delivery(round)`.
//! * `snap-<epoch:08>-<covers:010>.snap` — one atomically replaced
//!   frame whose payload is `[epoch: u64 le] [covers: u64 le] ++ state`:
//!   the application state after applying rounds `0..covers` of
//!   `epoch`. Written by [`Wal::create`], [`Wal::checkpoint`] and
//!   [`Wal::begin_epoch`].
//!
//! Rounds restart at zero whenever the cluster is rebuilt (recovery,
//! reconfiguration), so every frame and snapshot is tagged with the
//! **epoch** — a counter bumped at each rebuild — and recovery only ever
//! stitches together records of a single epoch.
//!
//! ## Group commit
//!
//! [`Wal::append`] writes the frame immediately but only forces the
//! disk per [`DurabilityConfig`]: after `fsync_every_n_rounds` appends
//! or once `fsync_interval` has elapsed. [`Wal::durable_rounds`] tracks
//! exactly how far a crash can *not* roll back; the `Service` layer
//! withholds acknowledgments until a round is below that watermark
//! somewhere.
//!
//! ## Recovery
//!
//! [`Wal::recover`] picks the newest valid snapshot (highest epoch,
//! then highest covered round), replays that epoch's segments in order,
//! and accepts the **longest checksummed, contiguous prefix** of
//! frames: a truncated or corrupt frame, an epoch mismatch, or a round
//! gap all end the scan. A torn tail is then physically trimmed so new
//! appends never land after garbage.

use crate::config::DurabilityConfig;
use crate::disk::VirtualDisk;
use allconcur_core::delivery::Delivery;
use allconcur_core::wire::{
    self, decode_delivery, encode_delivery, put_frame, read_frame, scan_frames, FrameError,
};
use allconcur_core::Round;
use bytes::BufMut;
use std::io;
use std::time::Instant;

/// Description of a torn tail found (and trimmed) during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment file the torn write landed in.
    pub segment: String,
    /// Bytes of the segment's longest checksummed prefix (kept).
    pub valid_bytes: usize,
    /// How the first bad frame failed.
    pub error: FrameError,
}

/// Mid-log rot: a bad frame with valid history *after* it — bit rot in
/// the middle of acknowledged rounds, not a torn tail write.
///
/// A torn tail is benign (the crash lost only unsynced rounds; trim and
/// continue), but rot sits below the durable watermark: trimming it
/// would silently truncate rounds that were acknowledged to clients.
/// [`Wal::recover`] and [`Wal::scrub`] therefore surface rot as this
/// typed error (classify with [`rot_error`]) so the service layer can
/// fall back to another server's chunked catch-up instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MidLogRot {
    /// Segment file the rotted frame lives in.
    pub segment: String,
    /// Byte offset of the first bad frame.
    pub offset: usize,
    /// First round no longer reconstructible from this disk.
    pub round: Round,
    /// How the frame failed its check.
    pub error: FrameError,
}

impl std::fmt::Display for MidLogRot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mid-log rot in {} at byte {} (round {}): {} — valid frames follow, refusing to \
             truncate acknowledged history",
            self.segment, self.offset, self.round, self.error
        )
    }
}

impl std::error::Error for MidLogRot {}

impl From<MidLogRot> for io::Error {
    fn from(rot: MidLogRot) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, rot)
    }
}

/// Extract the typed [`MidLogRot`] from an I/O error, if it carries
/// one. Torn tails and ordinary I/O failures return `None`.
pub fn rot_error(e: &io::Error) -> Option<&MidLogRot> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<MidLogRot>())
}

/// What a read-only [`Wal::scrub`] pass verified.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Segment files of the current epoch whose frames were verified.
    pub segments: usize,
    /// Round frames whose checksum, epoch tag, and round slot all
    /// checked out.
    pub frames: u64,
    /// Whether the newest snapshot of the current epoch verified (also
    /// `true` when the epoch has no snapshot file at all).
    pub snapshot_ok: bool,
    /// A torn (trailing) bad frame, when one exists — expected only on
    /// a disk that has not been through [`Wal::recover`] since a crash.
    pub torn: Option<TornTail>,
}

/// What [`Wal::recover_or_rot`] found on one server's disk.
pub enum RecoverOutcome {
    /// The log was intact (any torn tail trimmed): the reopened WAL
    /// plus what it reconstructed.
    Intact(Wal, Recovered),
    /// Mid-log rot — acknowledged history is damaged on *this* disk.
    /// The disk is handed back untouched so the caller can rebuild the
    /// server from another server's chunked catch-up.
    Rotted {
        /// The unmodified disk (still holding the rotted files).
        disk: Box<dyn VirtualDisk>,
        /// Where and how the rot was found.
        rot: MidLogRot,
    },
}

impl std::fmt::Debug for RecoverOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverOutcome::Intact(wal, rec) => {
                f.debug_tuple("Intact").field(wal).field(rec).finish()
            }
            RecoverOutcome::Rotted { rot, .. } => {
                f.debug_struct("Rotted").field("rot", rot).finish_non_exhaustive()
            }
        }
    }
}

/// Everything [`Wal::recover`] reconstructed from one server's disk.
#[derive(Debug)]
pub struct Recovered {
    /// Epoch the durable state belongs to.
    pub epoch: u64,
    /// Snapshot state covering rounds `0..snapshot_covers`, when the
    /// disk held one (`None` only for a never-initialised disk).
    pub snapshot: Option<Vec<u8>>,
    /// Rounds covered by `snapshot`.
    pub snapshot_covers: Round,
    /// Replayable log suffix: deliveries for rounds
    /// `snapshot_covers..snapshot_covers + suffix.len()`, contiguous.
    pub suffix: Vec<Delivery>,
    /// The torn tail recovery discarded, if any.
    pub torn: Option<TornTail>,
}

impl Recovered {
    /// First round *not* reconstructible from this disk.
    pub fn tip(&self) -> Round {
        self.snapshot_covers + self.suffix.len() as Round
    }
}

fn segment_name(epoch: u64, start: Round) -> String {
    format!("wal-{epoch:08}-{start:010}.seg")
}

fn snapshot_name(epoch: u64, covers: Round) -> String {
    format!("snap-{epoch:08}-{covers:010}.snap")
}

/// Parse `wal-<epoch>-<start>.seg` / `snap-<epoch>-<covers>.snap`.
fn parse_name(name: &str) -> Option<(bool, u64, u64)> {
    let (is_segment, rest) = if let Some(rest) = name.strip_prefix("wal-") {
        (true, rest.strip_suffix(".seg")?)
    } else if let Some(rest) = name.strip_prefix("snap-") {
        (false, rest.strip_suffix(".snap")?)
    } else {
        return None;
    };
    let (epoch, number) = rest.split_once('-')?;
    Some((is_segment, epoch.parse().ok()?, number.parse().ok()?))
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// One server's write-ahead log over a [`VirtualDisk`].
pub struct Wal {
    disk: Box<dyn VirtualDisk>,
    cfg: DurabilityConfig,
    epoch: u64,
    /// Rounds appended so far this epoch (next append must be this round).
    appended: Round,
    /// Rounds guaranteed to survive a crash (snapshot + synced frames).
    durable: Round,
    /// Rounds covered by the newest durable snapshot.
    snapshot_covers: Round,
    /// First round of the active segment.
    segment_start: Round,
    /// Bytes written to the active segment.
    segment_bytes: usize,
    /// Appends since the last completed sync.
    unsynced_rounds: u64,
    /// Wall-clock of the last completed sync (only read when the config
    /// has a time-based trigger, so deterministic runs never touch it).
    last_sync: Option<Instant>,
    /// Completed group commits.
    syncs: u64,
    /// Scratch buffer for frame encoding (reused across appends).
    frame_buf: Vec<u8>,
}

impl Wal {
    /// Initialise a fresh log on `disk`: durable snapshot of
    /// `initial_state` at epoch 0 covering zero rounds.
    pub fn create(
        mut disk: Box<dyn VirtualDisk>,
        cfg: DurabilityConfig,
        initial_state: &[u8],
    ) -> io::Result<Self> {
        write_snapshot(disk.as_mut(), 0, 0, initial_state)?;
        if !disk.sync()? {
            return Err(corrupt("disk sync did not complete while initialising the WAL"));
        }
        Ok(Wal {
            disk,
            cfg,
            epoch: 0,
            appended: 0,
            durable: 0,
            snapshot_covers: 0,
            segment_start: 0,
            segment_bytes: 0,
            unsynced_rounds: 0,
            last_sync: None,
            syncs: 0,
            frame_buf: Vec::new(),
        })
    }

    /// Append one agreed round. Must be called in round order with no
    /// gaps — the WAL *is* the agreed history's durable prefix.
    /// Triggers a group commit per the configured policy.
    pub fn append(&mut self, delivery: &Delivery) -> io::Result<()> {
        if delivery.round != self.appended {
            return Err(corrupt(&format!(
                "WAL append out of order: got round {}, expected {}",
                delivery.round, self.appended
            )));
        }
        if self.segment_bytes >= self.cfg.segment_bytes {
            // Rotate: subsequent frames go to a fresh segment. No sync
            // needed — recovery scans segments in start order and round
            // contiguity spans the boundary.
            self.segment_start = self.appended;
            self.segment_bytes = 0;
        }
        self.frame_buf.clear();
        let mut payload = Vec::with_capacity(16 + delivery.payload_bytes());
        payload.put_u64_le(self.epoch);
        encode_delivery(delivery, &mut payload);
        put_frame(&mut self.frame_buf, &payload);
        let name = segment_name(self.epoch, self.segment_start);
        let frame = std::mem::take(&mut self.frame_buf);
        let result = self.disk.append(&name, &frame);
        self.frame_buf = frame;
        result?;
        self.segment_bytes += self.frame_buf.len();
        self.appended += 1;
        self.unsynced_rounds += 1;
        self.maybe_group_commit()?;
        Ok(())
    }

    fn maybe_group_commit(&mut self) -> io::Result<()> {
        let by_count = self.cfg.fsync_every_n_rounds > 0
            && self.unsynced_rounds >= self.cfg.fsync_every_n_rounds;
        let by_time = match self.cfg.fsync_interval {
            Some(interval) => {
                self.unsynced_rounds > 0
                    && self.last_sync.map(|t| t.elapsed() >= interval).unwrap_or(true)
            }
            None => false,
        };
        if by_count || by_time {
            self.sync()?;
        }
        Ok(())
    }

    /// Force a sync barrier now. Returns whether it completed — a
    /// disk-slow fault leaves the barrier incomplete and the durable
    /// watermark unchanged (`Ok(false)`), never falsely advanced.
    pub fn sync(&mut self) -> io::Result<bool> {
        let completed = self.disk.sync()?;
        if completed {
            self.durable = self.appended;
            self.unsynced_rounds = 0;
            self.syncs += 1;
            if self.cfg.fsync_interval.is_some() {
                self.last_sync = Some(Instant::now());
            }
        }
        Ok(completed)
    }

    /// Write a durable snapshot of `state` (the application state after
    /// every appended round) and truncate the now fully-covered
    /// segments. Returns whether the checkpoint took effect — under a
    /// disk-slow fault it is abandoned without truncating anything.
    pub fn checkpoint(&mut self, state: &[u8]) -> io::Result<bool> {
        let covers = self.appended;
        write_snapshot(self.disk.as_mut(), self.epoch, covers, state)?;
        if !self.disk.sync()? {
            return Ok(false);
        }
        self.syncs += 1;
        if self.cfg.fsync_interval.is_some() {
            self.last_sync = Some(Instant::now());
        }
        // The snapshot is durable: every segment (all ≤ covers) and any
        // older snapshot of this epoch is dead weight.
        for name in self.disk.list()? {
            match parse_name(&name) {
                Some((true, epoch, _)) if epoch == self.epoch => self.disk.remove(&name)?,
                Some((false, epoch, c)) if epoch == self.epoch && c < covers => {
                    self.disk.remove(&name)?
                }
                _ => {}
            }
        }
        self.snapshot_covers = covers;
        self.durable = covers;
        self.unsynced_rounds = 0;
        self.segment_start = covers;
        self.segment_bytes = 0;
        Ok(true)
    }

    /// Start a new epoch: durable snapshot of `state` covering zero
    /// rounds of `new_epoch`, then drop every older-epoch file. Rounds
    /// restart at zero. Fails if the disk cannot complete a sync (the
    /// epoch boundary must not be ambiguous on disk).
    pub fn begin_epoch(&mut self, new_epoch: u64, state: &[u8]) -> io::Result<()> {
        write_snapshot(self.disk.as_mut(), new_epoch, 0, state)?;
        if !self.disk.sync()? {
            return Err(corrupt("disk sync did not complete at an epoch boundary"));
        }
        self.syncs += 1;
        for name in self.disk.list()? {
            match parse_name(&name) {
                Some((_, epoch, _)) if epoch < new_epoch => self.disk.remove(&name)?,
                Some((false, epoch, covers)) if epoch == new_epoch && covers != 0 => {
                    self.disk.remove(&name)?
                }
                _ => {}
            }
        }
        self.epoch = new_epoch;
        self.appended = 0;
        self.durable = 0;
        self.snapshot_covers = 0;
        self.segment_start = 0;
        self.segment_bytes = 0;
        self.unsynced_rounds = 0;
        if self.cfg.fsync_interval.is_some() {
            self.last_sync = Some(Instant::now());
        }
        Ok(())
    }

    /// Reconstruct a server's durable state from its disk after a
    /// crash: newest valid snapshot plus the longest checksummed,
    /// contiguous frame suffix of that epoch. Trims any torn tail so
    /// the reopened log appends cleanly.
    ///
    /// Mid-log rot (a bad frame *inside* acknowledged history, not a
    /// torn tail) fails with a typed [`MidLogRot`] error rather than
    /// silently truncating — use [`rot_error`] to classify, or
    /// [`Wal::recover_or_rot`] to get the disk back for a rebuild from
    /// a peer.
    pub fn recover(
        disk: Box<dyn VirtualDisk>,
        cfg: DurabilityConfig,
    ) -> io::Result<(Self, Recovered)> {
        match Self::recover_or_rot(disk, cfg)? {
            RecoverOutcome::Intact(wal, rec) => Ok((wal, rec)),
            RecoverOutcome::Rotted { rot, .. } => Err(rot.into()),
        }
    }

    /// [`Wal::recover`], but mid-log rot hands the disk back instead of
    /// consuming it in the error: the caller (the service layer) can
    /// then rebuild this server from another server's chunked catch-up
    /// — the only repair that does not lose acknowledged rounds.
    pub fn recover_or_rot(
        mut disk: Box<dyn VirtualDisk>,
        cfg: DurabilityConfig,
    ) -> io::Result<RecoverOutcome> {
        let names = disk.list()?;
        // Newest snapshot first: highest epoch, then highest covered round.
        let mut snapshots: Vec<(u64, Round, &str)> = names
            .iter()
            .filter_map(|n| match parse_name(n) {
                Some((false, epoch, covers)) => Some((epoch, covers, n.as_str())),
                _ => None,
            })
            .collect();
        snapshots.sort_by(|a, b| b.cmp(a));
        let mut chosen: Option<(u64, Round, Vec<u8>)> = None;
        for &(epoch, covers, name) in &snapshots {
            if let Some(bytes) = disk.read(name)? {
                if let Some(state) = decode_snapshot(&bytes, epoch, covers) {
                    chosen = Some((epoch, covers, state));
                    break;
                }
            }
        }
        let (epoch, covers, snapshot) = match chosen {
            Some((e, c, s)) => (e, c, Some(s)),
            // Never-initialised disk: empty history at epoch 0.
            None => (0, 0, None),
        };

        // That epoch's segments, in start order.
        let mut segments: Vec<(Round, String)> = names
            .iter()
            .filter_map(|n| match parse_name(n) {
                Some((true, e, start)) if e == epoch => Some((start as Round, n.clone())),
                _ => None,
            })
            .collect();
        segments.sort();

        let mut suffix: Vec<Delivery> = Vec::new();
        let mut torn: Option<TornTail> = None;
        let mut next_round: Round = covers;
        let mut active: Option<(Round, String, usize)> = None;
        let seg_count = segments.len();
        for (idx, (start, name)) in segments.iter().enumerate() {
            let start = *start;
            if torn.is_some() {
                // Rounds past a torn tail are unreachable history.
                disk.remove(name)?;
                continue;
            }
            if start > next_round {
                // A gap (segment containing `next_round` lost whole):
                // nothing past it is stitchable.
                disk.remove(name)?;
                continue;
            }
            let bytes = disk.read(name)?.unwrap_or_default();
            let (frames, tail) = scan_frames(&bytes);
            let mut round = start;
            let mut valid_bytes = 0usize;
            let mut bad: Option<FrameError> = None;
            for frame in frames {
                match decode_record(frame, epoch, round) {
                    Some(delivery) => {
                        valid_bytes += wire::FRAME_HEADER_BYTES + frame.len();
                        if round >= covers {
                            if round == next_round {
                                suffix.push(delivery);
                                next_round += 1;
                            }
                            // round < next_round: already covered by a
                            // later-started segment scan order? cannot
                            // happen (starts ascend); covered rounds in
                            // partially-truncated segments fall here.
                        } else {
                            next_round = next_round.max(round + 1);
                        }
                        round += 1;
                    }
                    None => {
                        bad = Some(FrameError::Corrupt);
                        break;
                    }
                }
            }
            if bad.is_none() {
                if let Some((err, _)) = tail {
                    bad = Some(err);
                }
            }
            if let Some(error) = bad {
                // Torn tail or rot? A torn write can only be the last
                // thing that happened to the log, so a bad frame with
                // valid history *after* it — in a later segment (only
                // ever created by appends past this one) or further
                // down this one — is rot in acknowledged rounds.
                // Trimming would silently discard them; bail out typed
                // so the caller rebuilds from a peer instead.
                let is_last = idx + 1 == seg_count;
                if !is_last || valid_record_after(&bytes, valid_bytes, epoch) {
                    let rot =
                        MidLogRot { segment: name.clone(), offset: valid_bytes, round, error };
                    return Ok(RecoverOutcome::Rotted { disk, rot });
                }
                // Trim the garbage so future appends follow the valid
                // prefix byte-exactly.
                disk.write_atomic(name, &bytes[..valid_bytes])?;
                torn = Some(TornTail { segment: name.clone(), valid_bytes, error });
            }
            // A clean scan means valid_bytes == bytes.len(); a bad one
            // means the file was just trimmed to valid_bytes.
            active = Some((start, name.clone(), valid_bytes));
        }
        if torn.is_some() && !disk.sync()? {
            return Err(corrupt("disk sync did not complete while trimming a torn tail"));
        }

        let appended = next_round;
        let (segment_start, segment_bytes) = match active {
            Some((start, _, bytes)) => (start, bytes),
            None => (appended, 0),
        };
        let wal = Wal {
            disk,
            cfg,
            epoch,
            appended,
            durable: appended,
            snapshot_covers: covers,
            segment_start,
            segment_bytes,
            unsynced_rounds: 0,
            last_sync: None,
            syncs: 0,
            frame_buf: Vec::new(),
        };
        let recovered = Recovered { epoch, snapshot, snapshot_covers: covers, suffix, torn };
        Ok(RecoverOutcome::Intact(wal, recovered))
    }

    /// Verify every durable artefact of the current epoch in place:
    /// the newest snapshot plus every segment frame's checksum, epoch
    /// tag, and round slot. Read-only — nothing is trimmed or repaired.
    ///
    /// Mid-log rot (a bad frame with valid history after it) surfaces
    /// as a typed [`MidLogRot`] error — classify with [`rot_error`] —
    /// because repairing it requires another server's catch-up, not a
    /// trim. A trailing bad frame is merely reported as `torn` in the
    /// [`ScrubReport`]; it only occurs on a disk that has not been
    /// through [`Wal::recover`] since a crash.
    pub fn scrub(&mut self) -> io::Result<ScrubReport> {
        let names = self.disk.list()?;
        let mut report = ScrubReport { snapshot_ok: true, ..ScrubReport::default() };
        let mut snaps: Vec<(Round, &str)> = names
            .iter()
            .filter_map(|n| match parse_name(n) {
                Some((false, e, covers)) if e == self.epoch => Some((covers, n.as_str())),
                _ => None,
            })
            .collect();
        snaps.sort();
        if let Some(&(covers, name)) = snaps.last() {
            let bytes = self.disk.read(name)?.unwrap_or_default();
            report.snapshot_ok = decode_snapshot(&bytes, self.epoch, covers).is_some();
        }
        let mut segments: Vec<(Round, String)> = names
            .iter()
            .filter_map(|n| match parse_name(n) {
                Some((true, e, start)) if e == self.epoch => Some((start as Round, n.clone())),
                _ => None,
            })
            .collect();
        segments.sort();
        let seg_count = segments.len();
        for (idx, (start, name)) in segments.iter().enumerate() {
            let bytes = self.disk.read(name)?.unwrap_or_default();
            let (frames, tail) = scan_frames(&bytes);
            let mut round = *start;
            let mut valid_bytes = 0usize;
            let mut bad: Option<FrameError> = None;
            for frame in frames {
                match decode_record(frame, self.epoch, round) {
                    Some(_) => {
                        valid_bytes += wire::FRAME_HEADER_BYTES + frame.len();
                        round += 1;
                        report.frames += 1;
                    }
                    None => {
                        bad = Some(FrameError::Corrupt);
                        break;
                    }
                }
            }
            if bad.is_none() {
                if let Some((err, _)) = tail {
                    bad = Some(err);
                }
            }
            if let Some(error) = bad {
                let is_last = idx + 1 == seg_count;
                if !is_last || valid_record_after(&bytes, valid_bytes, self.epoch) {
                    return Err(MidLogRot {
                        segment: name.clone(),
                        offset: valid_bytes,
                        round,
                        error,
                    }
                    .into());
                }
                report.torn = Some(TornTail { segment: name.clone(), valid_bytes, error });
            }
            report.segments += 1;
        }
        Ok(report)
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rounds appended this epoch (the next round to append).
    pub fn appended_rounds(&self) -> Round {
        self.appended
    }

    /// Rounds guaranteed to survive a crash of this server.
    pub fn durable_rounds(&self) -> Round {
        self.durable
    }

    /// Rounds covered by the newest durable snapshot.
    pub fn snapshot_covers(&self) -> Round {
        self.snapshot_covers
    }

    /// Appends not yet covered by a completed sync barrier.
    pub fn unsynced_rounds(&self) -> u64 {
        self.unsynced_rounds
    }

    /// Completed group commits (sync barriers) so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The active configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }

    /// The underlying disk (fault injection, inspection).
    pub fn disk_mut(&mut self) -> &mut dyn VirtualDisk {
        self.disk.as_mut()
    }

    /// Unwrap into the underlying disk (what survives a crash).
    pub fn into_disk(self) -> Box<dyn VirtualDisk> {
        self.disk
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("epoch", &self.epoch)
            .field("appended", &self.appended)
            .field("durable", &self.durable)
            .field("snapshot_covers", &self.snapshot_covers)
            .finish()
    }
}

fn write_snapshot(
    disk: &mut dyn VirtualDisk,
    epoch: u64,
    covers: Round,
    state: &[u8],
) -> io::Result<()> {
    let mut payload = Vec::with_capacity(16 + state.len());
    payload.put_u64_le(epoch);
    payload.put_u64_le(covers);
    payload.extend_from_slice(state);
    let mut framed = Vec::with_capacity(wire::FRAME_HEADER_BYTES + payload.len());
    put_frame(&mut framed, &payload);
    disk.write_atomic(&snapshot_name(epoch, covers), &framed)
}

/// Little-endian `u64` at the front of `bytes`, when there is one.
fn le_u64(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?))
}

/// Probe `bytes[from..]` for any byte offset holding a checksummed
/// frame whose payload carries this epoch's tag — evidence that valid
/// history continues past a bad frame (mid-log rot), as opposed to a
/// torn tail trailed only by garbage. A false positive needs a CRC32
/// *and* epoch collision inside random damage, so the sliding probe is
/// reliable even when the bad frame's own length header was hit.
fn valid_record_after(bytes: &[u8], from: usize, epoch: u64) -> bool {
    let mut off = from.saturating_add(1);
    while off < bytes.len() {
        if let Ok((payload, _)) = read_frame(bytes, off) {
            if le_u64(payload) == Some(epoch) {
                return true;
            }
        }
        off += 1;
    }
    false
}

/// Validate + unwrap a snapshot file: checksummed frame whose header
/// matches the file name. Returns the state bytes.
fn decode_snapshot(bytes: &[u8], epoch: u64, covers: Round) -> Option<Vec<u8>> {
    let (payload, end) = read_frame(bytes, 0).ok()?;
    if end != bytes.len() || payload.len() < 16 {
        return None;
    }
    if le_u64(payload) != Some(epoch) || le_u64(&payload[8..16]) != Some(covers) {
        return None;
    }
    Some(payload[16..].to_vec())
}

/// Validate + unwrap one WAL frame payload: epoch tag and round must
/// match their expected slot.
fn decode_record(payload: &[u8], epoch: u64, round: Round) -> Option<Delivery> {
    if le_u64(payload) != Some(epoch) {
        return None;
    }
    let delivery = decode_delivery(&payload[8..]).ok()?;
    if delivery.round != round {
        return None;
    }
    Some(delivery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use bytes::Bytes;

    fn delivery(round: Round) -> Delivery {
        Delivery {
            round,
            messages: vec![(0, Bytes::from(round.to_le_bytes().to_vec())), (1, Bytes::new())],
        }
    }

    fn mem_wal(fsync_every: u64) -> Wal {
        Wal::create(Box::new(MemDisk::new()), DurabilityConfig::deterministic(fsync_every), b"init")
            .unwrap()
    }

    #[test]
    fn group_commit_advances_durable_in_batches() {
        let mut wal = mem_wal(4);
        for r in 0..10 {
            wal.append(&delivery(r)).unwrap();
        }
        // Rounds 0..8 hit two count-triggered syncs; 8..10 are pending.
        assert_eq!(wal.appended_rounds(), 10);
        assert_eq!(wal.durable_rounds(), 8);
        assert_eq!(wal.unsynced_rounds(), 2);
        assert!(wal.sync().unwrap());
        assert_eq!(wal.durable_rounds(), 10);
    }

    #[test]
    fn recover_replays_synced_suffix_and_drops_unsynced_tail() {
        let mut wal = mem_wal(4);
        for r in 0..10 {
            wal.append(&delivery(r)).unwrap();
        }
        let mut disk = wal.into_disk();
        disk.as_any_mut().downcast_mut::<MemDisk>().unwrap().crash();
        let (wal, rec) = Wal::recover(disk, DurabilityConfig::deterministic(4)).unwrap();
        assert_eq!(rec.epoch, 0);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"init"[..]));
        assert_eq!(rec.snapshot_covers, 0);
        assert_eq!(rec.tip(), 8, "unsynced rounds 8,9 roll back");
        assert_eq!(rec.suffix.len(), 8);
        for (i, d) in rec.suffix.iter().enumerate() {
            assert_eq!(*d, delivery(i as Round));
        }
        assert!(rec.torn.is_none());
        assert_eq!(wal.appended_rounds(), 8);
        assert_eq!(wal.durable_rounds(), 8);
    }

    #[test]
    fn recover_trims_torn_tail_and_appends_continue() {
        let mut wal2 = mem_wal(0); // no count trigger: nothing auto-syncs
        for r in 0..3 {
            wal2.append(&delivery(r)).unwrap();
        }
        assert!(wal2.sync().unwrap());
        wal2.append(&delivery(3)).unwrap(); // unsynced round 3
        let mut disk2 = wal2.into_disk();
        {
            let mem = disk2.as_any_mut().downcast_mut::<MemDisk>().unwrap();
            let name = segment_name(0, 0);
            let unsynced = mem.unsynced_len(&name);
            assert!(unsynced > 3);
            mem.tear(&name, 3); // 3 bytes of the torn frame survive
            mem.crash();
        }
        let (mut wal3, rec) = Wal::recover(disk2, DurabilityConfig::deterministic(1)).unwrap();
        assert_eq!(rec.tip(), 3);
        let torn = rec.torn.expect("tail must be classified torn");
        assert_eq!(torn.error, FrameError::Truncated);
        // The trimmed log accepts round 3 again and recovers it in full.
        wal3.append(&delivery(3)).unwrap();
        let mut disk3 = wal3.into_disk();
        disk3.as_any_mut().downcast_mut::<MemDisk>().unwrap().crash();
        let (_, rec2) = Wal::recover(disk3, DurabilityConfig::deterministic(1)).unwrap();
        assert_eq!(rec2.tip(), 4);
        assert!(rec2.torn.is_none());
    }

    #[test]
    fn checkpoint_truncates_and_recovery_uses_snapshot() {
        let mut cfg = DurabilityConfig::deterministic(1);
        cfg.segment_bytes = 64; // force rotation
        let mut wal = Wal::create(Box::new(MemDisk::new()), cfg.clone(), b"init").unwrap();
        for r in 0..6 {
            wal.append(&delivery(r)).unwrap();
        }
        assert!(wal.checkpoint(b"state-after-6").unwrap());
        assert_eq!(wal.snapshot_covers(), 6);
        for r in 6..9 {
            wal.append(&delivery(r)).unwrap();
        }
        let mut disk = wal.into_disk();
        disk.as_any_mut().downcast_mut::<MemDisk>().unwrap().crash();
        let (_, rec) = Wal::recover(disk, cfg).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state-after-6"[..]));
        assert_eq!(rec.snapshot_covers, 6);
        assert_eq!(rec.suffix.iter().map(|d| d.round).collect::<Vec<_>>(), vec![6, 7, 8]);
    }

    #[test]
    fn checkpoint_under_suspended_sync_is_abandoned() {
        let mut wal = mem_wal(1);
        for r in 0..4 {
            wal.append(&delivery(r)).unwrap();
        }
        wal.disk_mut().as_any_mut().downcast_mut::<MemDisk>().unwrap().set_sync_suspended(true);
        assert!(!wal.checkpoint(b"not-durable").unwrap());
        assert_eq!(wal.snapshot_covers(), 0, "abandoned checkpoint must not truncate");
        let mut disk = wal.into_disk();
        disk.as_any_mut().downcast_mut::<MemDisk>().unwrap().crash();
        let (_, rec) = Wal::recover(disk, DurabilityConfig::deterministic(1)).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"init"[..]));
        assert_eq!(rec.tip(), 4, "synced rounds survive the failed checkpoint");
    }

    #[test]
    fn begin_epoch_resets_rounds_and_drops_old_files() {
        let mut wal = mem_wal(1);
        for r in 0..5 {
            wal.append(&delivery(r)).unwrap();
        }
        wal.begin_epoch(1, b"settled").unwrap();
        assert_eq!(wal.epoch(), 1);
        assert_eq!(wal.appended_rounds(), 0);
        wal.append(&delivery(0)).unwrap();
        let mut disk = wal.into_disk();
        disk.as_any_mut().downcast_mut::<MemDisk>().unwrap().crash();
        let (_, rec) = Wal::recover(disk, DurabilityConfig::deterministic(1)).unwrap();
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"settled"[..]));
        assert_eq!(rec.suffix.iter().map(|d| d.round).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn segment_rotation_spans_recovery() {
        let mut cfg = DurabilityConfig::deterministic(1);
        cfg.segment_bytes = 48; // a couple of frames per segment
        let mut wal = Wal::create(Box::new(MemDisk::new()), cfg.clone(), b"").unwrap();
        for r in 0..12 {
            wal.append(&delivery(r)).unwrap();
        }
        let mut disk = wal.into_disk();
        let mem = disk.as_any_mut().downcast_mut::<MemDisk>().unwrap();
        let segments = mem.list().unwrap().iter().filter(|n| n.starts_with("wal-")).count();
        assert!(segments > 1, "rotation must have produced multiple segments");
        mem.crash();
        let (_, rec) = Wal::recover(disk, cfg).unwrap();
        assert_eq!(rec.tip(), 12);
        assert_eq!(
            rec.suffix.iter().map(|d| d.round).collect::<Vec<_>>(),
            (0..12).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scrub_verifies_clean_log() {
        let mut cfg = DurabilityConfig::deterministic(1);
        cfg.segment_bytes = 48;
        let mut wal = Wal::create(Box::new(MemDisk::new()), cfg, b"init").unwrap();
        for r in 0..8 {
            wal.append(&delivery(r)).unwrap();
        }
        let report = wal.scrub().unwrap();
        assert_eq!(report.frames, 8);
        assert!(report.segments > 1, "rotation should have split the log");
        assert!(report.snapshot_ok);
        assert!(report.torn.is_none());
    }

    #[test]
    fn scrub_classifies_mid_log_rot() {
        let mut wal = mem_wal(1);
        for r in 0..6 {
            wal.append(&delivery(r)).unwrap();
        }
        // Flip one bit inside round 1's frame: acknowledged history
        // with valid frames after it — rot, not a torn tail.
        let name = segment_name(0, 0);
        let frame_len = {
            let mem = wal.disk_mut().as_any_mut().downcast_mut::<MemDisk>().unwrap();
            let len = mem.read(&name).unwrap().unwrap().len() / 6;
            assert!(mem.rot(&name, (len + 10) * 8));
            len
        };
        let err = wal.scrub().expect_err("rot must fail the scrub");
        let rot = rot_error(&err).expect("error must carry a typed MidLogRot");
        assert_eq!(rot.segment, name);
        assert_eq!(rot.offset, frame_len, "round 0 verified, rot found at round 1's frame");
        assert_eq!(rot.round, 1);
    }

    #[test]
    fn scrub_reports_torn_tail_without_trimming() {
        let mut wal = mem_wal(0);
        for r in 0..3 {
            wal.append(&delivery(r)).unwrap();
        }
        assert!(wal.sync().unwrap());
        wal.append(&delivery(3)).unwrap();
        let name = segment_name(0, 0);
        let (torn_len, full_len) = {
            let mem = wal.disk_mut().as_any_mut().downcast_mut::<MemDisk>().unwrap();
            let full = mem.read(&name).unwrap().unwrap().len();
            mem.tear(&name, 3);
            mem.crash();
            (mem.read(&name).unwrap().unwrap().len(), full)
        };
        assert!(torn_len < full_len);
        let report = wal.scrub().unwrap();
        assert_eq!(report.frames, 3);
        let torn = report.torn.expect("trailing partial frame is torn, not rot");
        assert_eq!(torn.error, FrameError::Truncated);
        // Read-only: the torn bytes are still on disk for recover().
        let mem = wal.disk_mut().as_any_mut().downcast_mut::<MemDisk>().unwrap();
        assert_eq!(mem.read(&name).unwrap().unwrap().len(), torn_len);
    }

    #[test]
    fn recover_refuses_to_trim_mid_log_rot() {
        let mut wal = mem_wal(1);
        for r in 0..6 {
            wal.append(&delivery(r)).unwrap();
        }
        let name = segment_name(0, 0);
        let mut disk = wal.into_disk();
        {
            let mem = disk.as_any_mut().downcast_mut::<MemDisk>().unwrap();
            let len = mem.read(&name).unwrap().unwrap().len();
            // Damage round 2's frame (well below the durable tail).
            assert!(mem.rot(&name, (len / 3) * 8 + 4));
            mem.crash();
        }
        let err = Wal::recover(disk, DurabilityConfig::deterministic(1))
            .expect_err("recovery must not silently truncate acknowledged rounds");
        let rot = rot_error(&err).expect("typed MidLogRot");
        assert_eq!(rot.segment, name);
        assert!(rot.round < 6);
    }

    #[test]
    fn recover_classifies_rot_in_non_final_segment() {
        let mut cfg = DurabilityConfig::deterministic(1);
        cfg.segment_bytes = 48; // a couple of frames per segment
        let mut wal = Wal::create(Box::new(MemDisk::new()), cfg.clone(), b"").unwrap();
        for r in 0..12 {
            wal.append(&delivery(r)).unwrap();
        }
        let mut disk = wal.into_disk();
        let first_segment = {
            let mem = disk.as_any_mut().downcast_mut::<MemDisk>().unwrap();
            let name = mem.list().unwrap().into_iter().find(|n| n.starts_with("wal-")).unwrap();
            // Hit the very first length header: even with the frame
            // structure destroyed, later segments prove this is rot.
            assert!(mem.rot(&name, 0));
            mem.crash();
            name
        };
        let err = Wal::recover(disk, cfg).expect_err("rot with later segments present");
        let rot = rot_error(&err).expect("typed MidLogRot");
        assert_eq!(rot.segment, first_segment);
        assert_eq!(rot.offset, 0);
    }

    #[test]
    fn out_of_order_append_rejected() {
        let mut wal = mem_wal(1);
        wal.append(&delivery(0)).unwrap();
        assert!(wal.append(&delivery(2)).is_err());
    }
}
