//! Incremental catch-up: stream `snapshot-at-R + log suffix (R, tip]`
//! in bounded chunks instead of copying full state in one message.
//!
//! A rejoining or lagging server does not need the whole history — it
//! needs a snapshot as old as (or older than) its own durable tip plus
//! the agreed rounds after it. [`CatchupSource`] serialises exactly
//! that into self-describing chunks no larger than the configured
//! [`catchup_chunk_bytes`] (plus fixed framing overhead), and
//! [`CatchupSink`] reassembles and validates them on the other side.
//! Both ends are pure byte transformers: the `Service` layer decides
//! *what* to stream (which snapshot, which suffix) and the transport
//! decides *how* chunks travel.
//!
//! Chunk wire format: each chunk is one checksummed frame
//! ([`allconcur_core::wire`]) whose payload starts with a tag byte —
//!
//! ```text
//!   0 Begin        [base: u64 le] [tip: u64 le] [has_snapshot: u8]
//!                  [snapshot_len: u64 le]
//!   1 SnapshotPart raw snapshot bytes (concatenate in order)
//!   2 Rounds       inner frames, each wrapping encode_delivery(round)
//!   3 End          (empty)
//! ```
//!
//! [`catchup_chunk_bytes`]: crate::config::DurabilityConfig::catchup_chunk_bytes

use allconcur_core::delivery::Delivery;
use allconcur_core::wire::{decode_delivery, encode_delivery, put_frame, read_frame, scan_frames};
use allconcur_core::Round;
use bytes::BufMut;
use std::io;

const TAG_BEGIN: u8 = 0;
const TAG_SNAPSHOT_PART: u8 = 1;
const TAG_ROUNDS: u8 = 2;
const TAG_END: u8 = 3;

fn invalid(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Little-endian `u64` at the front of `bytes`, when there is one.
fn le_u64(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?))
}

/// Producer side: chops one catch-up transfer into bounded chunks.
pub struct CatchupSource {
    chunks: std::vec::IntoIter<Vec<u8>>,
    total: usize,
}

impl CatchupSource {
    /// Build the chunk stream for a transfer of `snapshot` (state after
    /// rounds `0..base`; `None` when the receiver already holds
    /// everything below `base`) plus `suffix` (deliveries for rounds
    /// `base..base + suffix.len()`), split at `chunk_bytes`.
    pub fn new(
        snapshot: Option<&[u8]>,
        base: Round,
        suffix: &[Delivery],
        chunk_bytes: usize,
    ) -> Self {
        let chunk_bytes = chunk_bytes.max(1);
        let tip = base + suffix.len() as Round;
        let mut chunks: Vec<Vec<u8>> = Vec::new();

        let mut begin = Vec::with_capacity(26);
        begin.push(TAG_BEGIN);
        begin.put_u64_le(base);
        begin.put_u64_le(tip);
        begin.push(u8::from(snapshot.is_some()));
        begin.put_u64_le(snapshot.map(|s| s.len() as u64).unwrap_or(0));
        chunks.push(frame_chunk(&begin));

        if let Some(snapshot) = snapshot {
            for part in snapshot.chunks(chunk_bytes) {
                let mut payload = Vec::with_capacity(1 + part.len());
                payload.push(TAG_SNAPSHOT_PART);
                payload.extend_from_slice(part);
                chunks.push(frame_chunk(&payload));
            }
        }

        let mut rounds_payload: Vec<u8> = vec![TAG_ROUNDS];
        let mut record = Vec::new();
        for delivery in suffix {
            record.clear();
            encode_delivery(delivery, &mut record);
            // Flush before overflowing the bound — but always carry at
            // least one round per chunk so oversized rounds still move.
            if rounds_payload.len() > 1 && rounds_payload.len() + record.len() > chunk_bytes {
                chunks.push(frame_chunk(&rounds_payload));
                rounds_payload.truncate(1);
            }
            put_frame(&mut rounds_payload, &record);
        }
        if rounds_payload.len() > 1 {
            chunks.push(frame_chunk(&rounds_payload));
        }

        chunks.push(frame_chunk(&[TAG_END]));
        let total = chunks.len();
        CatchupSource { chunks: chunks.into_iter(), total }
    }

    /// Total chunks this transfer will produce.
    pub fn total_chunks(&self) -> usize {
        self.total
    }
}

impl Iterator for CatchupSource {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        self.chunks.next()
    }
}

fn frame_chunk(payload: &[u8]) -> Vec<u8> {
    let mut chunk = Vec::with_capacity(8 + payload.len());
    put_frame(&mut chunk, payload);
    chunk
}

/// The reassembled content of one catch-up transfer.
#[derive(Debug, PartialEq, Eq)]
pub struct CatchupPayload {
    /// Snapshot state after rounds `0..base`, when one was streamed.
    pub snapshot: Option<Vec<u8>>,
    /// Rounds covered by `snapshot` / first round of `suffix`.
    pub base: Round,
    /// Deliveries for rounds `base..base + suffix.len()`.
    pub suffix: Vec<Delivery>,
}

/// Consumer side: validates and reassembles a chunk stream.
pub struct CatchupSink {
    started: bool,
    done: bool,
    base: Round,
    tip: Round,
    expect_snapshot: bool,
    snapshot_len: usize,
    snapshot: Vec<u8>,
    suffix: Vec<Delivery>,
}

impl CatchupSink {
    /// An empty sink awaiting the `Begin` chunk.
    pub fn new() -> Self {
        CatchupSink {
            started: false,
            done: false,
            base: 0,
            tip: 0,
            expect_snapshot: false,
            snapshot_len: 0,
            snapshot: Vec::new(),
            suffix: Vec::new(),
        }
    }

    /// Feed one chunk. Returns `true` once the `End` chunk arrived.
    /// Chunks must arrive in stream order (the transfer rides an
    /// ordered transport); any framing, checksum, ordering, or
    /// contiguity violation is an error.
    pub fn accept(&mut self, chunk: &[u8]) -> io::Result<bool> {
        if self.done {
            return Err(invalid("catch-up chunk after End"));
        }
        let (payload, end) =
            read_frame(chunk, 0).map_err(|e| invalid(&format!("catch-up chunk: {e}")))?;
        if end != chunk.len() || payload.is_empty() {
            return Err(invalid("catch-up chunk has trailing or missing bytes"));
        }
        match payload[0] {
            TAG_BEGIN => {
                if self.started {
                    return Err(invalid("duplicate catch-up Begin"));
                }
                if payload.len() != 26 {
                    return Err(invalid("malformed catch-up Begin"));
                }
                self.base = le_u64(&payload[1..9]).ok_or_else(|| invalid("short Begin field"))?;
                self.tip = le_u64(&payload[9..17]).ok_or_else(|| invalid("short Begin field"))?;
                self.expect_snapshot = payload[17] != 0;
                self.snapshot_len =
                    le_u64(&payload[18..26]).ok_or_else(|| invalid("short Begin field"))? as usize;
                if self.tip < self.base {
                    return Err(invalid("catch-up tip below base"));
                }
                self.started = true;
            }
            TAG_SNAPSHOT_PART => {
                if !self.started || !self.expect_snapshot {
                    return Err(invalid("unexpected catch-up snapshot part"));
                }
                self.snapshot.extend_from_slice(&payload[1..]);
                if self.snapshot.len() > self.snapshot_len {
                    return Err(invalid("catch-up snapshot longer than declared"));
                }
            }
            TAG_ROUNDS => {
                if !self.started {
                    return Err(invalid("catch-up rounds before Begin"));
                }
                let (records, tail) = scan_frames(&payload[1..]);
                if tail.is_some() {
                    return Err(invalid("catch-up rounds chunk has a bad inner frame"));
                }
                for record in records {
                    let delivery = decode_delivery(record)
                        .map_err(|e| invalid(&format!("catch-up round record: {e}")))?;
                    let expected = self.base + self.suffix.len() as Round;
                    if delivery.round != expected {
                        return Err(invalid(&format!(
                            "catch-up rounds not contiguous: got {}, expected {expected}",
                            delivery.round
                        )));
                    }
                    self.suffix.push(delivery);
                }
            }
            TAG_END => {
                if !self.started {
                    return Err(invalid("catch-up End before Begin"));
                }
                if self.expect_snapshot && self.snapshot.len() != self.snapshot_len {
                    return Err(invalid("catch-up snapshot shorter than declared"));
                }
                let got_tip = self.base + self.suffix.len() as Round;
                if got_tip != self.tip {
                    return Err(invalid(&format!(
                        "catch-up suffix ends at {got_tip}, Begin declared {}",
                        self.tip
                    )));
                }
                self.done = true;
            }
            tag => return Err(invalid(&format!("unknown catch-up chunk tag {tag}"))),
        }
        Ok(self.done)
    }

    /// Unwrap the reassembled transfer. Errors unless the stream ended
    /// cleanly (`accept` returned `true`).
    pub fn finish(self) -> io::Result<CatchupPayload> {
        if !self.done {
            return Err(invalid("catch-up stream ended without an End chunk"));
        }
        Ok(CatchupPayload {
            snapshot: self.expect_snapshot.then_some(self.snapshot),
            base: self.base,
            suffix: self.suffix,
        })
    }
}

impl Default for CatchupSink {
    fn default() -> Self {
        CatchupSink::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn delivery(round: Round, fill: usize) -> Delivery {
        Delivery { round, messages: vec![(0, Bytes::from(vec![round as u8; fill]))] }
    }

    fn transfer(
        snapshot: Option<&[u8]>,
        base: Round,
        suffix: &[Delivery],
        chunk_bytes: usize,
    ) -> CatchupPayload {
        let mut sink = CatchupSink::new();
        let mut done = false;
        for chunk in CatchupSource::new(snapshot, base, suffix, chunk_bytes) {
            assert!(!done, "chunks after End");
            // The bound limits payload content; framing + tag + one
            // oversized record are the only permitted overflow.
            done = sink.accept(&chunk).unwrap();
        }
        assert!(done);
        sink.finish().unwrap()
    }

    #[test]
    fn snapshot_and_suffix_round_trip_chunked() {
        let snapshot = vec![7u8; 1000];
        let suffix: Vec<Delivery> = (10..25).map(|r| delivery(r, 40)).collect();
        let got = transfer(Some(&snapshot), 10, &suffix, 128);
        assert_eq!(got.snapshot.as_deref(), Some(&snapshot[..]));
        assert_eq!(got.base, 10);
        assert_eq!(got.suffix, suffix);
    }

    #[test]
    fn frames_only_transfer_has_no_snapshot() {
        let suffix: Vec<Delivery> = (3..6).map(|r| delivery(r, 4)).collect();
        let got = transfer(None, 3, &suffix, 4096);
        assert_eq!(got.snapshot, None);
        assert_eq!(got.suffix, suffix);
    }

    #[test]
    fn empty_transfer_is_valid() {
        let got = transfer(None, 0, &[], 64);
        assert_eq!(got, CatchupPayload { snapshot: None, base: 0, suffix: vec![] });
    }

    #[test]
    fn chunks_respect_the_bound() {
        let snapshot = vec![1u8; 10_000];
        let suffix: Vec<Delivery> = (0..50).map(|r| delivery(r, 30)).collect();
        let source = CatchupSource::new(Some(&snapshot), 0, &suffix, 256);
        assert!(source.total_chunks() > 40, "must actually split");
        for chunk in source {
            // payload bound + frame header + tag + inner-frame slack for
            // the one record that crosses the boundary.
            assert!(chunk.len() <= 256 + 8 + 1 + 64, "chunk of {} bytes", chunk.len());
        }
    }

    #[test]
    fn corrupted_chunk_rejected() {
        let suffix: Vec<Delivery> = (0..4).map(|r| delivery(r, 8)).collect();
        let chunks: Vec<Vec<u8>> = CatchupSource::new(None, 0, &suffix, 64).collect();
        for i in 0..chunks.len() {
            let mut sink = CatchupSink::new();
            let mut failed = false;
            for (j, chunk) in chunks.iter().enumerate() {
                let mut bytes = chunk.clone();
                if i == j {
                    let last = bytes.len() - 1;
                    bytes[last] ^= 0xFF;
                }
                match sink.accept(&bytes) {
                    Ok(_) => {}
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            assert!(failed, "flipping a byte of chunk {i} must be caught");
        }
    }

    #[test]
    fn gap_in_rounds_rejected() {
        let suffix = vec![delivery(5, 4), delivery(7, 4)]; // gap at 6
        let chunks: Vec<Vec<u8>> = CatchupSource::new(None, 5, &suffix, 4096).collect();
        let mut sink = CatchupSink::new();
        let mut failed = false;
        for chunk in &chunks {
            if sink.accept(chunk).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);
    }

    #[test]
    fn truncated_stream_rejected_at_finish() {
        let suffix = vec![delivery(0, 4)];
        let chunks: Vec<Vec<u8>> = CatchupSource::new(None, 0, &suffix, 4096).collect();
        let mut sink = CatchupSink::new();
        for chunk in &chunks[..chunks.len() - 1] {
            sink.accept(chunk).unwrap();
        }
        assert!(sink.finish().is_err());
    }
}
