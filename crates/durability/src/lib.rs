#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # allconcur-durability — write-ahead log, crash recovery, catch-up
//!
//! AllConcur agrees on a totally ordered stream of rounds; this crate
//! makes that stream survive power loss. Each server owns a
//! [`wal::Wal`] over a [`disk::VirtualDisk`]:
//!
//! * **Logging** — every agreed round is appended as a checksummed,
//!   length-prefixed frame *before* it is A-delivered to the state
//!   machine, with fsync-batched group commit
//!   ([`config::DurabilityConfig`]), segment rotation, and truncation
//!   after snapshots.
//! * **Recovery** — [`wal::Wal::recover`] rebuilds a server from its
//!   newest durable snapshot plus the longest checksummed contiguous
//!   log suffix, classifying and trimming torn tail writes.
//! * **Catch-up** — [`catchup::CatchupSource`] / [`catchup::CatchupSink`]
//!   stream `snapshot-at-R + suffix (R, tip]` in bounded chunks, so a
//!   rejoining or lagging server transfers only what its own log does
//!   not cover.
//!
//! The disk layer is virtualised: [`disk::MemDisk`] keeps simulated
//! runs deterministic and lets the nemesis harness inject byte-exact
//! torn writes and disk-slow fsync spikes; [`disk::FileDisk`] backs
//! real deployments with ordinary files. The `Service` layer in
//! `allconcur-rsm` composes these into durable acknowledgment: a
//! command's typed response is withheld until its round is fsynced on
//! at least one server.

pub mod catchup;
pub mod config;
pub mod disk;
pub mod wal;

pub use catchup::{CatchupPayload, CatchupSink, CatchupSource};
pub use config::DurabilityConfig;
pub use disk::{DurabilityStore, FileDisk, MemDisk, VirtualDisk};
pub use wal::{rot_error, MidLogRot, RecoverOutcome, Recovered, ScrubReport, TornTail, Wal};
