//! Durability tuning knobs.

use std::time::Duration;

/// Group-commit and layout policy for one server's write-ahead log.
///
/// Group commit trades the durable-acknowledgment lag of a command for
/// fsync amortisation: the WAL appends every agreed round immediately
/// but only forces the disk every [`fsync_every_n_rounds`] rounds (or
/// when [`fsync_interval`] has elapsed since the last forced sync,
/// whichever comes first). A crash loses at most the unsynced tail —
/// and the `Service` layer withholds typed responses until the round is
/// durable on at least one server, so *acknowledged* commands are never
/// in that tail.
///
/// [`fsync_every_n_rounds`]: DurabilityConfig::fsync_every_n_rounds
/// [`fsync_interval`]: DurabilityConfig::fsync_interval
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Force an fsync after this many appended rounds (group commit).
    /// `1` syncs every round (durable ack per round, slowest); `0`
    /// disables count-based syncing entirely — only
    /// [`DurabilityConfig::fsync_interval`], idle flushes, and epoch
    /// boundaries force the disk.
    pub fsync_every_n_rounds: u64,
    /// Upper bound on how long appended rounds may stay unsynced, as
    /// wall-clock time since the last forced sync. `None` disables the
    /// time-based trigger — deterministic runs (the nemesis executor)
    /// use count-based group commit only, so the set of durable rounds
    /// at a crash point is a pure function of the schedule.
    pub fsync_interval: Option<Duration>,
    /// Rotate to a fresh log segment once the active one exceeds this
    /// many bytes. Bounds the blast radius of a torn tail and the unit
    /// of post-snapshot truncation.
    pub segment_bytes: usize,
    /// Write a durable snapshot and truncate fully-covered segments
    /// every this many appended rounds (`0` = only at epoch
    /// boundaries). Checkpoints bound both log length and the size of a
    /// catch-up transfer: a lagging server streams `snapshot at R +
    /// log suffix (R, tip]`, never the whole history.
    pub checkpoint_every_rounds: u64,
    /// Bound on one chunk of an incremental catch-up transfer (snapshot
    /// bytes and log-suffix bytes are both split at this granularity).
    pub catchup_chunk_bytes: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync_every_n_rounds: 8,
            fsync_interval: Some(Duration::from_millis(5)),
            segment_bytes: 1 << 20,
            checkpoint_every_rounds: 1024,
            catchup_chunk_bytes: 64 << 10,
        }
    }
}

impl DurabilityConfig {
    /// A fully deterministic profile for simulated runs: count-based
    /// group commit only (no wall-clock trigger), so which rounds are
    /// durable at any crash point replays exactly.
    pub fn deterministic(fsync_every_n_rounds: u64) -> Self {
        DurabilityConfig {
            fsync_every_n_rounds,
            fsync_interval: None,
            ..DurabilityConfig::default()
        }
    }
}
