//! The [`VirtualDisk`] abstraction and its two implementations.
//!
//! The WAL never touches `std::fs` directly: it writes through a
//! [`VirtualDisk`], so the same log/recovery code runs against
//!
//! * [`MemDisk`] — a deterministic in-memory disk with *explicit* crash
//!   semantics: appended bytes become durable only at a successful
//!   [`VirtualDisk::sync`], [`MemDisk::crash`] discards everything
//!   after the durable watermark, and [`MemDisk::tear`] keeps a
//!   byte-exact prefix of the unsynced tail first — the torn-write
//!   injection surface the nemesis harness drives;
//! * [`FileDisk`] — real files in one directory, `fsync` via
//!   `File::sync_data`, atomic snapshot replacement via
//!   write-temp-then-rename.

use std::any::Any;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;

/// A minimal flat-namespace disk: named append-only files plus
/// atomically replaced files, with an explicit sync barrier.
pub trait VirtualDisk: Send {
    /// Names of every file present, sorted.
    fn list(&self) -> io::Result<Vec<String>>;

    /// The full contents of `name`, or `None` if absent.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Append `data` to `name`, creating it if absent. Appended bytes
    /// are *not* durable until [`VirtualDisk::sync`] reports success.
    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Replace `name` with `data` atomically (all-or-nothing across a
    /// crash). Durable after the next successful [`VirtualDisk::sync`].
    fn write_atomic(&mut self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Delete `name`. Deleting an absent file is not an error.
    fn remove(&mut self, name: &str) -> io::Result<()>;

    /// Force every outstanding write to stable storage. Returns `true`
    /// when the barrier completed — a [`MemDisk`] under an injected
    /// disk-slow spike returns `Ok(false)` (the sync did not complete;
    /// nothing new is durable), which the WAL's group commit treats as
    /// "keep the rounds pending".
    fn sync(&mut self) -> io::Result<bool>;

    /// Escape hatch for fault injection (downcast to [`MemDisk`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// One in-memory file: its bytes plus the durable watermark.
#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed to survive [`MemDisk::crash`]. For atomically
    /// replaced files the durable image is kept separately (`shadow`),
    /// because replacement is all-or-nothing, not prefix-stable.
    durable_len: usize,
    /// The last durable image of an atomically replaced file, when the
    /// current `data` has not been synced yet.
    shadow: Option<Vec<u8>>,
}

/// Deterministic in-memory disk with injectable crash/torn-write/
/// slow-fsync faults. The canonical backend for simulated deployments:
/// every byte of post-crash state is an explicit function of the
/// writes, syncs, and injected faults that preceded it.
#[derive(Debug, Default)]
pub struct MemDisk {
    files: BTreeMap<String, MemFile>,
    /// While `true`, [`VirtualDisk::sync`] returns `Ok(false)` and
    /// advances nothing — a disk whose fsyncs have stopped completing.
    sync_suspended: bool,
    /// Completed sync barriers.
    syncs: u64,
}

impl MemDisk {
    /// An empty disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Inject or clear a disk-slow spike: while set, sync barriers do
    /// not complete (writes keep appending, durability stalls).
    pub fn set_sync_suspended(&mut self, suspended: bool) {
        self.sync_suspended = suspended;
    }

    /// Whether a disk-slow spike is active.
    pub fn sync_suspended(&self) -> bool {
        self.sync_suspended
    }

    /// Completed sync barriers so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Unsynced bytes of `name`'s append tail (0 if absent or clean).
    pub fn unsynced_len(&self, name: &str) -> usize {
        self.files.get(name).map(|f| f.data.len().saturating_sub(f.durable_len)).unwrap_or(0)
    }

    /// Torn-write injection: declare that `keep` bytes of `name`'s
    /// *unsynced* tail reached the platter before the power loss (the
    /// rest never will). Clamped to the actual unsynced length. Call
    /// before [`MemDisk::crash`] to leave a byte-exact partial frame
    /// for recovery to classify.
    pub fn tear(&mut self, name: &str, keep: usize) {
        if let Some(file) = self.files.get_mut(name) {
            let unsynced = file.data.len().saturating_sub(file.durable_len);
            file.durable_len += keep.min(unsynced);
        }
    }

    /// Bit-rot injection: flip one bit of `name` in place, in both the
    /// live bytes *and* the durable image. Unlike [`MemDisk::tear`]
    /// (which only shortens the unsynced tail), rot is durable damage:
    /// it survives [`MemDisk::crash`] and sits below the durable
    /// watermark, which is exactly what recovery must refuse to trim.
    /// Returns `false` when the file is absent or `bit / 8` is past its
    /// end.
    pub fn rot(&mut self, name: &str, bit: usize) -> bool {
        let Some(file) = self.files.get_mut(name) else { return false };
        let byte = bit / 8;
        if byte >= file.data.len() {
            return false;
        }
        file.data[byte] ^= 1 << (bit % 8);
        // Rot the durable image too: if the byte is beyond the durable
        // watermark it lives only in the unsynced tail, and if a shadow
        // holds the durable image the same byte rots there when present.
        if let Some(shadow) = &mut file.shadow {
            if byte < shadow.len() {
                shadow[byte] ^= 1 << (bit % 8);
            }
        }
        true
    }

    /// Power loss: every file reverts to its durable image — append
    /// tails truncate to the durable watermark (as adjusted by
    /// [`MemDisk::tear`]), unsynced atomic replacements revert to their
    /// shadow. A crash also power-cycles the disk: a pending disk-slow
    /// spike does not survive it.
    pub fn crash(&mut self) {
        for file in self.files.values_mut() {
            if let Some(shadow) = file.shadow.take() {
                file.data = shadow;
                file.durable_len = file.data.len();
            } else {
                file.data.truncate(file.durable_len);
            }
        }
        self.sync_suspended = false;
    }
}

impl VirtualDisk for MemDisk {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.files.get(name).map(|f| f.data.clone()))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files.entry(name.to_string()).or_default().data.extend_from_slice(data);
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let file = self.files.entry(name.to_string()).or_default();
        // Preserve the previous durable image until the next sync: an
        // unsynced replacement must revert on crash, not tear.
        if file.shadow.is_none() {
            file.shadow = Some(file.data[..file.durable_len].to_vec());
        }
        file.data = data.to_vec();
        file.durable_len = 0;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.files.remove(name);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<bool> {
        if self.sync_suspended {
            return Ok(false);
        }
        for file in self.files.values_mut() {
            file.durable_len = file.data.len();
            file.shadow = None;
        }
        self.syncs += 1;
        Ok(true)
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Real files under one directory. `sync` walks every file written
/// since the last barrier and `sync_data`s it; atomic replacement goes
/// through write-temp + rename (the classic crash-safe sequence).
#[derive(Debug)]
pub struct FileDisk {
    root: PathBuf,
    /// Files dirtied since the last sync barrier.
    dirty: Vec<String>,
}

impl FileDisk {
    /// Open (creating if needed) the directory `root` as a disk.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FileDisk { root, dirty: Vec::new() })
    }

    /// The backing directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn mark_dirty(&mut self, name: &str) {
        if !self.dirty.iter().any(|d| d == name) {
            self.dirty.push(name.to_string());
        }
    }
}

impl VirtualDisk for FileDisk {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.path(name)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new().create(true).append(true).open(self.path(name))?;
        file.write_all(data)?;
        self.mark_dirty(name);
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(data)?;
            // The temp image must be on disk before the rename commits
            // it, or a crash could promote a hole.
            file.sync_data()?;
        }
        fs::rename(&tmp, self.path(name))?;
        self.mark_dirty(name);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn sync(&mut self) -> io::Result<bool> {
        for name in std::mem::take(&mut self.dirty) {
            match fs::File::open(self.path(&name)) {
                Ok(file) => file.sync_data()?,
                // Dirtied then removed (post-snapshot truncation).
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One [`VirtualDisk`] per server of a deployment — what a durable
/// `Service` is constructed over and what survives its crash.
pub struct DurabilityStore {
    disks: Vec<Box<dyn VirtualDisk>>,
}

impl DurabilityStore {
    /// `n` independent in-memory disks (simulated deployments).
    pub fn memory(n: usize) -> Self {
        DurabilityStore { disks: (0..n).map(|_| Box::new(MemDisk::new()) as Box<_>).collect() }
    }

    /// `n` directories `server-<i>` under `root` (real deployments).
    pub fn on_disk(root: impl Into<PathBuf>, n: usize) -> io::Result<Self> {
        let root = root.into();
        let mut disks: Vec<Box<dyn VirtualDisk>> = Vec::with_capacity(n);
        for i in 0..n {
            disks.push(Box::new(FileDisk::open(root.join(format!("server-{i}")))?));
        }
        Ok(DurabilityStore { disks })
    }

    /// Wrap pre-built disks.
    pub fn from_disks(disks: Vec<Box<dyn VirtualDisk>>) -> Self {
        DurabilityStore { disks }
    }

    /// Number of per-server disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Whether the store holds no disks.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Server `i`'s disk.
    pub fn disk_mut(&mut self, i: usize) -> &mut dyn VirtualDisk {
        self.disks[i].as_mut()
    }

    /// Server `i`'s disk as a [`MemDisk`], when it is one — the fault-
    /// injection surface (crash, tear, slow-sync).
    pub fn mem_disk_mut(&mut self, i: usize) -> Option<&mut MemDisk> {
        self.disks[i].as_any_mut().downcast_mut::<MemDisk>()
    }

    /// Simulate whole-cluster power loss: crash every in-memory disk
    /// (file-backed disks are already crash-consistent by construction).
    pub fn crash_all(&mut self) {
        for i in 0..self.disks.len() {
            if let Some(mem) = self.mem_disk_mut(i) {
                mem.crash();
            }
        }
    }

    /// Unwrap into the per-server disks.
    pub fn into_disks(self) -> Vec<Box<dyn VirtualDisk>> {
        self.disks
    }
}

impl std::fmt::Debug for DurabilityStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityStore").field("disks", &self.disks.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_disk_crash_discards_unsynced_tail() {
        let mut disk = MemDisk::new();
        disk.append("wal", b"durable").unwrap();
        assert!(disk.sync().unwrap());
        disk.append("wal", b"-lost").unwrap();
        disk.crash();
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"durable");
    }

    #[test]
    fn mem_disk_tear_keeps_byte_exact_prefix() {
        let mut disk = MemDisk::new();
        disk.append("wal", b"base").unwrap();
        disk.sync().unwrap();
        disk.append("wal", b"0123456789").unwrap();
        disk.tear("wal", 4);
        disk.crash();
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"base0123");
    }

    #[test]
    fn mem_disk_atomic_replace_reverts_not_tears() {
        let mut disk = MemDisk::new();
        disk.write_atomic("snap", b"old-image").unwrap();
        disk.sync().unwrap();
        disk.write_atomic("snap", b"new-image-unsynced").unwrap();
        disk.crash();
        assert_eq!(disk.read("snap").unwrap().unwrap(), b"old-image");
    }

    #[test]
    fn mem_disk_rot_survives_crash() {
        let mut disk = MemDisk::new();
        disk.append("wal", b"\x00\x00\x00\x00").unwrap();
        disk.sync().unwrap();
        assert!(disk.rot("wal", 16)); // bit 0 of byte 2
        disk.crash();
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"\x00\x00\x01\x00");
        assert!(!disk.rot("wal", 999), "out-of-range rot reports false");
        assert!(!disk.rot("absent", 0));
    }

    #[test]
    fn mem_disk_suspended_sync_completes_nothing() {
        let mut disk = MemDisk::new();
        disk.append("wal", b"data").unwrap();
        disk.set_sync_suspended(true);
        assert!(!disk.sync().unwrap());
        disk.crash(); // also clears the suspension (power cycle)
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"");
        assert!(!disk.sync_suspended());
    }

    #[test]
    fn file_disk_round_trips() {
        let root = std::env::temp_dir().join(format!("allconcur-filedisk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let mut disk = FileDisk::open(&root).unwrap();
        disk.append("wal-0", b"abc").unwrap();
        disk.append("wal-0", b"def").unwrap();
        disk.write_atomic("snap", b"state").unwrap();
        assert!(disk.sync().unwrap());
        assert_eq!(disk.read("wal-0").unwrap().unwrap(), b"abcdef");
        assert_eq!(disk.read("snap").unwrap().unwrap(), b"state");
        assert_eq!(disk.list().unwrap(), vec!["snap".to_string(), "wal-0".to_string()]);
        disk.remove("wal-0").unwrap();
        assert_eq!(disk.read("wal-0").unwrap(), None);
        let _ = fs::remove_dir_all(&root);
    }
}
