//! A hand-rolled Rust lexer, sufficient for invariant linting.
//!
//! There is no crates.io access in this build environment, so no `syn`:
//! the lexer below tokenises Rust source into identifiers and
//! punctuation while *correctly skipping* the places where forbidden
//! names may legally appear — string literals (including raw and byte
//! strings), char literals (disambiguated from lifetimes), line and
//! nested block comments — and records the lint control comments
//! (`// lint:allow(<rule>): <justification>` and `// lint:hot_path`)
//! it encounters along the way.
//!
//! A second pass over the token stream marks `#[cfg(test)]` / `#[test]`
//! items so rules can exempt test code, and resolves each
//! `lint:hot_path` marker to the body of the `fn` it precedes.

/// One lexical token: an identifier or a single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            Tok::Punct(_) => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// True if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// An inline `// lint:allow(<rule>): <justification>` marker.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment appears on.
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification text after the closing `):`, trimmed.
    pub justification: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream with comments/strings/chars removed.
    pub tokens: Vec<Token>,
    /// All `lint:allow` markers found in comments.
    pub allows: Vec<Allow>,
    /// Lines of `lint:hot_path` markers found in comments.
    pub hot_markers: Vec<u32>,
    /// Per-token flag: true when the token sits inside a
    /// `#[cfg(test)]` / `#[test]` item (attribute included).
    pub in_test: Vec<bool>,
    /// Inclusive line ranges of `fn` bodies marked `lint:hot_path`,
    /// paired with the function name.
    pub hot_regions: Vec<(String, u32, u32)>,
}

/// Lex `src` and run the region passes.
pub fn lex(src: &str) -> Lexed {
    let mut lx = lex_tokens(src);
    lx.in_test = mark_test_regions(&lx.tokens);
    lx.hot_regions = resolve_hot_regions(&lx.tokens, &lx.hot_markers);
    lx
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn lex_tokens(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            let text: String = b[start..j].iter().collect();
            parse_marker(&text, line, &mut out);
            i = j;
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            // Nested block comment.
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    bump_line!(b[j]);
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // String literals (plain). Raw/byte strings are reached through
        // the identifier path below (`r"`, `r#"`, `b"`, `br#"` ...).
        if c == '"' {
            i = skip_string(&b, i, &mut line);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            i = skip_char_or_lifetime(&b, i, &mut line);
            continue;
        }
        // Numbers: consumed and dropped (rules never match them).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            loop {
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                // Float part like `1.5`, but not a range like `0..n`.
                if j < n && b[j] == '.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                    j += 1;
                    continue;
                }
                break;
            }
            i = j;
            continue;
        }
        // Identifiers, raw identifiers, and raw/byte string prefixes.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            let word: String = b[i..j].iter().collect();
            // `r"..."`, `b"..."`, `br"..."`, `rb` doesn't exist.
            if (word == "r" || word == "b" || word == "br") && j < n && b[j] == '"' {
                i = skip_string(&b, j, &mut line);
                continue;
            }
            if (word == "r" || word == "br") && j < n && b[j] == '#' {
                // Count the hashes; a quote after them means raw string,
                // otherwise it's a raw identifier (`r#type`).
                let mut k = j;
                while k < n && b[k] == '#' {
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    i = skip_raw_string(&b, k, k - j, &mut line);
                    continue;
                }
                // Raw identifier: consume it as a plain ident.
                let mut m = k;
                while m < n && is_ident_continue(b[m]) {
                    m += 1;
                }
                let raw: String = b[k..m].iter().collect();
                out.tokens.push(Token { tok: Tok::Ident(raw), line });
                i = m;
                continue;
            }
            // Byte char literal `b'x'`.
            if word == "b" && j < n && b[j] == '\'' {
                i = skip_char_or_lifetime(&b, j, &mut line);
                continue;
            }
            out.tokens.push(Token { tok: Tok::Ident(word), line });
            i = j;
            continue;
        }
        // Everything else: single punctuation character.
        out.tokens.push(Token { tok: Tok::Punct(c), line });
        i += 1;
    }
    out
}

/// Skip a `"..."` literal starting at the opening quote; returns the
/// index one past the closing quote.
fn skip_string(b: &[char], open: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut j = open + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    n
}

/// Skip a raw string whose opening quote is at `open` with `hashes`
/// leading `#`s; returns the index one past the final `#`.
fn skip_raw_string(b: &[char], open: usize, hashes: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut j = open + 1;
    while j < n {
        if b[j] == '"' {
            let mut k = 0usize;
            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
        }
        if b[j] == '\n' {
            *line += 1;
        }
        j += 1;
    }
    n
}

/// Skip a char literal, or recognise a lifetime (which has no closing
/// quote). `open` indexes the `'`.
fn skip_char_or_lifetime(b: &[char], open: usize, line: &mut u32) -> usize {
    let n = b.len();
    if open + 1 >= n {
        return n;
    }
    let c1 = b[open + 1];
    if c1 == '\\' {
        // Escaped char: `'\n'`, `'\u{1F600}'`, `'\''` ...
        let mut j = open + 2;
        if j < n && b[j] == 'u' {
            j += 1;
            if j < n && b[j] == '{' {
                while j < n && b[j] != '}' {
                    j += 1;
                }
                j += 1;
            }
        } else {
            // One escaped character (covers \', \\, \n, \x41 partially —
            // for \x the two hex digits fall through to the quote scan).
            j += 1;
            while j < n && b[j] != '\'' {
                j += 1;
            }
        }
        while j < n && b[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(n);
    }
    if is_ident_start(c1) {
        // `'a'` is a char literal; `'a` followed by anything else is a
        // lifetime and has no closing quote.
        if open + 2 < n && b[open + 2] == '\'' {
            return open + 3;
        }
        let mut j = open + 1;
        while j < n && is_ident_continue(b[j]) {
            j += 1;
        }
        return j;
    }
    if c1 == '\n' {
        *line += 1;
    }
    // Punctuation char literal like `'('`.
    if open + 2 < n && b[open + 2] == '\'' {
        return open + 3;
    }
    open + 2
}

/// Parse a lint control comment out of line-comment text.
fn parse_marker(text: &str, line: u32, out: &mut Lexed) {
    // Strip doc-comment leaders (`/`, `!`) and whitespace.
    let t = text.trim_start_matches(['/', '!']).trim();
    if let Some(rest) = t.strip_prefix("lint:allow(") {
        let Some(close) = rest.find(')') else { return };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim();
        let justification = after.strip_prefix(':').unwrap_or("").trim().to_string();
        out.allows.push(Allow { line, rule, justification });
    } else if t.starts_with("lint:hot_path") {
        out.hot_markers.push(line);
    }
}

/// Find the index of the `}` matching the `{` at `open_idx`.
fn matching_brace(tokens: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Mark every token covered by a `#[test]` / `#[cfg(test)]` item.
///
/// An attribute is test-marking when its tokens contain the identifier
/// `test` but not `not` (so `#[cfg(not(test))]` stays in scope). The
/// marked region spans the attribute, any further attributes, and the
/// following item up to its closing `}` (or `;` for brace-less items).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if tokens[i].is_punct('#') && i + 1 < n && tokens[i + 1].is_punct('[') {
            // Find the matching `]` of the attribute.
            let mut depth = 0i64;
            let mut close = None;
            for (k, t) in tokens.iter().enumerate().skip(i + 1) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
            }
            let Some(close) = close else {
                i += 1;
                continue;
            };
            let body = &tokens[i + 2..close];
            let has_test = body.iter().any(|t| t.is_ident("test"));
            let has_not = body.iter().any(|t| t.is_ident("not"));
            if has_test && !has_not {
                // Skip over any further attributes.
                let mut j = close + 1;
                while j + 1 < n && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
                    let mut d = 0i64;
                    let mut k = j + 1;
                    while k < n {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    j = k + 1;
                }
                // The item ends at the matching `}` of its first body
                // brace, or at a top-level `;` (e.g. `#[cfg(test)] use ...`).
                let mut end = n - 1;
                let mut k = j;
                while k < n {
                    if tokens[k].is_punct('{') {
                        end = matching_brace(tokens, k).unwrap_or(n - 1);
                        break;
                    }
                    if tokens[k].is_punct(';') {
                        end = k;
                        break;
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Resolve each `lint:hot_path` marker line to the body line range of
/// the next `fn` item at or below it.
fn resolve_hot_regions(tokens: &[Token], markers: &[u32]) -> Vec<(String, u32, u32)> {
    let mut regions = Vec::new();
    for &mline in markers {
        // First `fn` token at a line >= the marker line.
        let Some(fn_idx) = tokens.iter().position(|t| t.is_ident("fn") && t.line >= mline) else {
            continue;
        };
        let name = tokens.get(fn_idx + 1).and_then(|t| t.ident()).unwrap_or("<anon>").to_string();
        // The body `{` is the first brace after the signature, at zero
        // paren/bracket depth (generics in this workspace never nest
        // braces before the body).
        let mut depth = 0i64;
        let mut open = None;
        for (k, t) in tokens.iter().enumerate().skip(fn_idx) {
            match t.tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => {
                    open = Some(k);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break, // trait fn without body
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = matching_brace(tokens, open) else {
            continue;
        };
        regions.push((name, tokens[open].line, tokens[close].line));
    }
    regions
}
