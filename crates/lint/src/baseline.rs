//! The committed baseline of grandfathered violations.
//!
//! Format: one tab-separated entry per line —
//! `rule<TAB>path<TAB>justification<TAB>snippet` — where `snippet` is
//! the trimmed source line of the violation. Matching is by
//! `(rule, path, snippet)` multiset, so entries survive line drift but
//! die loudly when the offending line is edited or removed (a stale
//! entry fails `--deny-new`, forcing the baseline to shrink honestly).
//! `#`-prefixed lines and blank lines are comments.

use crate::rules::Violation;

/// One grandfathered entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Why this violation is tolerated.
    pub justification: String,
    /// Trimmed source line it matches.
    pub snippet: String,
}

/// Parse baseline text. Returns `Err` with a line number on malformed
/// entries so a corrupted baseline cannot silently allow everything.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (rule, path, justification, snippet) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(j), Some(s)) => (r, p, j, s),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected rule<TAB>path<TAB>justification<TAB>snippet",
                        i + 1
                    ))
                }
            };
        if justification.trim().is_empty() {
            return Err(format!("baseline line {}: empty justification", i + 1));
        }
        entries.push(Entry {
            rule: rule.trim().to_string(),
            path: path.trim().to_string(),
            justification: justification.trim().to_string(),
            snippet: snippet.trim().to_string(),
        });
    }
    Ok(entries)
}

/// Render entries back to baseline text.
pub fn render(entries: &[Entry]) -> String {
    let mut out = String::from(
        "# allconcur-lint baseline — grandfathered violations.\n\
         # rule<TAB>path<TAB>justification<TAB>snippet (trimmed source line).\n\
         # Entries must match a live violation exactly; stale entries fail --deny-new.\n",
    );
    for e in entries {
        out.push_str(&format!("{}\t{}\t{}\t{}\n", e.rule, e.path, e.justification, e.snippet));
    }
    out
}

/// Result of diffing live violations against the baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Violations not covered by any baseline entry (new debt).
    pub new: Vec<Violation>,
    /// Violations matched by the baseline (tolerated debt).
    pub grandfathered: Vec<(Violation, Entry)>,
    /// Baseline entries that matched nothing (stale — the code moved on
    /// but the baseline didn't shrink).
    pub stale: Vec<Entry>,
}

/// Multiset-match `violations` against `baseline`.
pub fn diff(violations: Vec<Violation>, baseline: &[Entry]) -> Diff {
    let mut d = Diff::default();
    let mut unused: Vec<Option<&Entry>> = baseline.iter().map(Some).collect();
    for v in violations {
        let slot = unused.iter_mut().find(|slot| {
            slot.as_ref()
                .is_some_and(|e| e.rule == v.rule && e.path == v.path && e.snippet == v.snippet)
        });
        match slot {
            Some(slot) => {
                let e = slot.take().cloned();
                if let Some(e) = e {
                    d.grandfathered.push((v, e));
                }
            }
            None => d.new.push(v),
        }
    }
    d.stale = unused.into_iter().flatten().cloned().collect();
    d
}
