//! `allconcur-lint` — the workspace invariant checker.
//!
//! A self-contained static-analysis pass (hand-rolled lexer, zero
//! dependencies) that enforces the invariants the rest of the test
//! suite *assumes*: determinism in transcript-pinned crates, no panics
//! in protocol threads, no allocation in `lint:hot_path` functions, an
//! acyclic lock-acquisition order, and `#![forbid(unsafe_code)]` at
//! protocol crate roots. See `DESIGN.md` § "Static analysis &
//! invariants" for the rule table and suppression policy.
//!
//! Library layout:
//! * [`lexer`] — tokens, comment markers, test/hot regions
//! * [`rules`] — the rule scans and per-crate scoping
//! * [`baseline`] — grandfathered-debt file format and diffing
//! * [`report`] — console + `GITHUB_STEP_SUMMARY` output

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;

use rules::{SourceFile, Violation};
use std::path::{Path, PathBuf};

/// Everything one workspace scan produced, pre-baseline.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Unsuppressed violations across all files.
    pub violations: Vec<Violation>,
    /// Count of violations silenced by justified inline allows.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files: usize,
}

/// Scan one file's source text (path is workspace-relative).
///
/// This is the unit the fixture tests drive directly.
pub fn scan_source(rel_path: &str, src: &str) -> (Vec<Violation>, usize) {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("allconcur")
        .to_string();
    let f = SourceFile::new(rel_path, &crate_name, src);
    let mut vs = rules::scan_file(&f);
    let is_crate_root = rel_path == format!("crates/{crate_name}/src/lib.rs");
    if is_crate_root && rules::FORBID_UNSAFE_CRATES.contains(&crate_name.as_str()) {
        vs.extend(rules::check_forbid_unsafe(&f));
    }
    rules::apply_allows(&f, vs)
}

fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort(); // deterministic scan order, naturally
    for p in paths {
        if p.is_dir() {
            rs_files_under(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Scan the whole workspace rooted at `root`.
///
/// Covered: every `crates/<name>/src/**/*.rs` plus the umbrella
/// crate's own `src/`. Not covered: `tests/`, `examples/`, `benches/`
/// (test and harness code may panic freely), `vendor/`, and `target/`.
pub fn run_workspace(root: &Path) -> std::io::Result<ScanResult> {
    let mut result = ScanResult::default();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crate_dirs.sort();
        for c in crate_dirs {
            roots.push(c.join("src"));
        }
    }
    // Lock-order is a cross-file pass: gather per-file acquisition
    // sequences over the union of all declared lock fields first.
    let mut lock_files: Vec<(String, String)> = Vec::new(); // (rel, src)

    for dir in roots {
        let mut files = Vec::new();
        rs_files_under(&dir, &mut files);
        for path in files {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let src = std::fs::read_to_string(&path)?;
            let (vs, supp) = scan_source(&rel, &src);
            result.violations.extend(vs);
            result.suppressed += supp;
            result.files += 1;
            let crate_name =
                rel.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("");
            if rules::LOCK_ORDER_CRATES.contains(&crate_name) {
                lock_files.push((rel, src));
            }
        }
    }

    // Cross-file lock-order pass.
    let parsed: Vec<(String, String, String)> = lock_files
        .into_iter()
        .map(|(rel, src)| {
            let crate_name = rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .unwrap_or("")
                .to_string();
            (rel, crate_name, src)
        })
        .collect();
    let files: Vec<SourceFile<'_>> =
        parsed.iter().map(|(rel, crate_name, src)| SourceFile::new(rel, crate_name, src)).collect();
    let mut fields: Vec<String> = Vec::new();
    for f in &files {
        for field in rules::collect_lock_fields(f) {
            if !fields.contains(&field) {
                fields.push(field);
            }
        }
    }
    let mut seqs = Vec::new();
    for f in &files {
        seqs.extend(rules::collect_acquisitions(f, &fields));
    }
    let lock_vs = rules::check_lock_order(&seqs);
    // Lock-order findings honour inline allows too.
    for v in lock_vs {
        let suppressed = files.iter().any(|f| {
            f.path == v.path
                && f.lexed.allows.iter().any(|a| {
                    a.rule == v.rule
                        && !a.justification.is_empty()
                        && (a.line == v.line || a.line + 1 == v.line)
                })
        });
        if suppressed {
            result.suppressed += 1;
        } else {
            result.violations.push(v);
        }
    }

    Ok(result)
}

/// Locate the workspace root: walk up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(d) = cur {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        cur = d.parent().map(|p| p.to_path_buf());
    }
    None
}
