//! The rule set and per-crate scoping.
//!
//! Every rule is a lexical over-approximation chosen so that a clean
//! tree stays clean without parser-grade precision:
//!
//! * `determinism` — forbids `Instant::now`, `SystemTime`, `thread_rng`,
//!   and the `HashMap`/`HashSet` *types* outright in the crates whose
//!   behaviour is pinned by golden transcripts and seeded replays.
//!   Forbidding the type (not just iteration) is deliberate: iteration
//!   is what leaks nondeterminism, but spotting iteration lexically is
//!   unreliable, and these crates have no legitimate unordered-map use.
//! * `no_panic` — forbids `.unwrap(` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test protocol
//!   code; a peer-triggered panic in a protocol thread takes the node
//!   down without a typed `ClusterError`.
//! * `no_alloc` — inside `// lint:hot_path`-marked fn bodies, forbids
//!   `Vec::new` / `vec!` / `.to_vec(` / `.clone(` / `format!` /
//!   `Box::new` / `String::new` / `.to_string(` / `.to_owned(`.
//!   (`Vec::with_capacity` stays legal: pre-sized buffers are the
//!   sanctioned pattern, and the `core_rounds` counting allocator
//!   asserts the steady-state loop allocates nothing per event.)
//! * `lock_order` — builds a static acquisition graph over
//!   `parking_lot` `Mutex`/`RwLock` struct fields and fails on cycles
//!   (including same-lock re-acquisition within one fn body, since
//!   `parking_lot` locks are not reentrant). Guard drops are invisible
//!   lexically, so this over-approximates; suppress with justification
//!   where a drop provably breaks the order.
//! * `bounded_queues` — forbids unbounded channel construction
//!   (`unbounded(`, `unbounded::<`, `mpsc::channel`) in the transport
//!   crates: every queue between peers must have a capacity and a shed
//!   or backpressure story, or an open-loop producer turns into
//!   unbounded memory growth. Queues whose depth is provably bounded
//!   elsewhere are suppressed with a justification.
//! * `forbid_unsafe` — asserts `#![forbid(unsafe_code)]` stays present
//!   at the crate roots that carry it.
//! * `suppression` — meta-rule: every `lint:allow` must carry a
//!   non-empty justification after the closing `):`.

use crate::lexer::{Lexed, Tok, Token};

/// Crates scanned by the `determinism` rule.
pub const DETERMINISM_CRATES: &[&str] = &["graph", "core", "sim", "nemesis"];
/// Crates scanned by the `no_panic` rule.
pub const NO_PANIC_CRATES: &[&str] = &["core", "cluster", "rsm", "net", "durability"];
/// Crates scanned by the `lock_order` rule.
pub const LOCK_ORDER_CRATES: &[&str] = &["net", "cluster"];
/// Crates scanned by the `bounded_queues` rule.
pub const BOUNDED_QUEUE_CRATES: &[&str] = &["net", "cluster"];
/// Crates whose roots must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE_CRATES: &[&str] =
    &["graph", "core", "sim", "net", "cluster", "rsm", "durability", "nemesis"];

/// All rule names, for CLI validation and report ordering.
pub const ALL_RULES: &[&str] = &[
    "determinism",
    "no_panic",
    "no_alloc",
    "bounded_queues",
    "lock_order",
    "forbid_unsafe",
    "suppression",
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed source line (baseline matching key).
    pub snippet: String,
    /// Human-readable description with the fix direction.
    pub message: String,
}

/// A parsed source file ready for rule scans.
pub struct SourceFile<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Owning crate (directory name under `crates/`, or `allconcur`
    /// for the umbrella crate's own `src/`).
    pub crate_name: &'a str,
    /// Raw source lines, for snippets.
    pub lines: Vec<&'a str>,
    /// Lexer output.
    pub lexed: Lexed,
}

impl<'a> SourceFile<'a> {
    /// Lex `src` into a scannable file.
    pub fn new(path: &'a str, crate_name: &'a str, src: &'a str) -> Self {
        SourceFile { path, crate_name, lines: src.lines().collect(), lexed: crate::lexer::lex(src) }
    }

    fn snippet(&self, line: u32) -> String {
        self.lines.get(line as usize - 1).map(|s| s.trim().to_string()).unwrap_or_default()
    }

    fn violation(&self, rule: &'static str, line: u32, message: String) -> Violation {
        Violation { rule, path: self.path.to_string(), line, snippet: self.snippet(line), message }
    }
}

/// Match `pattern` (mix of idents and puncts) at token index `i`.
fn seq_at(tokens: &[Token], i: usize, pattern: &[Tok]) -> bool {
    tokens.len() - i >= pattern.len()
        && tokens[i..i + pattern.len()].iter().zip(pattern).all(|(t, p)| match (&t.tok, p) {
            (Tok::Ident(a), Tok::Ident(b)) => a == b,
            (Tok::Punct(a), Tok::Punct(b)) => a == b,
            _ => false,
        })
}

fn id(s: &str) -> Tok {
    Tok::Ident(s.to_string())
}

fn p(c: char) -> Tok {
    Tok::Punct(c)
}

/// Run every applicable rule over one file. Suppressions are *not*
/// applied here — the caller filters through [`apply_allows`].
pub fn scan_file(f: &SourceFile<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &f.lexed.tokens;
    let in_test = &f.lexed.in_test;

    let live = |i: usize| !in_test.get(i).copied().unwrap_or(false);

    if DETERMINISM_CRATES.contains(&f.crate_name) {
        for i in 0..toks.len() {
            if !live(i) {
                continue;
            }
            let line = toks[i].line;
            if seq_at(toks, i, &[id("Instant"), p(':'), p(':'), id("now")]) {
                out.push(
                    f.violation(
                        "determinism",
                        line,
                        "wall-clock read in deterministic crate; inject time via the sim \
                     clock or scope to TCP-only paths"
                            .into(),
                    ),
                );
            } else if toks[i].is_ident("SystemTime") {
                out.push(f.violation(
                    "determinism",
                    line,
                    "SystemTime in deterministic crate; wall time leaks into transcripts".into(),
                ));
            } else if toks[i].is_ident("thread_rng") {
                out.push(f.violation(
                    "determinism",
                    line,
                    "thread_rng in deterministic crate; use a seeded StdRng so runs replay".into(),
                ));
            } else if toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet") {
                out.push(f.violation(
                    "determinism",
                    line,
                    format!(
                        "{} in deterministic crate; iteration order is nondeterministic — \
                         use a dense Vec index, sorted Vec, or BTreeMap",
                        toks[i].ident().unwrap_or("hash container")
                    ),
                ));
            }
        }
    }

    if NO_PANIC_CRATES.contains(&f.crate_name) {
        for i in 0..toks.len() {
            if !live(i) {
                continue;
            }
            // Anchor on the method ident, not the `.`: in a chained
            // call the dot can sit on the previous line, and inline
            // allows must line up with the visible call.
            let line = toks.get(i + 1).map(|t| t.line).unwrap_or(toks[i].line);
            if seq_at(toks, i, &[p('.'), id("unwrap"), p('(')]) {
                out.push(
                    f.violation(
                        "no_panic",
                        line,
                        ".unwrap() in protocol code; return a typed error (ClusterError/io::Error)"
                            .into(),
                    ),
                );
            } else if seq_at(toks, i, &[p('.'), id("expect"), p('(')]) {
                out.push(
                    f.violation(
                        "no_panic",
                        line,
                        ".expect() in protocol code; return a typed error or restructure the \
                     invariant into the types"
                            .into(),
                    ),
                );
            } else {
                for mac in ["panic", "unreachable", "todo", "unimplemented"] {
                    if seq_at(toks, i, &[id(mac), p('!')]) {
                        out.push(f.violation(
                            "no_panic",
                            line,
                            format!("{mac}! in protocol code; return a typed error instead"),
                        ));
                    }
                }
            }
        }
    }

    if BOUNDED_QUEUE_CRATES.contains(&f.crate_name) {
        for i in 0..toks.len() {
            if !live(i) {
                continue;
            }
            let line = toks[i].line;
            // `unbounded(` and `unbounded::<` catch both the plain call
            // and the turbofish form; `mpsc::channel` catches std's
            // unbounded constructor (std's bounded one is sync_channel).
            let hit = seq_at(toks, i, &[id("unbounded"), p('(')])
                || seq_at(toks, i, &[id("unbounded"), p(':'), p(':'), p('<')])
                || seq_at(toks, i, &[id("mpsc"), p(':'), p(':'), id("channel")]);
            if hit {
                out.push(
                    f.violation(
                        "bounded_queues",
                        line,
                        "unbounded channel in transport code; give the queue a capacity with a \
                     shed/backpressure story (watermarks + typed Busy), or justify why its \
                     depth is bounded elsewhere"
                            .into(),
                    ),
                );
            }
        }
    }

    // no_alloc applies wherever hot-path markers appear, in any crate.
    for (fn_name, lo, hi) in &f.lexed.hot_regions {
        for i in 0..toks.len() {
            let line = toks.get(i + 1).map(|t| t.line).unwrap_or(toks[i].line);
            if line < *lo || line > *hi || !live(i) {
                continue;
            }
            let hit: Option<&str> = if seq_at(toks, i, &[id("Vec"), p(':'), p(':'), id("new")]) {
                Some("Vec::new")
            } else if seq_at(toks, i, &[id("String"), p(':'), p(':'), id("new")]) {
                Some("String::new")
            } else if seq_at(toks, i, &[id("Box"), p(':'), p(':'), id("new")]) {
                Some("Box::new")
            } else if seq_at(toks, i, &[p('.'), id("to_vec"), p('(')]) {
                Some(".to_vec()")
            } else if seq_at(toks, i, &[p('.'), id("clone"), p('(')]) {
                Some(".clone()")
            } else if seq_at(toks, i, &[p('.'), id("to_string"), p('(')]) {
                Some(".to_string()")
            } else if seq_at(toks, i, &[p('.'), id("to_owned"), p('(')]) {
                Some(".to_owned()")
            } else if seq_at(toks, i, &[id("format"), p('!')]) {
                Some("format!")
            } else if seq_at(toks, i, &[id("vec"), p('!')]) {
                Some("vec!")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(f.violation(
                    "no_alloc",
                    line,
                    format!(
                        "{what} inside `lint:hot_path` fn `{fn_name}`; hot-path fns must \
                         reuse pre-sized buffers (see the core_rounds allocator assertion)"
                    ),
                ));
            }
        }
    }

    out
}

/// Check `#![forbid(unsafe_code)]` presence for a crate-root file.
/// Returns a violation when the attribute is missing.
pub fn check_forbid_unsafe(f: &SourceFile<'_>) -> Option<Violation> {
    let toks = &f.lexed.tokens;
    let pat = [p('#'), p('!'), p('['), id("forbid"), p('('), id("unsafe_code"), p(')'), p(']')];
    let present = (0..toks.len()).any(|i| seq_at(toks, i, &pat));
    if present {
        None
    } else {
        Some(Violation {
            rule: "forbid_unsafe",
            path: f.path.to_string(),
            line: 1,
            snippet: "(crate root)".into(),
            message: "crate root must carry #![forbid(unsafe_code)]".into(),
        })
    }
}

/// A lock acquisition observed in a fn body.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// The lock field name.
    pub lock: String,
    /// Where it happens.
    pub path: String,
    /// Line of the `.lock()`/`.read()`/`.write()` call.
    pub line: u32,
    /// Enclosing fn name.
    pub func: String,
}

/// Extract declared `Mutex`/`RwLock` struct fields from a file.
///
/// Matches `field: [path::]*(Arc<)?(Mutex|RwLock)<...`, walking back
/// over path segments and single-ident wrappers.
pub fn collect_lock_fields(f: &SourceFile<'_>) -> Vec<String> {
    let toks = &f.lexed.tokens;
    let mut fields = Vec::new();
    for i in 0..toks.len() {
        if f.lexed.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let is_lock_ty = toks[i].is_ident("Mutex") || toks[i].is_ident("RwLock");
        if !is_lock_ty || !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        // Walk back over `path::` segments and `Wrapper<` layers.
        let mut j = i;
        loop {
            if j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].ident().is_some()
            {
                j -= 3;
            } else if j >= 2 && toks[j - 1].is_punct('<') && toks[j - 2].ident().is_some() {
                j -= 2;
            } else {
                break;
            }
        }
        if j >= 2 && toks[j - 1].is_punct(':') && !toks[j - 2].is_punct(':') {
            if let Some(name) = toks[j - 2].ident() {
                if !fields.contains(&name.to_string()) {
                    fields.push(name.to_string());
                }
            }
        }
    }
    fields
}

/// Extract the ordered lock-acquisition sequences of every non-test fn
/// body in a file, restricted to the known lock field names.
pub fn collect_acquisitions(f: &SourceFile<'_>, fields: &[String]) -> Vec<Vec<Acquisition>> {
    let toks = &f.lexed.tokens;
    let mut seqs = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if f.lexed.in_test.get(i).copied().unwrap_or(false) || !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let func = toks.get(i + 1).and_then(|t| t.ident()).unwrap_or("<anon>").to_string();
        // Locate the body (same walk as hot-region resolution).
        let mut depth = 0i64;
        let mut open = None;
        let mut k = i;
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => {
                    open = Some(k);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let close = {
            let mut d = 0i64;
            let mut c = open;
            while c < toks.len() {
                if toks[c].is_punct('{') {
                    d += 1;
                } else if toks[c].is_punct('}') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                c += 1;
            }
            c
        };
        let mut seq = Vec::new();
        for t in open..close.min(toks.len()) {
            if t + 3 < toks.len()
                && toks[t].ident().is_some_and(|n| fields.iter().any(|f| f == n))
                && toks[t + 1].is_punct('.')
                && toks[t + 2].ident().is_some_and(|m| m == "lock" || m == "read" || m == "write")
                && toks[t + 3].is_punct('(')
            {
                seq.push(Acquisition {
                    lock: toks[t].ident().unwrap_or_default().to_string(),
                    path: f.path.to_string(),
                    line: toks[t].line,
                    func: func.clone(),
                });
            }
        }
        if !seq.is_empty() {
            seqs.push(seq);
        }
        i = close + 1;
    }
    seqs
}

/// Build the acquisition graph from all fn sequences and report cycles.
pub fn check_lock_order(seqs: &[Vec<Acquisition>]) -> Vec<Violation> {
    // Edge (a, b): some fn holds `a` (lexically) while acquiring `b`.
    let mut edges: Vec<(String, String, Acquisition)> = Vec::new();
    let mut out = Vec::new();
    for seq in seqs {
        for x in 0..seq.len() {
            for y in (x + 1)..seq.len() {
                let (a, b) = (&seq[x], &seq[y]);
                if a.lock == b.lock {
                    out.push(Violation {
                        rule: "lock_order",
                        path: b.path.clone(),
                        line: b.line,
                        snippet: format!("{} re-acquired in fn {}", b.lock, b.func),
                        message: format!(
                            "`{}` acquired twice in fn `{}` (lines {} and {}); parking_lot \
                             locks are not reentrant — this self-deadlocks unless the first \
                             guard is dropped",
                            b.lock, b.func, a.line, b.line
                        ),
                    });
                } else if !edges.iter().any(|(ea, eb, _)| ea == &a.lock && eb == &b.lock) {
                    edges.push((a.lock.clone(), b.lock.clone(), b.clone()));
                }
            }
        }
    }
    // DFS cycle detection over the distinct-lock edges.
    let mut nodes: Vec<&String> = Vec::new();
    for (a, b, _) in &edges {
        if !nodes.contains(&a) {
            nodes.push(a);
        }
        if !nodes.contains(&b) {
            nodes.push(b);
        }
    }
    fn dfs<'e>(
        node: &'e String,
        edges: &'e [(String, String, Acquisition)],
        stack: &mut Vec<&'e String>,
        done: &mut Vec<&'e String>,
    ) -> Option<Vec<&'e String>> {
        if done.contains(&node) {
            return None;
        }
        if let Some(pos) = stack.iter().position(|n| *n == node) {
            return Some(stack[pos..].to_vec());
        }
        stack.push(node);
        for (a, b, _) in edges {
            if a == node {
                if let Some(cy) = dfs(b, edges, stack, done) {
                    return Some(cy);
                }
            }
        }
        stack.pop();
        done.push(node);
        None
    }
    let mut done = Vec::new();
    for n in &nodes {
        let mut stack = Vec::new();
        if let Some(cycle) = dfs(n, &edges, &mut stack, &mut done) {
            let names: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            // Anchor the report on the edge that closes the cycle.
            let (wa, wb) = (&names[names.len() - 1], &names[0]);
            let witness =
                edges.iter().find(|(a, b, _)| a == wa && b == wb).map(|(_, _, acq)| acq.clone());
            let (path, line, func) = witness
                .map(|w| (w.path, w.line, w.func))
                .unwrap_or_else(|| ("<unknown>".into(), 0, "<unknown>".into()));
            out.push(Violation {
                rule: "lock_order",
                path,
                line,
                snippet: format!("lock cycle: {}", names.join(" -> ")),
                message: format!(
                    "lock acquisition cycle {} (closing edge in fn `{}`); impose a total \
                     order on these locks or drop the first guard before taking the second",
                    names.join(" -> "),
                    func
                ),
            });
            break; // one cycle report at a time keeps output actionable
        }
    }
    out
}

/// Apply inline `lint:allow` suppressions to a violation list.
///
/// A violation on line `L` is suppressed by a justified allow for its
/// rule on line `L` (trailing) or `L-1` (comment above). Allows with an
/// empty justification never suppress; each produces a `suppression`
/// violation of its own. Returns `(live, suppressed_count)`.
pub fn apply_allows(f: &SourceFile<'_>, vs: Vec<Violation>) -> (Vec<Violation>, usize) {
    let mut live = Vec::new();
    let mut suppressed = 0usize;
    for v in vs {
        let hit = f.lexed.allows.iter().any(|a| {
            a.rule == v.rule
                && !a.justification.is_empty()
                && (a.line == v.line || a.line + 1 == v.line)
        });
        if hit {
            suppressed += 1;
        } else {
            live.push(v);
        }
    }
    for a in &f.lexed.allows {
        if a.justification.is_empty() {
            live.push(Violation {
                rule: "suppression",
                path: f.path.to_string(),
                line: a.line,
                snippet: f.snippet(a.line),
                message: format!(
                    "lint:allow({}) without a justification — write \
                     `// lint:allow({}): <why this is sound>`",
                    a.rule, a.rule
                ),
            });
        }
    }
    (live, suppressed)
}
