//! CLI for `allconcur-lint`.
//!
//! ```text
//! cargo run -p allconcur-lint                  # report, exit 0
//! cargo run -p allconcur-lint -- --deny-new    # exit 1 on new/stale debt
//! cargo run -p allconcur-lint -- --write-baseline  # grandfather current debt
//! ```

#![forbid(unsafe_code)]

use allconcur_lint::{baseline, find_root, report, run_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: allconcur-lint [--root <dir>] [--baseline <file>] \
                     [--deny-new] [--write-baseline]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--deny-new" => deny_new = true,
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!("allconcur-lint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let scan = match run_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("allconcur-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let entries: Vec<baseline::Entry> = scan
            .violations
            .iter()
            .map(|v| baseline::Entry {
                rule: v.rule.to_string(),
                path: v.path.clone(),
                justification: "TODO: justify or fix".to_string(),
                snippet: v.snippet.clone(),
            })
            .collect();
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&entries)) {
            eprintln!("allconcur-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "allconcur-lint: wrote {} entries to {} — replace every \
             `TODO: justify or fix` before committing",
            entries.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let entries = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("allconcur-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no baseline file: everything is new
    };

    let diff = baseline::diff(scan.violations, &entries);
    report::print(&diff, scan.suppressed, scan.files);
    report::github_summary(&diff, scan.suppressed);

    if deny_new && (!diff.new.is_empty() || !diff.stale.is_empty()) {
        eprintln!(
            "allconcur-lint: {} new violation(s), {} stale baseline entr(ies) — failing \
             (--deny-new). Fix the code, add `// lint:allow(<rule>): <why>`, or update \
             the baseline.",
            diff.new.len(),
            diff.stale.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
