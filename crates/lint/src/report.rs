//! Human and CI-facing reporting: a violations-by-rule-by-crate table
//! (same shape as `bench_check`'s regression summary) plus an optional
//! `GITHUB_STEP_SUMMARY` markdown appendix.

use crate::baseline::Diff;
use crate::rules::{Violation, ALL_RULES};
use std::io::Write as _;

fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("allconcur")
}

/// Collect the distinct crates appearing in a violation list, sorted.
fn crates_in<'v>(vs: impl Iterator<Item = &'v Violation>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for v in vs {
        let c = crate_of(&v.path).to_string();
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out.sort();
    out
}

/// Render the rule × crate count table. `label` names what is being
/// counted (e.g. "new" or "grandfathered").
pub fn table(vs: &[Violation], label: &str) -> String {
    if vs.is_empty() {
        return format!("  ({label}: none)\n");
    }
    let crates = crates_in(vs.iter());
    let mut out = String::new();
    out.push_str(&format!("  {label} violations by rule × crate:\n"));
    out.push_str(&format!("  {:<14}", "rule"));
    for c in &crates {
        out.push_str(&format!(" {c:>12}"));
    }
    out.push('\n');
    for rule in ALL_RULES {
        let row: Vec<usize> = crates
            .iter()
            .map(|c| vs.iter().filter(|v| v.rule == *rule && crate_of(&v.path) == c).count())
            .collect();
        if row.iter().sum::<usize>() == 0 {
            continue;
        }
        out.push_str(&format!("  {rule:<14}"));
        for n in row {
            out.push_str(&format!(" {n:>12}"));
        }
        out.push('\n');
    }
    out
}

/// Print the full report for a diff to stdout.
pub fn print(diff: &Diff, suppressed: usize, files_scanned: usize) {
    println!("allconcur-lint: scanned {files_scanned} files");
    println!(
        "  {} new, {} grandfathered (baseline), {} suppressed inline, {} stale baseline entries",
        diff.new.len(),
        diff.grandfathered.len(),
        suppressed,
        diff.stale.len()
    );
    let gf: Vec<Violation> = diff.grandfathered.iter().map(|(v, _)| v.clone()).collect();
    print!("{}", table(&gf, "grandfathered"));
    print!("{}", table(&diff.new, "NEW"));
    for v in &diff.new {
        println!("  NEW [{}] {}:{}: {}", v.rule, v.path, v.line, v.message);
        println!("      > {}", v.snippet);
    }
    for e in &diff.stale {
        println!(
            "  STALE baseline entry [{}] {} — no longer matches any violation; \
             remove it (or re-run with --write-baseline): `{}`",
            e.rule, e.path, e.snippet
        );
    }
}

/// Append a markdown summary to `$GITHUB_STEP_SUMMARY` when set.
pub fn github_summary(diff: &Diff, suppressed: usize) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let Ok(mut fh) = std::fs::OpenOptions::new().append(true).create(true).open(path) else {
        return;
    };
    let mut md = String::from("### allconcur-lint\n\n");
    md.push_str(&format!(
        "| new | grandfathered | suppressed inline | stale baseline |\n\
         |---|---|---|---|\n| {} | {} | {} | {} |\n\n",
        diff.new.len(),
        diff.grandfathered.len(),
        suppressed,
        diff.stale.len()
    ));
    let all: Vec<Violation> =
        diff.new.iter().cloned().chain(diff.grandfathered.iter().map(|(v, _)| v.clone())).collect();
    if !all.is_empty() {
        let crates = crates_in(all.iter());
        md.push_str("| rule |");
        for c in &crates {
            md.push_str(&format!(" {c} |"));
        }
        md.push_str("\n|---|");
        md.push_str(&"---|".repeat(crates.len()));
        md.push('\n');
        for rule in ALL_RULES {
            let row: Vec<usize> = crates
                .iter()
                .map(|c| all.iter().filter(|v| v.rule == *rule && crate_of(&v.path) == c).count())
                .collect();
            if row.iter().sum::<usize>() == 0 {
                continue;
            }
            md.push_str(&format!("| {rule} |"));
            for n in row {
                md.push_str(&format!(" {n} |"));
            }
            md.push('\n');
        }
        md.push('\n');
    }
    for v in &diff.new {
        md.push_str(&format!("- **NEW** `{}` {}:{} — {}\n", v.rule, v.path, v.line, v.message));
    }
    for e in &diff.stale {
        md.push_str(&format!("- **STALE** `{}` {} — `{}`\n", e.rule, e.path, e.snippet));
    }
    let _ = fh.write_all(md.as_bytes());
}
