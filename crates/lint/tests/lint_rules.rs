//! Per-rule self-tests driven by the fixture sources in
//! `tests/fixtures/` (raw `.rs` files, never compiled).

use allconcur_lint::rules::{
    check_lock_order, collect_acquisitions, collect_lock_fields, SourceFile,
};
use allconcur_lint::{baseline, scan_source};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn count(vs: &[allconcur_lint::rules::Violation], rule: &str) -> usize {
    vs.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn determinism_rule_fires_and_respects_suppressions() {
    let src = fixture("determinism.rs");
    // Scanned as if it lived in the sim crate (determinism scope).
    let (vs, suppressed) = scan_source("crates/sim/src/fixture.rs", &src);
    assert_eq!(count(&vs, "determinism"), 3, "HashMap + Instant::now + thread_rng: {vs:#?}");
    // The justified allow on `SystemTime` suppressed exactly one.
    assert_eq!(suppressed, 1);
    // The unjustified allow is itself a violation.
    assert_eq!(count(&vs, "suppression"), 1);
    // The #[cfg(test)] module's HashSet is exempt.
    assert!(!vs.iter().any(|v| v.snippet.contains("HashSet")), "{vs:#?}");
}

#[test]
fn determinism_rule_is_scoped_per_crate() {
    // The same source in a non-determinism crate (net) is clean —
    // except the unjustified allow, which is always flagged.
    let src = fixture("determinism.rs");
    let (vs, _) = scan_source("crates/net/src/fixture.rs", &src);
    assert_eq!(count(&vs, "determinism"), 0, "{vs:#?}");
}

#[test]
fn no_panic_rule_fires_and_exempts_tests() {
    let src = fixture("no_panic.rs");
    let (vs, suppressed) = scan_source("crates/core/src/fixture.rs", &src);
    assert_eq!(count(&vs, "no_panic"), 4, "unwrap + expect + panic! + unreachable!: {vs:#?}");
    // Leading-line and trailing-line allows both suppress.
    assert_eq!(suppressed, 2);
    // Nothing from the #[test] fn or #[cfg(test)] module leaks through.
    assert!(!vs.iter().any(|v| v.snippet.contains("fine in tests")), "{vs:#?}");
    // unwrap_or / unwrap_or_else / unwrap_or_default never match.
    assert!(!vs.iter().any(|v| v.snippet.contains("unwrap_or")), "{vs:#?}");
}

#[test]
fn no_alloc_rule_checks_only_hot_path_regions() {
    let src = fixture("no_alloc.rs");
    let (vs, _) = scan_source("crates/core/src/fixture.rs", &src);
    assert_eq!(count(&vs, "no_alloc"), 6, "{vs:#?}");
    // The unmarked `cold` fn allocates freely.
    assert!(!vs.iter().any(|v| v.line > 20), "cold fn must be exempt: {vs:#?}");
    // Vec::with_capacity inside the hot region stays legal.
    assert!(!vs.iter().any(|v| v.snippet.contains("with_capacity")), "{vs:#?}");
}

#[test]
fn bounded_queues_rule_fires_and_is_scoped() {
    let src = fixture("bounded_queues.rs");
    // In scope (net): plain, turbofish, and std forms all fire; bounded
    // constructors and the `use` import never match.
    let (vs, suppressed) = scan_source("crates/net/src/fixture.rs", &src);
    assert_eq!(count(&vs, "bounded_queues"), 3, "{vs:#?}");
    assert_eq!(suppressed, 1, "justified allow suppresses exactly one");
    assert!(!vs.iter().any(|v| v.snippet.contains("= bounded::")), "{vs:#?}");
    assert!(!vs.iter().any(|v| v.snippet.contains("sync_channel")), "{vs:#?}");
    assert!(!vs.iter().any(|v| v.snippet.contains("use crossbeam")), "{vs:#?}");
    // The #[cfg(test)] module's unbounded channel is exempt.
    assert!(!vs.iter().any(|v| v.line > 16), "test module must be exempt: {vs:#?}");
    // Out of scope (rsm): clean.
    let (vs, _) = scan_source("crates/rsm/src/fixture.rs", &src);
    assert_eq!(count(&vs, "bounded_queues"), 0, "{vs:#?}");
}

#[test]
fn lock_order_detects_cycles_and_reacquisition() {
    let src = fixture("lock_order.rs");
    let f = SourceFile::new("crates/net/src/fixture.rs", "net", &src);
    let fields = collect_lock_fields(&f);
    assert_eq!(fields, vec!["table".to_string(), "stats".to_string()]);
    let seqs = collect_acquisitions(&f, &fields);
    assert_eq!(seqs.len(), 3, "forward, backward, double");
    let vs = check_lock_order(&seqs);
    assert!(
        vs.iter().any(|v| v.message.contains("cycle")),
        "table->stats->table must be reported: {vs:#?}"
    );
    assert!(
        vs.iter().any(|v| v.message.contains("acquired twice")),
        "double acquisition must be reported: {vs:#?}"
    );
}

#[test]
fn forbid_unsafe_checks_crate_roots() {
    let with = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
    let without = "#![warn(missing_docs)]\npub fn f() {}\n";
    let (vs, _) = scan_source("crates/core/src/lib.rs", with);
    assert_eq!(count(&vs, "forbid_unsafe"), 0);
    let (vs, _) = scan_source("crates/core/src/lib.rs", without);
    assert_eq!(count(&vs, "forbid_unsafe"), 1);
    // Non-root files and out-of-scope crates are not checked.
    let (vs, _) = scan_source("crates/core/src/server.rs", without);
    assert_eq!(count(&vs, "forbid_unsafe"), 0);
    let (vs, _) = scan_source("crates/bench/src/lib.rs", without);
    assert_eq!(count(&vs, "forbid_unsafe"), 0, "bench owns the counting allocator");
}

#[test]
fn baseline_grandfathers_and_goes_stale() {
    let src = fixture("no_panic.rs");
    let (vs, _) = scan_source("crates/core/src/fixture.rs", &src);
    let live: Vec<_> = vs.iter().filter(|v| v.rule == "no_panic").cloned().collect();
    // Grandfather the `.unwrap()` finding only.
    let text = format!(
        "# comment lines are skipped\nno_panic\tcrates/core/src/fixture.rs\tfixture \
         justification\t{}\n",
        live[0].snippet
    );
    let entries = baseline::parse(&text).expect("well-formed baseline");
    let diff = baseline::diff(live.clone(), &entries);
    assert_eq!(diff.grandfathered.len(), 1);
    assert_eq!(diff.new.len(), live.len() - 1);
    assert!(diff.stale.is_empty());

    // A baseline entry whose code was fixed must surface as stale.
    let stale_text = "no_panic\tcrates/core/src/fixture.rs\told justification\tlet gone = \
                      this.line.was.fixed();\n";
    let stale_entries = baseline::parse(stale_text).expect("well-formed baseline");
    let diff = baseline::diff(live, &stale_entries);
    assert_eq!(diff.stale.len(), 1, "fixed code leaves its baseline entry stale");

    // Malformed baselines fail closed.
    assert!(baseline::parse("no_panic\tonly-two-fields\n").is_err());
    assert!(baseline::parse("no_panic\tp\t\tsnippet-without-justification\n").is_err());
}
