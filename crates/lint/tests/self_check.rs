//! The lint run against the *real* workspace, in-process: the same
//! check CI's `--deny-new` job performs, so `cargo test` alone catches
//! new debt — and a baseline that drifted from the tree fails loudly
//! here rather than silently granting amnesty.

use allconcur_lint::{baseline, run_workspace};
use std::path::Path;

#[test]
fn workspace_is_clean_and_baseline_matches_fresh_run() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let scan = run_workspace(&root).expect("scan workspace");
    assert!(scan.files > 50, "scan must cover the workspace, saw {} files", scan.files);

    let text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("committed lint-baseline.txt");
    let entries = baseline::parse(&text).expect("parse committed baseline");
    let diff = baseline::diff(scan.violations, &entries);

    assert!(
        diff.new.is_empty(),
        "new lint violations (fix, suppress with justification, or baseline):\n{:#?}",
        diff.new
    );
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries (the code moved on — shrink the baseline):\n{:#?}",
        diff.stale
    );
    // Every grandfathered entry carries a real justification, not the
    // --write-baseline placeholder.
    for (_, e) in &diff.grandfathered {
        assert!(
            !e.justification.starts_with("TODO"),
            "baseline entry for {} still has a placeholder justification",
            e.path
        );
    }
}

#[test]
fn hot_path_markers_cover_the_protocol_hot_functions() {
    // The ISSUE-mandated floor: the event dispatcher, the round
    // advance, and the RSM pump must stay marked. (Deleting a marker
    // silently removes no_alloc coverage, so pin them here.)
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for (file, fn_name) in [
        ("crates/core/src/server.rs", "handle_into"),
        ("crates/core/src/server.rs", "deliver_and_advance"),
        ("crates/rsm/src/service.rs", "pump"),
        ("crates/rsm/src/service.rs", "flush_if_ready"),
    ] {
        let src = std::fs::read_to_string(root.join(file)).expect(file);
        let lexed = allconcur_lint::lexer::lex(&src);
        assert!(
            lexed.hot_regions.iter().any(|(name, _, _)| name == fn_name),
            "{file}: fn {fn_name} must carry a `// lint:hot_path` marker"
        );
    }
}
