// Fixture: no_alloc rule. Scanned with path crates/core/src/fixture.rs.

// lint:hot_path — fixture hot function
pub fn hot(input: &[u8]) -> Vec<u8> {
    let a: Vec<u8> = Vec::new(); // violation 1
    let b = input.to_vec(); // violation 2
    let c = b.clone(); // violation 3
    let d = format!("{}", c.len()); // violation 4
    let e = Box::new(d); // violation 5
    let f = vec![1u8]; // violation 6
    // Pre-sized buffers are the sanctioned pattern:
    let mut ok = Vec::with_capacity(input.len());
    ok.extend_from_slice(input);
    drop((a, e, f));
    ok
}

// Unmarked functions may allocate freely.
pub fn cold(input: &[u8]) -> Vec<u8> {
    let mut v = Vec::new();
    v.extend(input.iter().cloned());
    v.clone()
}
