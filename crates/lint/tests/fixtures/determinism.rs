// Fixture: determinism rule. Scanned by lint_rules.rs with the
// synthetic path crates/sim/src/fixture.rs — never compiled.
use std::collections::HashMap; // violation 1
use std::time::Instant;

pub fn wall_clock() -> Instant {
    Instant::now() // violation 2
}

pub fn seeded() -> u64 {
    let rng = thread_rng(); // violation 3
    rng
}

// A string or comment mentioning HashMap or Instant::now() must not
// trip the lexer:
pub fn strings_are_skipped() -> &'static str {
    "HashMap::new() and Instant::now() and SystemTime inside a string"
}

pub fn raw_strings_too() -> &'static str {
    r#"SystemTime "quoted" inside a raw string"#
}

pub fn char_literals(c: char) -> bool {
    // 'H' is a char literal, not a lifetime; HashMap in this comment
    // is also fine.
    c == 'H' || c == '\n' || c == '\''
}

// lint:allow(determinism): fixture — justified suppression is honoured
pub fn suppressed() -> SystemTime {
    unreachable_marker()
}

// lint:allow(determinism)
pub fn unjustified_allow_is_flagged() {} // the allow above adds a `suppression` violation

#[cfg(test)]
mod tests {
    use std::collections::HashSet; // exempt: test module

    #[test]
    fn test_code_may_use_hash_sets() {
        let mut s = HashSet::new();
        s.insert(1);
    }
}
