//! Fixture for the `bounded_queues` rule (raw source, never compiled).

use crossbeam::channel::{bounded, unbounded};
use std::sync::mpsc;

fn build_channels() {
    let (_tx1, _rx1) = unbounded::<u64>(); // hit: turbofish form
    let (_tx2, _rx2) = unbounded(); // hit: plain call
    let (_tx3, _rx3) = mpsc::channel::<u64>(); // hit: std's unbounded constructor
    let (_tx4, _rx4) = bounded::<u64>(128); // clean: has a capacity
    let (_tx5, _rx5) = mpsc::sync_channel::<u64>(8); // clean: has a capacity
    // lint:allow(bounded_queues): depth provably bounded by the round window upstream
    let (_tx6, _rx6) = unbounded::<u64>();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_is_fine_in_tests() {
        let (_tx, _rx) = crossbeam::channel::unbounded::<u64>();
    }
}
