// Fixture: lock_order rule. Scanned with path crates/net/src/fixture.rs.
use parking_lot::Mutex;

pub struct Shared {
    table: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Shared {
    // table -> stats ...
    pub fn forward(&self) {
        let t = self.table.lock();
        let s = self.stats.lock();
        drop((t, s));
    }

    // ... and stats -> table: a cycle.
    pub fn backward(&self) {
        let s = self.stats.lock();
        let t = self.table.lock();
        drop((s, t));
    }

    // Same lock twice in one fn: parking_lot is not reentrant.
    pub fn double(&self) {
        let a = self.stats.lock();
        drop(a);
        let b = self.stats.lock();
        drop(b);
    }
}
