// Fixture: no_panic rule. Scanned with path crates/core/src/fixture.rs.

pub fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap() // violation 1
}

pub fn expects(v: Option<u32>) -> u32 {
    v.expect("boom") // violation 2
}

pub fn panics() {
    panic!("down goes the node"); // violation 3
}

pub fn unreachable_macro() {
    unreachable!(); // violation 4
}

// `unwrap_or` family must not match:
pub fn unwrap_or_is_fine(v: Option<u32>) -> u32 {
    v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()
}

// Doc comments and strings must not match:
/// Call `.unwrap()` at your peril; panic! is also spelled here.
pub fn docs_are_skipped() -> &'static str {
    "contains .unwrap() and panic! in a string"
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // lint:allow(no_panic): fixture — invariant provably holds
    v.unwrap()
}

pub fn trailing_suppression(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(no_panic): fixture — trailing form
}

#[test]
fn test_fns_may_unwrap() {
    let v: Option<u32> = Some(3);
    assert_eq!(v.unwrap(), 3);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_modules_may_panic() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
