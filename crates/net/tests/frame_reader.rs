//! Direct unit tests for `codec::FrameReader`: burst parsing, frames
//! split across arbitrarily small reads, and the mid-frame read-timeout
//! desync that `read_frame` + `read_exact` used to suffer (a timeout
//! between the length prefix and the body lost the prefix and
//! desynchronised the stream — fixed by the buffered reader in PR 4).

use allconcur_core::message::Message;
use allconcur_net::codec::{write_frame, FrameReader};
use bytes::Bytes;
use std::io::{self, Cursor, Read};

/// Messages with varied shapes: empty payloads, odd sizes, every
/// protocol message type.
fn mixed_messages() -> Vec<Message> {
    let mut msgs = Vec::new();
    for i in 0..40u64 {
        msgs.push(match i % 4 {
            0 => Message::Bcast {
                round: i,
                origin: (i % 7) as u32,
                payload: Bytes::from(vec![i as u8; (i as usize * 13) % 257]),
            },
            1 => Message::Bcast { round: i, origin: 1, payload: Bytes::new() },
            2 => Message::Fail { round: i, failed: (i % 5) as u32, detector: (i % 3) as u32 },
            _ => Message::Fwd { round: i, origin: (i % 6) as u32 },
        });
    }
    msgs
}

fn wire_of(msgs: &[Message]) -> Vec<u8> {
    let mut wire = Vec::new();
    for m in msgs {
        write_frame(&mut wire, m).unwrap();
    }
    wire
}

/// Reader delivering at most `chunk` bytes per call, with scripted
/// timeouts: every `timeout_every`-th read fails `WouldBlock` (0 = never).
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
    timeout_every: usize,
    reads: usize,
}

impl Chunked {
    fn new(data: Vec<u8>, chunk: usize, timeout_every: usize) -> Self {
        Chunked { data, pos: 0, chunk, timeout_every, reads: 0 }
    }
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reads += 1;
        if self.timeout_every > 0 && self.reads.is_multiple_of(self.timeout_every) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "scripted timeout"));
        }
        let k = self.chunk.min(self.data.len() - self.pos).min(buf.len());
        buf[..k].copy_from_slice(&self.data[self.pos..self.pos + k]);
        self.pos += k;
        Ok(k)
    }
}

/// Drain every frame from `src`, treating `Ok(None)` as "retry later".
fn drain<R: Read>(reader: &mut FrameReader, src: &mut R, expect: usize) -> Vec<Message> {
    let mut out = Vec::new();
    while out.len() < expect {
        match reader.read_frame(src) {
            Ok(Some(m)) => out.push(m),
            Ok(None) => continue,
            Err(e) => panic!("unexpected error after {} frames: {e}", out.len()),
        }
    }
    out
}

#[test]
fn burst_of_frames_parses_from_one_buffer_fill() {
    // The whole wire arrives in one read: every subsequent frame must
    // parse out of the buffer without touching the source again.
    let msgs = mixed_messages();
    let wire = wire_of(&msgs);
    let mut src = Chunked::new(wire, usize::MAX, 0);
    let mut reader = FrameReader::new();
    let out = drain(&mut reader, &mut src, msgs.len());
    assert_eq!(out, msgs);
    assert_eq!(src.reads, 1, "burst must cost one read syscall, not {}", src.reads);
}

#[test]
fn split_frames_survive_every_chunk_size() {
    // Byte-at-a-time up through sizes that straddle the 4-byte length
    // prefix in every possible alignment.
    let msgs = mixed_messages();
    let wire = wire_of(&msgs);
    for chunk in [1usize, 2, 3, 4, 5, 7, 16] {
        let mut src = Chunked::new(wire.clone(), chunk, 0);
        let mut reader = FrameReader::new();
        let out = drain(&mut reader, &mut src, msgs.len());
        assert_eq!(out, msgs, "chunk size {chunk}");
    }
}

#[test]
fn timeout_between_length_and_body_does_not_desync() {
    // The PR 4 regression: a read timeout landing exactly after the
    // 4-byte length prefix (and at every other offset — chunk 2 with a
    // timeout every 3rd read hits all alignments over 40 frames) must
    // resume cleanly with no lost or corrupt frames.
    let msgs = mixed_messages();
    let wire = wire_of(&msgs);
    for timeout_every in [2usize, 3, 4] {
        let mut src = Chunked::new(wire.clone(), 2, timeout_every);
        let mut reader = FrameReader::new();
        let out = drain(&mut reader, &mut src, msgs.len());
        assert_eq!(out, msgs, "timeout every {timeout_every} reads");
    }
}

#[test]
fn zero_length_payload_frames_roundtrip() {
    let msgs: Vec<Message> =
        (0..10).map(|i| Message::Bcast { round: i, origin: 0, payload: Bytes::new() }).collect();
    let wire = wire_of(&msgs);
    let mut src = Chunked::new(wire, 3, 2);
    let mut reader = FrameReader::new();
    assert_eq!(drain(&mut reader, &mut src, msgs.len()), msgs);
}

#[test]
fn frame_spanning_buffer_boundary_compacts_and_grows() {
    // A payload just over the reader's 64 KiB buffer, preceded by small
    // frames so the big frame starts mid-buffer: forces the compact +
    // grow path while partial bytes are buffered.
    let mut msgs: Vec<Message> =
        (0..5).map(|i| Message::Fwd { round: i, origin: i as u32 }).collect();
    msgs.push(Message::Bcast { round: 9, origin: 1, payload: Bytes::from(vec![7u8; 70_000]) });
    msgs.push(Message::Fwd { round: 10, origin: 2 });
    let wire = wire_of(&msgs);
    let mut src = Chunked::new(wire, 4_096, 5);
    let mut reader = FrameReader::new();
    assert_eq!(drain(&mut reader, &mut src, msgs.len()), msgs);
}

#[test]
fn eof_mid_frame_is_an_error_not_a_hang() {
    let msgs = mixed_messages();
    let mut wire = wire_of(&msgs);
    wire.truncate(wire.len() - 3);
    let mut cursor = Cursor::new(wire);
    let mut reader = FrameReader::new();
    let mut parsed = 0;
    loop {
        match reader.read_frame(&mut cursor) {
            Ok(Some(_)) => parsed += 1,
            Ok(None) => panic!("Cursor never times out"),
            Err(e) => {
                assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
                break;
            }
        }
    }
    assert_eq!(parsed, msgs.len() - 1, "all complete frames parse before the EOF error");
}

#[test]
fn interleaved_reads_alternate_sources_without_state_bleed() {
    // Two independent readers on two streams driven alternately — the
    // per-connection state the runtime relies on (one FrameReader per
    // reader thread) must not require global coordination.
    let msgs_a = mixed_messages();
    let msgs_b: Vec<Message> =
        (0..40).map(|i| Message::Bwd { round: i, origin: (i % 4) as u32 }).collect();
    let mut src_a = Chunked::new(wire_of(&msgs_a), 5, 3);
    let mut src_b = Chunked::new(wire_of(&msgs_b), 3, 4);
    let (mut ra, mut rb) = (FrameReader::new(), FrameReader::new());
    let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
    while out_a.len() < msgs_a.len() || out_b.len() < msgs_b.len() {
        if out_a.len() < msgs_a.len() {
            if let Ok(Some(m)) = ra.read_frame(&mut src_a) {
                out_a.push(m);
            }
        }
        if out_b.len() < msgs_b.len() {
            if let Ok(Some(m)) = rb.read_frame(&mut src_b) {
                out_b.push(m);
            }
        }
    }
    assert_eq!(out_a, msgs_a);
    assert_eq!(out_b, msgs_b);
}
