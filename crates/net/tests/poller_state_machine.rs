//! Property tests of the event-loop readiness state machines, plus two
//! end-to-end pins:
//!
//! * the write path ([`WriteBuf`]) survives partial writes at **every
//!   byte offset mid-frame** and arbitrary EAGAIN storms, emitting a
//!   byte-identical stream;
//! * the read path ([`FrameReader`]) survives spurious wakeups (reads
//!   that immediately would-block) and one-byte drips without ever
//!   desynchronising;
//! * the delivery stream of an event-loop cluster is byte-identical to
//!   a committed golden hash (transport refactors must not perturb
//!   agreement output);
//! * a whole in-process cluster runs on O(cores) reactor threads, not
//!   the O(n·d) the thread-per-socket runtime needed.

#![allow(deprecated)] // recv_delivery: the lockstep shim is exactly what scripted tests want

use allconcur_core::message::Message;
use allconcur_net::codec::{encode_frame, FrameReader};
use allconcur_net::link::WriteBuf;
use allconcur_net::runtime::RuntimeOptions;
use allconcur_net::LocalCluster;
use bytes::Bytes;
use proptest::prelude::*;
use std::io::{self, Read, Write};
use std::time::Duration;

// --- scripted I/O fakes ---------------------------------------------------

/// One step of a readiness script: `0` models EAGAIN (the syscall
/// would block — exactly what a spurious epoll wakeup produces), any
/// other value grants that many bytes of socket capacity.
type Grant = usize;

/// A `Write` whose capacity follows a script; models a non-blocking
/// socket under an EAGAIN storm. Once the script runs out, capacity is
/// unlimited (the storm passed).
struct StormWriter {
    script: Vec<Grant>,
    next: usize,
    sink: Vec<u8>,
}

impl StormWriter {
    fn new(script: Vec<Grant>) -> StormWriter {
        StormWriter { script, next: 0, sink: Vec::new() }
    }
}

impl StormWriter {
    fn next_grant(&mut self) -> io::Result<usize> {
        let grant = match self.script.get(self.next) {
            Some(&g) => {
                self.next += 1;
                g
            }
            None => usize::MAX,
        };
        if grant == 0 {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        Ok(grant)
    }
}

impl Write for StormWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.next_grant()?.min(buf.len());
        self.sink.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    // `WriteBuf::flush` goes through `write_vectored` (one writev per
    // ready link), so the capacity model must span iovecs like a real
    // socket buffer does.
    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        let mut left = self.next_grant()?;
        let mut written = 0;
        for b in bufs {
            if left == 0 {
                break;
            }
            let n = left.min(b.len());
            self.sink.extend_from_slice(&b[..n]);
            written += n;
            left -= n;
        }
        Ok(written)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A `Read` feeding a fixed wire through the same kind of script.
struct StormReader {
    wire: Vec<u8>,
    pos: usize,
    script: Vec<Grant>,
    next: usize,
}

impl Read for StormReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let grant = match self.script.get(self.next) {
            Some(&g) => {
                self.next += 1;
                g
            }
            None => usize::MAX,
        };
        if grant == 0 {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        let n = grant.min(buf.len()).min(self.wire.len() - self.pos);
        if n == 0 {
            return Ok(0); // wire exhausted: EOF
        }
        buf[..n].copy_from_slice(&self.wire[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn build_messages(payload_lens: &[usize]) -> Vec<Message> {
    payload_lens
        .iter()
        .enumerate()
        .map(|(i, &len)| match i % 3 {
            0 => Message::Bcast {
                round: i as u64,
                origin: (i % 5) as u32,
                payload: Bytes::from(vec![(i as u8).wrapping_mul(61); len]),
            },
            1 => Message::Fail { round: i as u64, failed: (i % 4) as u32, detector: 1 },
            _ => Message::Fwd { round: i as u64, origin: (i % 3) as u32 },
        })
        .collect()
}

fn frames_of(msgs: &[Message]) -> Vec<Bytes> {
    msgs.iter().map(|m| encode_frame(m).expect("encode")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The write state machine under an arbitrary readiness script:
    /// whatever mix of one-byte grants, mid-frame stalls, and EAGAIN
    /// bursts the kernel serves, the socket ends up with the exact
    /// concatenation of the pushed frames.
    #[test]
    fn write_buf_emits_identical_bytes_under_eagain_storms(
        payload_lens in proptest::collection::vec(0usize..48, 1..6),
        script in proptest::collection::vec(0usize..9, 0..96),
    ) {
        let frames = frames_of(&build_messages(&payload_lens));
        let expected: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        let mut wb = WriteBuf::new();
        for f in &frames {
            wb.push(f.clone());
        }
        let mut w = StormWriter::new(script);
        // The reactor re-calls flush on every writability event; a
        // would-block (`Ok(false)`) just waits for the next one. The
        // script is finite, so the loop terminates.
        let mut spins = 0;
        loop {
            match wb.flush(&mut w) {
                Ok(true) => break,
                Ok(false) => {
                    spins += 1;
                    prop_assert!(spins < 10_000, "flush never completed");
                }
                Err(e) => return Err(TestCaseError::fail(format!("real error: {e}"))),
            }
        }
        prop_assert!(wb.is_empty());
        prop_assert_eq!(wb.bytes(), 0);
        prop_assert_eq!(w.sink, expected);
    }

    /// Interrupting the flush at an arbitrary mid-frame byte offset and
    /// taking the unwritten tail (the degrade path) must hand back
    /// frames that resume exactly at the last **frame boundary** at or
    /// before the interruption — the partial head replays whole from
    /// byte 0, because the peer discards the cut-off tail along with
    /// the dead socket.
    #[test]
    fn take_frames_resumes_at_frame_boundary_for_every_offset(
        payload_lens in proptest::collection::vec(0usize..32, 1..5),
        cut in 0usize..1024,
    ) {
        let frames = frames_of(&build_messages(&payload_lens));
        let expected: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        let cut = cut % expected.len().max(1);
        let mut wb = WriteBuf::new();
        for f in &frames {
            wb.push(f.clone());
        }
        let mut w = StormWriter::new(vec![cut, 0]);
        let progressed = wb.flush(&mut w);
        prop_assert!(matches!(progressed, Ok(false)), "cut mid-stream must report not-drained");
        let taken = wb.take_frames();
        // The boundary of the frame containing byte `cut`.
        let mut boundary = 0;
        for f in &frames {
            if boundary + f.len() > cut {
                break;
            }
            boundary += f.len();
        }
        let replay: Vec<u8> = taken.iter().flat_map(|f| f.iter().copied()).collect();
        prop_assert_eq!(&replay[..], &expected[boundary..], "tail must restart at a frame boundary");
        // Socket got a clean prefix; replay covers everything at risk.
        prop_assert_eq!(&w.sink[..], &expected[..cut]);
        prop_assert!(cut >= boundary, "boundary beyond the cut");
    }

    /// The read state machine under spurious wakeups and byte-drip
    /// grants: every message decodes, in order, no matter how the
    /// stream is sliced or how many immediate would-blocks interleave.
    #[test]
    fn frame_reader_survives_spurious_wakeups_and_drips(
        payload_lens in proptest::collection::vec(0usize..48, 1..6),
        script in proptest::collection::vec(0usize..5, 0..128),
    ) {
        let msgs = build_messages(&payload_lens);
        let wire: Vec<u8> =
            frames_of(&msgs).iter().flat_map(|f| f.iter().copied()).collect();
        let mut r = StormReader { wire, pos: 0, script, next: 0 };
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let mut spins = 0;
        while out.len() < msgs.len() {
            match reader.read_frame(&mut r) {
                Ok(Some(m)) => out.push(m),
                Ok(None) => {
                    // Spurious wakeup resume path: no data was ready;
                    // the reactor would simply return to the poll.
                    spins += 1;
                    prop_assert!(spins < 10_000, "reader never completed");
                }
                Err(e) => return Err(TestCaseError::fail(format!("decode error: {e}"))),
            }
        }
        prop_assert_eq!(out, msgs);
    }
}

// --- end-to-end pins ------------------------------------------------------

const GOLDEN_N: usize = 4;
const GOLDEN_ROUNDS: u64 = 8;

/// FNV-1a over a delivery stream, framing every field so streams with
/// different shapes cannot collide by concatenation.
fn fnv_delivery_stream(deliveries: &[allconcur_net::runtime::Delivery]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for d in deliveries {
        eat(&d.round.to_le_bytes());
        eat(&(d.messages.len() as u64).to_le_bytes());
        for (origin, payload) in &d.messages {
            eat(&origin.to_le_bytes());
            eat(&(payload.len() as u64).to_le_bytes());
            eat(payload);
        }
    }
    h
}

/// The delivery stream an event-loop cluster produces for a fixed
/// scripted workload, pinned by hash. Agreement makes the stream a
/// pure function of the submissions, so any transport change that
/// perturbs it (reordering, loss, duplication, corruption) fails here
/// byte-for-byte.
#[test]
fn event_loop_delivery_stream_matches_golden_hash() {
    const GOLDEN: u64 = 0x7747_6963_a427_c835;
    let cluster = LocalCluster::spawn(
        allconcur_graph::standard::complete_digraph(GOLDEN_N),
        RuntimeOptions::default(),
    )
    .expect("spawn");
    let mut streams: Vec<Vec<allconcur_net::runtime::Delivery>> = vec![Vec::new(); GOLDEN_N];
    for round in 0..GOLDEN_ROUNDS {
        for i in 0..GOLDEN_N {
            let payload = Bytes::from(vec![round as u8, i as u8, 0xA7, (round as u8) ^ 0x55]);
            assert!(cluster.broadcast(i as u32, payload), "server {i} shed round {round}");
        }
        for (i, stream) in streams.iter_mut().enumerate() {
            let d = cluster
                .recv_delivery(i as u32, Duration::from_secs(20))
                .unwrap_or_else(|| panic!("server {i} timed out in round {round}"));
            assert_eq!(d.round, round);
            stream.push(d);
        }
    }
    cluster.shutdown();
    let h0 = fnv_delivery_stream(&streams[0]);
    for (i, s) in streams.iter().enumerate() {
        assert_eq!(fnv_delivery_stream(s), h0, "server {i} delivered a divergent stream");
    }
    assert_eq!(
        h0, GOLDEN,
        "delivery stream hash changed: 0x{h0:016x} — a transport change perturbed agreement output"
    );
}

fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
}

/// The n = 16 collapse regression: a whole in-process cluster must run
/// on O(cores) reactor threads, not O(n·d). The old runtime spawned
/// ~4·n·d ≈ 200 threads for GS(16,3); the pool spawns min(cores, n).
#[test]
fn cluster_thread_count_is_bounded_by_cores_not_topology() {
    let n = 16usize;
    let graph = allconcur_graph::gs::gs_digraph(n, 3).expect("GS(16,3)");
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let expected_pool = cores.min(n).max(1);

    let before = os_thread_count();
    assert!(before > 0, "/proc/self/task must be readable on linux");
    let cluster = LocalCluster::spawn(graph, RuntimeOptions::default()).expect("spawn");
    assert_eq!(cluster.loop_threads(), expected_pool, "pool must size to min(cores, n)");
    let during = os_thread_count();
    let delta = during.saturating_sub(before);
    // Slack of 2 covers test-harness helpers racing the measurement.
    assert!(
        delta <= expected_pool + 2,
        "cluster spawned {delta} threads for n={n} (pool={expected_pool}, cores={cores}) — \
         thread budget must be O(cores), not O(n·d)"
    );

    // And the budget-constrained cluster still reaches agreement.
    for i in 0..n {
        assert!(cluster.broadcast(i as u32, Bytes::from(vec![i as u8; 8])), "server {i} shed");
    }
    let mut reference = None;
    for i in 0..n as u32 {
        let d = cluster
            .recv_delivery(i, Duration::from_secs(30))
            .unwrap_or_else(|| panic!("server {i} timed out"));
        assert_eq!(d.round, 0);
        assert_eq!(d.messages.len(), n);
        match &reference {
            None => reference = Some(d.messages),
            Some(r) => assert_eq!(&d.messages, r, "total order violated at server {i}"),
        }
    }
    cluster.shutdown();
}
