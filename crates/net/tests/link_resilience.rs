//! Scripted transport-resilience tests over real loopback TCP: link
//! flaps under and over the grace budget, watermark-bounded Degraded
//! queues, and the typed connect-retry error.
//!
//! These are the end-to-end counterparts of the unit tests in
//! `crates/net/src/link.rs` — the link state machine is driven through
//! a full deployment, and the assertions read the runtimes'
//! [`LinkStatsSnapshot`] counters plus protocol-visible delivery order.

#![allow(deprecated)] // recv_delivery: the lockstep shim is exactly what scripted tests want

use allconcur_graph::standard::complete_digraph;
use allconcur_net::link::{connect_with_retry, BackoffPolicy, LinkStatsSnapshot};
use allconcur_net::runtime::RuntimeOptions;
use allconcur_net::LocalCluster;
use bytes::Bytes;
use std::time::{Duration, Instant};

const N: usize = 4;
const ROUND_TIMEOUT: Duration = Duration::from_secs(20);

fn payloads(round: u64) -> Vec<Bytes> {
    (0..N).map(|i| Bytes::from(vec![round as u8, i as u8, 0x5a])).collect()
}

/// Drive one full round and assert every server delivers the same
/// message set (total order across the deployment).
fn run_checked_round(cluster: &LocalCluster, round: u64) {
    for (i, p) in payloads(round).iter().enumerate() {
        assert!(cluster.broadcast(i as u32, p.clone()), "server {i} shed round {round}");
    }
    let mut reference = None;
    for i in 0..N as u32 {
        let d = cluster
            .recv_delivery(i, ROUND_TIMEOUT)
            .unwrap_or_else(|| panic!("server {i} timed out in round {round}"));
        assert_eq!(d.round, round, "server {i}");
        assert_eq!(d.messages.len(), N, "server {i} lost a message in round {round}");
        match &reference {
            None => reference = Some(d.messages),
            Some(r) => assert_eq!(&d.messages, r, "total order violated at server {i}"),
        }
    }
}

/// Poll server `id`'s counters until `pred` holds or `deadline` passes.
fn wait_stats(
    cluster: &LocalCluster,
    id: u32,
    what: &str,
    pred: impl Fn(&LinkStatsSnapshot) -> bool,
) -> LinkStatsSnapshot {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = cluster.link_stats(id);
        if pred(&s) {
            return s;
        }
        assert!(Instant::now() < deadline, "server {id} never reached `{what}`: {s:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn flap_under_grace_heals_without_suspicion() {
    let opts = RuntimeOptions { link_grace: Duration::from_secs(10), ..RuntimeOptions::default() };
    let cluster = LocalCluster::spawn(complete_digraph(N), opts).unwrap();
    run_checked_round(&cluster, 0);

    // Sever 0 → 1 for 100 ms — far under the grace budget — and submit
    // a round while it is down, so frames buffer in the Degraded queue.
    cluster.link_flap(0, 1, Duration::from_millis(100));
    run_checked_round(&cluster, 1);

    // The flap heals: the writer reconnects and replays its buffered
    // tail, the reader's pending disconnect grace is cancelled.
    let s0 = wait_stats(&cluster, 0, "reconnect with replay", |s| {
        s.reconnects >= 1 && s.replayed_frames >= 1
    });
    assert!(s0.degraded >= 1, "{s0:?}");
    assert_eq!(s0.grace_expired, 0, "under-grace flap must never exhaust the grace: {s0:?}");
    wait_stats(&cluster, 1, "healed reader grace", |s| s.healed >= 1);

    // Zero protocol-visible damage: no suspicions anywhere, no
    // membership change, and the next round totally ordered as usual
    // (replayed frames arrived in order — an out-of-order or lost frame
    // would have stalled or forked the streams above).
    run_checked_round(&cluster, 2);
    for id in 0..N as u32 {
        let s = cluster.link_stats(id);
        assert_eq!(s.suspicions, 0, "server {id} suspected during an under-grace flap: {s:?}");
    }
    cluster.shutdown();
}

#[test]
fn flap_over_grace_escalates_to_exactly_one_suspicion() {
    let opts =
        RuntimeOptions { link_grace: Duration::from_millis(50), ..RuntimeOptions::default() };
    let cluster = LocalCluster::spawn(complete_digraph(N), opts).unwrap();
    run_checked_round(&cluster, 0);

    // Hold 0 → 1 down well past the 50 ms grace: server 1's deferred
    // disconnect grace expires and escalates through the ◇P path.
    cluster.link_flap(0, 1, Duration::from_millis(400));
    wait_stats(&cluster, 1, "suspicion after grace expiry", |s| s.suspicions >= 1);

    // Exactly one: the single expired grace produces a single
    // suspicion, and no other server observed a disconnect at all.
    std::thread::sleep(Duration::from_millis(600)); // outlives the flap + reconnect
    let total: u64 = (0..N as u32).map(|id| cluster.link_stats(id).suspicions).sum();
    assert_eq!(total, 1, "an over-grace flap must cost exactly one suspicion");
    cluster.shutdown();
}

#[test]
fn watermark_saturation_bounds_degraded_queues() {
    let opts = RuntimeOptions {
        link_grace: Duration::from_secs(30),
        link_queue_high: 4,
        link_queue_low: 1,
        ..RuntimeOptions::default()
    };
    let cluster = LocalCluster::spawn(complete_digraph(N), opts).unwrap();
    run_checked_round(&cluster, 0);

    // Hold 0 → 1 down and keep round traffic flowing: the overlay's
    // redundant paths keep agreement alive, while 0's frames for 1 pile
    // into the bounded Degraded queue until the high watermark sheds.
    cluster.link_down(0, 1);
    let mut round = 1u64;
    let deadline = Instant::now() + Duration::from_secs(15);
    while cluster.link_stats(0).shed_frames == 0 {
        assert!(Instant::now() < deadline, "high watermark never reached: queue unbounded?");
        run_checked_round(&cluster, round);
        round += 1;
    }
    let s0 = cluster.link_stats(0);
    assert!(s0.degraded >= 1 && s0.shed_frames >= 1, "{s0:?}");

    // Heal: the (bounded) tail replays, and the deployment keeps its
    // order with zero suspicions — shed frames on one link are routed
    // around by vertex connectivity, exactly like transient loss.
    cluster.link_up(0, 1);
    wait_stats(&cluster, 0, "reconnect after link_up", |s| s.reconnects >= 1);
    run_checked_round(&cluster, round);
    for id in 0..N as u32 {
        assert_eq!(cluster.link_stats(id).suspicions, 0, "server {id}");
    }
    cluster.shutdown();
}

#[test]
fn connect_with_retry_returns_typed_error() {
    // Bind then drop a listener so the port actively refuses.
    let addr = std::net::TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
    let policy = BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(4), 7);
    let err = connect_with_retry(addr, 3, &policy).expect_err("nothing is listening");
    assert_eq!(err.attempts, 3);
    let io: std::io::Error = err.into();
    assert!(io.to_string().contains("3 attempts"), "{io}");

    // And the success path: a live listener connects on attempt one.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let live = listener.local_addr().unwrap();
    connect_with_retry(live, 3, &policy).expect("listener is live");
}
