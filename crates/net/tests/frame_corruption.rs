//! Property: flipping **any single bit** of an encoded frame stream is
//! detected — the reader either raises a typed error (CRC mismatch,
//! undecodable body, corrupt length prefix, or a truncation surfacing
//! as EOF) before the stream completes, or at minimum never delivers a
//! message that differs from the original sequence. Every byte offset
//! of the generated wire is exercised exhaustively per case; CRC32
//! guarantees detection for flips inside the checksummed region, and
//! the length prefix is covered because a mis-sized read window cannot
//! reproduce the stored checksum.

use allconcur_core::message::Message;
use allconcur_net::codec::{write_frame, FrameReader};
use bytes::Bytes;
use proptest::prelude::*;
use std::io::Cursor;

/// A small frame stream with varied message shapes, sized by the
/// generated payload lengths.
fn build_messages(payload_lens: &[usize]) -> Vec<Message> {
    payload_lens
        .iter()
        .enumerate()
        .map(|(i, &len)| match i % 3 {
            0 => Message::Bcast {
                round: i as u64,
                origin: (i % 5) as u32,
                payload: Bytes::from(vec![(i as u8).wrapping_mul(37); len]),
            },
            1 => Message::Fail { round: i as u64, failed: (i % 4) as u32, detector: 1 },
            _ => Message::Fwd { round: i as u64, origin: (i % 3) as u32 },
        })
        .collect()
}

fn wire_of(msgs: &[Message]) -> Vec<u8> {
    let mut wire = Vec::new();
    for m in msgs {
        write_frame(&mut wire, m).expect("encode");
    }
    wire
}

/// Parse `wire` to completion: the messages recovered before the first
/// error (if any), and whether an error occurred. A `Cursor` never
/// blocks, so `Ok(None)` cannot recur forever — exhaustion surfaces as
/// an EOF error.
fn parse_all(wire: &[u8], expect: usize) -> (Vec<Message>, bool) {
    let mut cursor = Cursor::new(wire);
    let mut reader = FrameReader::new();
    let mut out = Vec::new();
    while out.len() < expect {
        match reader.read_frame(&mut cursor) {
            Ok(Some(m)) => out.push(m),
            Ok(None) => continue,
            Err(_) => return (out, true),
        }
    }
    (out, false)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Exhaustive over the wire: one flipped bit at every byte offset,
    /// with the bit index and the frame shapes generated per case.
    #[test]
    fn single_bit_flip_is_detected_at_every_byte_offset(
        payload_lens in proptest::collection::vec(0usize..64, 1..4),
        bit in 0u8..8,
    ) {
        let msgs = build_messages(&payload_lens);
        let wire = wire_of(&msgs);
        // The intact stream parses completely and faithfully.
        let (clean, clean_err) = parse_all(&wire, msgs.len());
        prop_assert!(!clean_err, "intact wire must parse without error");
        prop_assert_eq!(&clean, &msgs);
        for byte in 0..wire.len() {
            let mut corrupt = wire.clone();
            corrupt[byte] ^= 1 << bit;
            let (parsed, errored) = parse_all(&corrupt, msgs.len());
            // Detection: the stream never completes silently...
            prop_assert!(
                errored,
                "flip at byte {} bit {} of {} went undetected",
                byte, bit, wire.len()
            );
            // ... and nothing delivered before the error is corrupt.
            prop_assert!(
                parsed.len() < msgs.len() && parsed[..] == msgs[..parsed.len()],
                "flip at byte {} bit {} delivered a corrupt prefix",
                byte, bit
            );
        }
    }
}
