//! Per-server TCP runtime on the shared epoll event loop.
//!
//! Each [`NodeRuntime`] registers its server — listener, UDP heartbeat
//! socket, outbound links, protocol state machine — with an
//! [`EventLoopPool`] reactor (see [`crate::event_loop`]). The reactor
//! owns all of it: accepting, handshakes, frame decoding, coalesced
//! vectored writes, reconnect backoff, heartbeats, FD sweeps, and the
//! grace/gate timers all run as readiness and timer callbacks on one
//! thread, so the state machine needs no locking at all — the paper's
//! libev deployment (§5), not a thread per socket.
//!
//! A standalone [`NodeRuntime::start`] owns a single-reactor pool (one
//! event-loop thread per server process, as deployed in the paper);
//! [`crate::cluster::LocalCluster`] shares one pool across every
//! in-process node via [`NodeRuntime::start_on`], keeping the whole
//! cluster at O(cores) threads instead of the old O(n·d).
//!
//! Message flow direction matches the overlay: a server *connects out*
//! to its successors (it sends to them) and *accepts in* from its
//! predecessors.
//!
//! # Link resilience
//!
//! Transient link faults are healed below the protocol (they are not
//! process failures — §3, §4.2.2). Each outbound link runs a small
//! state machine (diagrammed in [`crate::event_loop`]): while
//! Degraded, outbound frames buffer in a bounded
//! [`crate::link::FrameQueue`] (high/low watermark hysteresis; frames
//! above the high watermark are shed and counted, never stored), and a
//! timer-driven [`crate::link::BackoffPolicy`] reconnect replays the
//! buffered tail in order. Inbound (reader) disconnects get the same
//! grace: suspicion is deferred `link_grace`, and a predecessor
//! reconnecting under the budget cancels it and feeds
//! [`crate::heartbeat::AdaptiveTimeout::report_false_suspicion`] so the
//! FD's timeout adapts — an under-budget link flap causes zero
//! membership removals. Only an outage exceeding the budget escalates
//! to the ◇P suspicion path.

use crate::event_loop::{EventLoopPool, NodeSpec, NodeToken};
use crate::heartbeat::FdParams;
use crate::link::{LinkStats, LinkStatsSnapshot};
use allconcur_core::config::Config;
use allconcur_core::message::Message;
use allconcur_core::ServerId;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

/// One completed round, as seen by the application.
///
/// Re-exported from `allconcur-core` so every transport shares one
/// outcome type (it used to be defined here).
pub use allconcur_core::delivery::Delivery;

/// Inputs multiplexed into a node's reactor. Network frames no longer
/// travel through here — the reactor decodes them in place; this
/// channel carries only application- and fault-injection-side inputs.
pub(crate) enum NodeInput {
    Broadcast(Bytes),
    Suspect(ServerId),
    SetWindow(usize),
    SetLinkDrop {
        to: ServerId,
        ppm: u32,
    },
    /// Fault injection: flip one bit per sampled outgoing frame to `to`
    /// (parts-per-million, like [`NodeInput::SetLinkDrop`]).
    SetLinkFlip {
        to: ServerId,
        ppm: u32,
    },
    /// Fault injection: hold the outbound link to `to` down until
    /// healed by [`NodeInput::LinkUp`].
    LinkDown {
        to: ServerId,
    },
    /// Fault injection: hold the outbound link down for `down_for`,
    /// then auto-heal.
    LinkFlap {
        to: ServerId,
        down_for: Duration,
    },
    /// Fault injection: heal a held-down link.
    LinkUp {
        to: ServerId,
    },
}

/// Drop rates are parts-per-million, matching the simulator's fault
/// layer.
pub(crate) const DROP_PPM_SCALE: u64 = 1_000_000;

/// Runtime tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// FD timing.
    pub fd: FdParams,
    /// Escalate a predecessor's TCP disconnect into a suspicion once
    /// the `link_grace` budget expires without a reconnect (sound under
    /// fail-stop because healthy overlay connections are never closed
    /// for long; much faster than waiting `Δ_to` for genuinely dead
    /// peers).
    pub suspect_on_disconnect: bool,
    /// Retry budget while establishing successor connections.
    pub connect_attempts: u32,
    /// Base delay of the capped-exponential connect/reconnect backoff
    /// (see [`crate::link::BackoffPolicy`]).
    pub connect_backoff: Duration,
    /// Cap on the exponential backoff component.
    pub connect_backoff_cap: Duration,
    /// How long a disconnected link (either direction) may stay in its
    /// grace period before escalating: a Degraded writer drops to Down
    /// and a reader disconnect becomes a suspicion. Under-budget flaps
    /// heal with zero protocol impact.
    pub link_grace: Duration,
    /// High watermark of each Degraded link's bounded frame queue:
    /// above it, new frames are shed (counted) instead of buffered.
    pub link_queue_high: usize,
    /// Low watermark: a saturated queue resumes accepting only after
    /// draining below this (hysteresis).
    pub link_queue_low: usize,
    /// Capacity of the node's input channel.
    /// [`NodeRuntime::broadcast`] fails fast when it fills, surfacing
    /// saturation to the application as a typed `Busy` upstream.
    pub input_queue_depth: usize,
    /// How long the protocol holds back peers' `BCAST`s for a round
    /// the application has not submitted a payload for yet.
    ///
    /// Without the gate, a peer's round-`r` broadcast racing ahead of the
    /// local `broadcast()` call makes Algorithm 1 line 15 answer with an
    /// *empty* message and silently defers the application's payload to
    /// round `r+1`. Submitting before or promptly after a round opens
    /// (as [`crate::cluster::LocalCluster::run_round`] and the `Cluster`
    /// facade do) never hits the deadline; a server left without a
    /// submission falls back to the empty broadcast after the grace, so
    /// liveness is preserved.
    ///
    /// The gate is **round-aware**: a `BCAST` is held back only while
    /// its round is genuinely unsubmitted — at or past
    /// [`allconcur_core::server::Server::next_unsubmitted_round`], i.e.
    /// the application has neither broadcast nor queued a payload
    /// covering it. Rounds the application already submitted ahead for
    /// (pipelined submissions under a `round_window > 1`) flow through
    /// undelayed, so the grace costs pipelined workloads nothing.
    pub app_grace: Duration,
    /// Round-pipelining window `W` (default 1 — sequential rounds): how
    /// many consecutive rounds each server keeps in flight. Larger
    /// windows let dissemination of round `r + 1` proceed while round
    /// `r` completes, amortising the network round-trip — rounds/sec
    /// scales with `W` until CPU-bound (see the `tcp_rounds` bench).
    pub round_window: usize,
    /// Reactor threads a standalone [`NodeRuntime::start`] spins up for
    /// its private pool (`0` = one, the paper's one-loop-per-server
    /// shape). Nodes started on a shared pool via
    /// [`NodeRuntime::start_on`] ignore this —
    /// [`crate::cluster::LocalCluster`] sizes its pool `min(cores, n)`.
    pub loop_threads: usize,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            fd: FdParams::fast(),
            suspect_on_disconnect: true,
            connect_attempts: 100,
            connect_backoff: Duration::from_millis(10),
            connect_backoff_cap: Duration::from_millis(160),
            link_grace: Duration::from_millis(400),
            link_queue_high: 1024,
            link_queue_low: 256,
            input_queue_depth: 4096,
            app_grace: Duration::from_millis(400),
            round_window: 1,
            loop_threads: 0,
        }
    }
}

/// Backoff applied to a listener whose `accept` failed with a real
/// error (typically fd exhaustion): capped exponential in the number of
/// consecutive failures, so a starved node re-arms its listener at
/// 10 ms and degrades toward one attempt per second instead of spinning
/// hot on an error that will keep failing until fds free up.
pub fn accept_retry_delay(consecutive_failures: u32) -> Duration {
    const BASE: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_secs(1);
    let exp = consecutive_failures.saturating_sub(1).min(10);
    BASE.checked_mul(1u32 << exp).map(|d| d.min(CAP)).unwrap_or(CAP)
}

/// Handle to a running AllConcur server on real sockets.
///
/// The server itself lives on an [`EventLoopPool`] reactor; this handle
/// owns the channels into and out of it (and, for a standalone
/// [`NodeRuntime::start`], the private pool).
pub struct NodeRuntime {
    id: ServerId,
    input_tx: Sender<NodeInput>,
    delivery_rx: Receiver<Delivery>,
    stats: Arc<LinkStats>,
    pool: Arc<EventLoopPool>,
    token: NodeToken,
}

impl NodeRuntime {
    /// Start server `id` on its own private event loop (the paper's
    /// one-process-per-server deployment). `listener`/`udp` must
    /// already be bound; `tcp_addrs`/`udp_addrs` give every server's
    /// addresses (index = server id).
    pub fn start(
        id: ServerId,
        cfg: Config,
        listener: TcpListener,
        udp: UdpSocket,
        tcp_addrs: Vec<SocketAddr>,
        udp_addrs: Vec<SocketAddr>,
        opts: RuntimeOptions,
    ) -> std::io::Result<NodeRuntime> {
        let pool = EventLoopPool::new(opts.loop_threads.max(1))?;
        NodeRuntime::start_on(&pool, id, cfg, listener, udp, tcp_addrs, udp_addrs, opts)
    }

    /// Start server `id` on a shared reactor pool. Used by
    /// [`crate::cluster::LocalCluster`] to run a whole in-process
    /// cluster on O(cores) threads.
    #[allow(clippy::too_many_arguments)]
    pub fn start_on(
        pool: &Arc<EventLoopPool>,
        id: ServerId,
        cfg: Config,
        listener: TcpListener,
        udp: UdpSocket,
        tcp_addrs: Vec<SocketAddr>,
        udp_addrs: Vec<SocketAddr>,
        opts: RuntimeOptions,
    ) -> std::io::Result<NodeRuntime> {
        let (input_tx, input_rx) = bounded::<NodeInput>(opts.input_queue_depth.max(8));
        // Deliveries are consumed by the application at its own pace and
        // must never stall the reactor mid-round.
        // lint:allow(bounded_queues): delivery backlog is bounded upstream by rsm admission control; blocking the protocol thread on a slow application consumer would deadlock rounds cluster-wide
        let (delivery_tx, delivery_rx) = unbounded::<Delivery>();
        let stats = Arc::new(LinkStats::default());
        let token = pool.register(NodeSpec {
            id,
            cfg,
            listener,
            udp,
            tcp_addrs,
            udp_addrs,
            opts,
            input_rx,
            delivery_tx,
            stats: stats.clone(),
        })?;
        Ok(NodeRuntime { id, input_tx, delivery_rx, stats, pool: pool.clone(), token })
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Queue an input for the reactor and wake it.
    fn send_input(&self, input: NodeInput) {
        if self.input_tx.send(input).is_ok() {
            self.pool.wake(self.token);
        }
    }

    /// Submit this round's payload for A-broadcast. Returns `false`
    /// when the protocol input queue is saturated (end-to-end
    /// backpressure) — the caller should back off and retry; the
    /// payload was **not** accepted.
    #[must_use = "a false return means the payload was shed, not submitted"]
    pub fn broadcast(&self, payload: Bytes) -> bool {
        // A short patience window absorbs sub-millisecond bursts without
        // turning them into spurious Busy errors; genuine saturation
        // (reactor pinned) still fails fast.
        let ok = self
            .input_tx
            .send_timeout(NodeInput::Broadcast(payload), Duration::from_millis(5))
            .is_ok();
        if ok {
            self.pool.wake(self.token);
        }
        ok
    }

    /// Blocking receive of the next delivery, with timeout.
    pub fn recv_delivery(&self, timeout: Duration) -> Option<Delivery> {
        self.delivery_rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive of the next delivery.
    pub fn try_recv_delivery(&self) -> Option<Delivery> {
        self.delivery_rx.try_recv().ok()
    }

    /// Inject a failure suspicion, as if the local FD had raised it.
    /// Used by the `Cluster` facade's lifecycle API and by `◇P` tests.
    pub fn inject_suspicion(&self, suspect: ServerId) {
        self.send_input(NodeInput::Suspect(suspect));
    }

    /// Adjust the round-pipelining window at runtime (applied by the
    /// reactor before its next input).
    pub fn set_round_window(&self, window: usize) {
        self.send_input(NodeInput::SetWindow(window));
    }

    /// Drop outgoing protocol frames to successor `to` with probability
    /// `ppm / 1e6` (`0` clears the fault). The drop happens in the
    /// writer path — the frame is simply never written — so the TCP
    /// connection stays up and UDP heartbeats keep flowing: this
    /// injects *message loss*, not a disconnect, and the deployment
    /// survives it through the overlay's redundant dissemination paths.
    pub fn set_link_drop(&self, to: ServerId, ppm: u32) {
        self.send_input(NodeInput::SetLinkDrop { to, ppm });
    }

    /// Corrupt outgoing protocol frames to successor `to` with
    /// probability `ppm / 1e6` (`0` clears the fault): one bit of the
    /// sampled frame's copy is flipped before it is written. The
    /// receiver's CRC check must reject the frame and heal the link —
    /// the flip must never surface as a delivered payload (the
    /// `SilentCorruption` nemesis property).
    pub fn set_link_flip(&self, to: ServerId, ppm: u32) {
        self.send_input(NodeInput::SetLinkFlip { to, ppm });
    }

    /// Fault injection: sever the outbound link to `to` and hold it
    /// down until [`NodeRuntime::link_up`]. Pending writes are flushed
    /// first (TCP delivers them with the FIN), then outbound frames
    /// buffer in the bounded Degraded queue for replay on heal.
    pub fn link_down(&self, to: ServerId) {
        self.send_input(NodeInput::LinkDown { to });
    }

    /// Fault injection: like [`NodeRuntime::link_down`], but the link
    /// auto-heals after `down_for`.
    pub fn link_flap(&self, to: ServerId, down_for: Duration) {
        self.send_input(NodeInput::LinkFlap { to, down_for });
    }

    /// Fault injection: heal a link held down by
    /// [`NodeRuntime::link_down`]/[`NodeRuntime::link_flap`] and start
    /// reconnecting immediately.
    pub fn link_up(&self, to: ServerId) {
        self.send_input(NodeInput::LinkUp { to });
    }

    /// Point-in-time copy of this runtime's resilience counters.
    pub fn link_stats(&self) -> LinkStatsSnapshot {
        self.stats.snapshot()
    }

    /// Remove the node from its reactor and close its sockets. Used
    /// both for graceful shutdown and to emulate a crash (peers detect
    /// via disconnect/FD).
    pub fn shutdown(self) {
        let _ = self.shutdown_and_drain();
    }

    /// Like [`NodeRuntime::shutdown`], but additionally return every
    /// delivery the server produced that the application had not yet
    /// received. Draining happens *after* the reactor has torn the node
    /// down, so no completed round can slip away in the teardown
    /// window.
    pub fn shutdown_and_drain(self) -> Vec<Delivery> {
        self.pool.remove(self.token);
        let mut drained = Vec::new();
        while let Some(d) = self.try_recv_delivery() {
            drained.push(d);
        }
        drained
    }
}

/// Jitter seed for the `id → to` link's backoff stream: unique per
/// directed link so reconnect storms de-phase.
pub(crate) fn link_seed(id: ServerId, to: ServerId) -> u64 {
    (u64::from(id) << 32) ^ u64::from(to) ^ 0xA5A5_5A5A_D00D_F00D
}

/// Whether two messages are the *same* fan-out message, cheaply: field
/// equality, with `Bcast` payloads compared by buffer identity instead
/// of contents. The state machine fans a message out by cloning it per
/// successor (refcounted payload), so identity captures exactly those
/// runs; a false negative merely costs one re-encode.
pub(crate) fn same_message(a: &Message, b: &Message) -> bool {
    match (a, b) {
        (
            Message::Bcast { round: r1, origin: o1, payload: p1 },
            Message::Bcast { round: r2, origin: o2, payload: p2 },
        ) => {
            r1 == r2
                && o1 == o2
                && p1.len() == p2.len()
                && (p1.is_empty() || p1.as_ptr() == p2.as_ptr())
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::accept_retry_delay;
    use std::time::Duration;

    #[test]
    fn accept_backoff_grows_and_caps() {
        assert_eq!(accept_retry_delay(0), Duration::from_millis(10));
        assert_eq!(accept_retry_delay(1), Duration::from_millis(10));
        assert_eq!(accept_retry_delay(2), Duration::from_millis(20));
        assert_eq!(accept_retry_delay(3), Duration::from_millis(40));
        // Monotone non-decreasing, capped at 1 s.
        let mut prev = Duration::ZERO;
        for n in 0..64 {
            let d = accept_retry_delay(n);
            assert!(d >= prev, "backoff must not shrink (n={n})");
            assert!(d <= Duration::from_secs(1), "backoff must cap (n={n})");
            prev = d;
        }
        assert_eq!(accept_retry_delay(u32::MAX), Duration::from_secs(1));
    }
}
