//! Per-server TCP runtime.
//!
//! Thread layout per server (mirroring the paper's libev-based event
//! loop, translated to blocking threads):
//!
//! * **accept** — accepts connections from overlay predecessors; each
//!   accepted connection gets a **reader** thread that decodes frames and
//!   forwards them to the protocol thread;
//! * **protocol** — owns the [`Server`] state machine and the buffered
//!   writers to overlay successors; the single consumer of the input
//!   channel, so the state machine needs no locking at all;
//! * **heartbeat sender / receiver / FD monitor** — see
//!   [`crate::heartbeat`].
//!
//! Message flow direction matches the overlay: a server *connects out* to
//! its successors (it sends to them) and *accepts in* from its
//! predecessors.

use crate::codec::{
    encode_frame, read_handshake, write_encoded_frame, write_handshake, FrameReader,
};
use crate::heartbeat::{self, FdParams, HeartbeatTable};
use allconcur_core::config::Config;
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_core::ServerId;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One completed round, as seen by the application.
///
/// Re-exported from `allconcur-core` so every transport shares one
/// outcome type (it used to be defined here).
pub use allconcur_core::delivery::Delivery;

/// Inputs multiplexed into the protocol thread.
enum NodeInput {
    Net { from: ServerId, msg: Message },
    Broadcast(Bytes),
    Suspect(ServerId),
    SetWindow(usize),
    SetLinkDrop { to: ServerId, ppm: u32 },
    Shutdown,
}

/// Drop rates are parts-per-million, matching the simulator's fault
/// layer.
const DROP_PPM_SCALE: u64 = 1_000_000;

/// Runtime tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// FD timing.
    pub fd: FdParams,
    /// Treat a predecessor's TCP disconnect as an immediate suspicion
    /// (faster than waiting `Δ_to`; sound under fail-stop because healthy
    /// overlay connections are never closed).
    pub suspect_on_disconnect: bool,
    /// Retry budget while establishing successor connections.
    pub connect_attempts: u32,
    /// Delay between connection attempts.
    pub connect_backoff: Duration,
    /// How long the protocol thread holds back peers' `BCAST`s for a
    /// round the application has not submitted a payload for yet.
    ///
    /// Without the gate, a peer's round-`r` broadcast racing ahead of the
    /// local `broadcast()` call makes Algorithm 1 line 15 answer with an
    /// *empty* message and silently defers the application's payload to
    /// round `r+1`. Submitting before or promptly after a round opens
    /// (as [`crate::cluster::LocalCluster::run_round`] and the `Cluster`
    /// facade do) never hits the deadline; a server left without a
    /// submission falls back to the empty broadcast after the grace, so
    /// liveness is preserved.
    ///
    /// The gate is **round-aware**: a `BCAST` is held back only while
    /// its round is genuinely unsubmitted — at or past
    /// [`allconcur_core::server::Server::next_unsubmitted_round`], i.e.
    /// the application has neither broadcast nor queued a payload
    /// covering it. Rounds the application already submitted ahead for
    /// (pipelined submissions under a `round_window > 1`) flow through
    /// undelayed, so the grace costs pipelined workloads nothing.
    pub app_grace: Duration,
    /// Round-pipelining window `W` (default 1 — sequential rounds): how
    /// many consecutive rounds each server keeps in flight. Larger
    /// windows let dissemination of round `r + 1` proceed while round
    /// `r` completes, amortising the network round-trip — rounds/sec
    /// scales with `W` until CPU-bound (see the `tcp_rounds` bench).
    pub round_window: usize,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            fd: FdParams::fast(),
            suspect_on_disconnect: true,
            connect_attempts: 100,
            connect_backoff: Duration::from_millis(10),
            app_grace: Duration::from_millis(400),
            round_window: 1,
        }
    }
}

/// Handle to a running AllConcur server on real sockets.
pub struct NodeRuntime {
    id: ServerId,
    input_tx: Sender<NodeInput>,
    delivery_rx: Receiver<Delivery>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl NodeRuntime {
    /// Start server `id`. `listener`/`udp` must already be bound;
    /// `tcp_addrs`/`udp_addrs` give every server's addresses (index =
    /// server id).
    pub fn start(
        id: ServerId,
        cfg: Config,
        listener: TcpListener,
        udp: UdpSocket,
        tcp_addrs: Vec<SocketAddr>,
        udp_addrs: Vec<SocketAddr>,
        opts: RuntimeOptions,
    ) -> std::io::Result<NodeRuntime> {
        let stop = Arc::new(AtomicBool::new(false));
        let (input_tx, input_rx) = unbounded::<NodeInput>();
        let (delivery_tx, delivery_rx) = unbounded::<Delivery>();
        let mut threads = Vec::new();

        let graph = cfg.graph.clone();
        let successors: Vec<ServerId> = graph.successors(id).to_vec();
        let predecessors: Vec<ServerId> = graph.predecessors(id).to_vec();

        // --- accept + reader threads -------------------------------------
        listener.set_nonblocking(true)?;
        // On a startup failure after the first thread is running, raise
        // the stop flag so already-spawned threads wind down instead of
        // leaking — the caller gets the io::Error, not a panic.
        let stop_on_err = {
            let stop = stop.clone();
            move |e: std::io::Error| {
                stop.store(true, Ordering::Relaxed);
                e
            }
        };
        {
            let stop = stop.clone();
            let input_tx = input_tx.clone();
            let suspect_on_disconnect = opts.suspect_on_disconnect;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ac-accept-{id}"))
                    .spawn(move || {
                        let mut readers = Vec::new();
                        while !stop.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    stream.set_nonblocking(false).ok();
                                    let tx = input_tx.clone();
                                    let stop2 = stop.clone();
                                    // A failed reader spawn (thread
                                    // exhaustion) drops the stream; the
                                    // peer sees a disconnect and its FD
                                    // takes over — never a panic here.
                                    if let Ok(r) =
                                        spawn_reader(id, stream, tx, stop2, suspect_on_disconnect)
                                    {
                                        readers.push(r);
                                    }
                                }
                                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(_) => break,
                            }
                        }
                        for r in readers {
                            let _ = r.join();
                        }
                    })
                    .map_err(&stop_on_err)?,
            );
        }

        // --- outgoing connections to successors ---------------------------
        let mut writers: HashMap<ServerId, BufWriter<TcpStream>> = HashMap::new();
        for &succ in &successors {
            let addr = tcp_addrs[succ as usize];
            let stream = connect_with_retry(addr, opts.connect_attempts, opts.connect_backoff)?;
            stream.set_nodelay(true).ok();
            let mut w = BufWriter::new(stream);
            write_handshake(&mut w, id)?;
            w.flush()?;
            writers.insert(succ, w);
        }

        // --- protocol thread ----------------------------------------------
        {
            let stop = stop.clone();
            let app_grace = opts.app_grace;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ac-proto-{id}"))
                    .spawn(move || {
                        protocol_loop(id, cfg, writers, input_rx, delivery_tx, stop, app_grace);
                    })
                    .map_err(&stop_on_err)?,
            );
        }

        // --- failure detector ----------------------------------------------
        let hb_table = HeartbeatTable::new(&predecessors);
        let succ_udp: Vec<SocketAddr> = successors.iter().map(|&s| udp_addrs[s as usize]).collect();
        let hb_send_sock = udp.try_clone()?;
        threads.push(
            heartbeat::spawn_sender(hb_send_sock, id, succ_udp, opts.fd, stop.clone())
                .map_err(&stop_on_err)?,
        );
        threads.push(
            heartbeat::spawn_receiver(udp, id, hb_table.clone(), stop.clone())
                .map_err(&stop_on_err)?,
        );
        {
            let tx = input_tx.clone();
            threads.push(
                heartbeat::spawn_monitor(id, hb_table, opts.fd, stop.clone(), move |s| {
                    let _ = tx.send(NodeInput::Suspect(s));
                })
                .map_err(&stop_on_err)?,
            );
        }

        Ok(NodeRuntime { id, input_tx, delivery_rx, stop, threads })
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Submit this round's payload for A-broadcast.
    pub fn broadcast(&self, payload: Bytes) {
        let _ = self.input_tx.send(NodeInput::Broadcast(payload));
    }

    /// Blocking receive of the next delivery, with timeout.
    pub fn recv_delivery(&self, timeout: Duration) -> Option<Delivery> {
        self.delivery_rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive of the next delivery.
    pub fn try_recv_delivery(&self) -> Option<Delivery> {
        self.delivery_rx.try_recv().ok()
    }

    /// Inject a failure suspicion, as if the local FD had raised it.
    /// Used by the `Cluster` facade's lifecycle API and by `◇P` tests.
    pub fn inject_suspicion(&self, suspect: ServerId) {
        let _ = self.input_tx.send(NodeInput::Suspect(suspect));
    }

    /// Adjust the round-pipelining window at runtime (applied by the
    /// protocol thread before its next input).
    pub fn set_round_window(&self, window: usize) {
        let _ = self.input_tx.send(NodeInput::SetWindow(window));
    }

    /// Drop outgoing protocol frames to successor `to` with probability
    /// `ppm / 1e6` (`0` clears the fault). The drop happens in the
    /// protocol thread's writer path — the frame is simply never
    /// written — so the TCP connection stays up and UDP heartbeats keep
    /// flowing: this injects *message loss*, not a disconnect, and the
    /// deployment survives it through the overlay's redundant
    /// dissemination paths.
    pub fn set_link_drop(&self, to: ServerId, ppm: u32) {
        let _ = self.input_tx.send(NodeInput::SetLinkDrop { to, ppm });
    }

    /// Stop all threads and close sockets. Used both for graceful
    /// shutdown and to emulate a crash (peers detect via disconnect/FD).
    pub fn shutdown(self) {
        let _ = self.shutdown_and_drain();
    }

    /// Like [`NodeRuntime::shutdown`], but additionally return every
    /// delivery the server produced that the application had not yet
    /// received. Draining happens *after* the protocol thread has
    /// joined, so no completed round can slip away in the teardown
    /// window.
    pub fn shutdown_and_drain(mut self) -> Vec<Delivery> {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.input_tx.send(NodeInput::Shutdown);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let mut drained = Vec::new();
        while let Some(d) = self.try_recv_delivery() {
            drained.push(d);
        }
        drained
    }
}

fn connect_with_retry(
    addr: SocketAddr,
    attempts: u32,
    backoff: Duration,
) -> std::io::Result<TcpStream> {
    let mut last_err = None;
    for _ in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(backoff);
            }
        }
    }
    // `attempts.max(1)` guarantees at least one iteration recorded an
    // error, but the fallback keeps this typed rather than panicking.
    Err(last_err.unwrap_or_else(|| std::io::Error::other("connect retry loop made no attempts")))
}

fn spawn_reader(
    id: ServerId,
    mut stream: TcpStream,
    tx: Sender<NodeInput>,
    stop: Arc<AtomicBool>,
    suspect_on_disconnect: bool,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new().name(format!("ac-read-{id}")).spawn(move || {
        stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
        let from = loop {
            match read_handshake(&mut stream) {
                Ok(f) => break f,
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        // Buffered frame parsing: one `read` syscall pulls a whole
        // burst of pipelined frames, and a read timeout mid-frame
        // resumes cleanly instead of desynchronising the stream.
        let mut frames = FrameReader::new();
        while !stop.load(Ordering::Relaxed) {
            match frames.read_frame(&mut stream) {
                Ok(Some(msg)) => {
                    if tx.send(NodeInput::Net { from, msg }).is_err() {
                        return;
                    }
                }
                Ok(None) => {} // read timeout: poll the stop flag
                Err(_) => {
                    // EOF or reset: the predecessor is gone.
                    if suspect_on_disconnect && !stop.load(Ordering::Relaxed) {
                        let _ = tx.send(NodeInput::Suspect(from));
                    }
                    return;
                }
            }
        }
    })
}

/// Mutable state of one server's protocol thread.
struct ProtocolState {
    server: Server,
    writers: HashMap<ServerId, BufWriter<TcpStream>>,
    delivery_tx: Sender<Delivery>,
    actions: Vec<Action>,
    /// Writers holding unflushed bytes. Flushed once per drained input
    /// batch ([`ProtocolState::flush_writers`]), not per frame — with
    /// `d` successors and a burst of forwarded messages this collapses
    /// many small `flush` syscalls into one per writer per batch.
    dirty: Vec<ServerId>,
    /// Peer `BCAST`s held back while their round awaits the
    /// application's submission (see [`RuntimeOptions::app_grace`]),
    /// in arrival order.
    deferred: std::collections::VecDeque<(ServerId, Message)>,
    /// When the gate opened; deferred messages are force-released past
    /// this instant.
    gate_deadline: Option<std::time::Instant>,
    app_grace: Duration,
    /// Per-successor send-drop rates (parts-per-million) — the writer
    /// path of the nemesis fault surface. Empty in healthy operation.
    drop_ppm: HashMap<ServerId, u32>,
    /// xorshift64* state for drop sampling: deterministic per node,
    /// cheap, and independent of the `rand` crate.
    drop_rng: u64,
}

impl ProtocolState {
    /// Feed one event and act on the outputs. Returns `false` when the
    /// application side hung up. (Payloads submitted beyond the current
    /// round queue inside the state machine and open later rounds by
    /// themselves — the §5 batching flow.)
    fn process(&mut self, event: Event) -> bool {
        self.actions.clear();
        self.server.handle_into(event, &mut self.actions);
        self.write_actions()
    }

    /// Write out sends (encoding each distinct message **once** and
    /// fanning the same refcounted frame to every destination) and
    /// forward deliveries. Writers are only marked dirty here; the
    /// caller flushes them per input batch. Returns `false` when the
    /// application side hung up.
    fn write_actions(&mut self) -> bool {
        // The state machine emits fan-outs as consecutive `Send`s that
        // clone one message, so a one-entry frame cache captures the
        // whole run; a miss just re-encodes.
        let mut frame: Option<(Message, bytes::Bytes)> = None;
        for action in self.actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    // Injected send-loss (field-precise so the actions
                    // drain above stays borrowable): the frame never
                    // leaves the writer path.
                    if let Some(&ppm) = self.drop_ppm.get(&to) {
                        let mut x = self.drop_rng;
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        self.drop_rng = x;
                        if x.wrapping_mul(0x2545_f491_4f6c_dd1d) % DROP_PPM_SCALE < ppm as u64 {
                            continue;
                        }
                    }
                    let Some(w) = self.writers.get_mut(&to) else { continue };
                    let cached = match &frame {
                        Some((m, f)) if same_message(m, &msg) => f.clone(),
                        _ => match encode_frame(&msg) {
                            Ok(f) => {
                                frame = Some((msg, f.clone()));
                                f
                            }
                            Err(_) => continue, // oversized: drop, FD handles the peer
                        },
                    };
                    if write_encoded_frame(w, &cached).is_err() {
                        self.writers.remove(&to); // peer gone; FD handles the rest
                        self.dirty.retain(|&d| d != to);
                    } else if !self.dirty.contains(&to) {
                        self.dirty.push(to);
                    }
                }
                Action::Deliver { round, messages } => {
                    if self.delivery_tx.send(Delivery { round, messages }).is_err() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Flush every writer that buffered bytes since the last flush.
    fn flush_writers(&mut self) {
        for to in std::mem::take(&mut self.dirty) {
            if let Some(w) = self.writers.get_mut(&to) {
                if w.flush().is_err() {
                    self.writers.remove(&to);
                }
            }
        }
    }

    /// Whether `msg` must wait for the application: a `BCAST` belonging
    /// to a round the application has neither broadcast in nor queued a
    /// payload for. Round-aware, so pipelined submissions ahead of the
    /// delivery frontier are never delayed; only genuinely-unsubmitted
    /// rounds sit out the grace.
    fn gated(&self, msg: &Message) -> bool {
        matches!(msg, Message::Bcast { .. }) && msg.round() >= self.server.next_unsubmitted_round()
    }

    /// Feed one multiplexed input. Returns `false` when the loop should
    /// exit (shutdown, or the application side hung up). `None` means
    /// the deferred-release grace expired.
    fn handle_input(&mut self, input: Option<NodeInput>) -> bool {
        let ok = match input {
            None => {
                // Grace expired without an application submission.
                self.gate_deadline = None;
                self.release_deferred(true)
            }
            Some(NodeInput::Net { from, msg }) => {
                // Defer a BCAST for a round the application has not
                // submitted to yet — and, to preserve **per-link FIFO**,
                // any message arriving behind a deferred one *from the
                // same sender*: the tracking digraphs' edge refutation
                // assumes a notifier's relayed `BCAST` is processed
                // before its `FAIL` on every link (see
                // `allconcur_core::tracking`), so a `FAIL` must never
                // overtake a gated `BCAST` it arrived behind. Messages
                // on *other* links flow through undelayed.
                if self.deferred.iter().any(|&(f, _)| f == from) || self.gated(&msg) {
                    if self.gate_deadline.is_none() {
                        self.gate_deadline = Some(std::time::Instant::now() + self.app_grace);
                    }
                    self.deferred.push_back((from, msg));
                    true
                } else {
                    self.process(Event::Receive { from, msg })
                }
            }
            Some(NodeInput::Broadcast(payload)) => self.process(Event::ABroadcast(payload)),
            Some(NodeInput::Suspect(s)) => {
                // The monitor and disconnect paths can both report the
                // same suspicion; the state machine dedups via F_i, and a
                // suspicion for an already-removed server is a no-op.
                self.process(Event::Suspect { suspect: s })
            }
            Some(NodeInput::SetWindow(w)) => {
                self.server.set_round_window(w);
                true
            }
            Some(NodeInput::SetLinkDrop { to, ppm }) => {
                if ppm == 0 {
                    self.drop_ppm.remove(&to);
                } else {
                    self.drop_ppm.insert(to, ppm);
                }
                true
            }
            Some(NodeInput::Shutdown) => return false,
        };
        ok && self.release_deferred(false)
    }

    /// Process every deferred peer message that may be released: one
    /// that is no longer gated (the application submitted its round, or
    /// the window slid past it) *and* has no earlier deferred message
    /// from the same sender — releases preserve per-link FIFO, the
    /// ordering the tracking digraphs' refutation logic depends on.
    /// `force` releases the oldest still-gated message unconditionally —
    /// the grace expired, so the state machine answers with an empty
    /// broadcast (Algorithm 1 line 15) rather than stalling the cluster.
    fn release_deferred(&mut self, mut force: bool) -> bool {
        let mut i = 0;
        while i < self.deferred.len() {
            let from = self.deferred[i].0;
            // Per-link FIFO: an earlier deferred message from the same
            // sender must go first. (The head, i == 0, is never blocked.)
            if self.deferred.iter().take(i).any(|&(f, _)| f == from) {
                i += 1;
                continue;
            }
            if force || !self.gated(&self.deferred[i].1) {
                force = false; // the grace force-releases exactly one
                let Some((from, msg)) = self.deferred.remove(i) else { break };
                if !self.process(Event::Receive { from, msg }) {
                    return false;
                }
                // Processing can open rounds / advance the frontier and
                // ungate earlier-queued messages: re-scan from the front.
                i = 0;
            } else {
                i += 1;
            }
        }
        if self.deferred.is_empty() {
            self.gate_deadline = None;
        } else if self.gate_deadline.is_none() {
            self.gate_deadline = Some(std::time::Instant::now() + self.app_grace);
        }
        true
    }
}

fn protocol_loop(
    id: ServerId,
    cfg: Config,
    writers: HashMap<ServerId, BufWriter<TcpStream>>,
    input_rx: Receiver<NodeInput>,
    delivery_tx: Sender<Delivery>,
    stop: Arc<AtomicBool>,
    app_grace: Duration,
) {
    let mut st = ProtocolState {
        server: Server::new(cfg, id),
        writers,
        delivery_tx,
        actions: Vec::new(),
        dirty: Vec::new(),
        deferred: std::collections::VecDeque::new(),
        gate_deadline: None,
        app_grace,
        drop_ppm: HashMap::new(),
        drop_rng: 0x9e37_79b9_7f4a_7c15 ^ (id as u64 + 1),
    };
    loop {
        // While peer messages are gated, wake up at the deadline to
        // force-release them; otherwise block on the next input.
        let input = match st.gate_deadline {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(std::time::Instant::now());
                match input_rx.recv_timeout(wait) {
                    Ok(i) => Some(i),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match input_rx.recv() {
                Ok(i) => Some(i),
                Err(_) => return,
            },
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let mut ok = st.handle_input(input);
        // Drain whatever else already queued up before touching the
        // network flush: one flush per writer per *batch* of inputs,
        // not per frame. Bounded so a firehose of input cannot starve
        // the flush (and with it, downstream progress) indefinitely.
        let mut drained = 0;
        while ok && drained < MAX_BATCH_DRAIN {
            match input_rx.try_recv() {
                Ok(input) => {
                    drained += 1;
                    if stop.load(Ordering::Relaxed) {
                        st.flush_writers();
                        return;
                    }
                    ok = st.handle_input(Some(input));
                }
                Err(_) => break,
            }
        }
        st.flush_writers();
        if !ok {
            return;
        }
    }
}

/// Upper bound on inputs coalesced into one write-then-flush batch.
const MAX_BATCH_DRAIN: usize = 256;

/// Whether two messages are the *same* fan-out message, cheaply: field
/// equality, with `Bcast` payloads compared by buffer identity instead
/// of contents. The state machine fans a message out by cloning it per
/// successor (refcounted payload), so identity captures exactly those
/// runs; a false negative merely costs one re-encode.
fn same_message(a: &Message, b: &Message) -> bool {
    match (a, b) {
        (
            Message::Bcast { round: r1, origin: o1, payload: p1 },
            Message::Bcast { round: r2, origin: o2, payload: p2 },
        ) => {
            r1 == r2
                && o1 == o2
                && p1.len() == p2.len()
                && (p1.is_empty() || p1.as_ptr() == p2.as_ptr())
        }
        _ => a == b,
    }
}
