//! Per-server TCP runtime.
//!
//! Thread layout per server (mirroring the paper's libev-based event
//! loop, translated to blocking threads):
//!
//! * **accept** — accepts connections from overlay predecessors; each
//!   accepted connection gets a **reader** thread that decodes frames and
//!   forwards them to the protocol thread;
//! * **protocol** — owns the [`Server`] state machine and the per-link
//!   outbound state to overlay successors; the single consumer of the
//!   input channel, so the state machine needs no locking at all;
//! * **reconnector** (transient) — one short-lived thread per Degraded
//!   outbound link, retrying the connection under
//!   [`crate::link::BackoffPolicy`] and handing the fresh stream back to
//!   the protocol thread;
//! * **heartbeat sender / receiver / FD monitor** — see
//!   [`crate::heartbeat`].
//!
//! Message flow direction matches the overlay: a server *connects out* to
//! its successors (it sends to them) and *accepts in* from its
//! predecessors.
//!
//! # Link resilience
//!
//! Transient link faults are healed below the protocol (they are not
//! process failures — §3, §4.2.2). Each outbound link runs a small state
//! machine:
//!
//! ```text
//!            write/flush error, LinkDown, LinkFlap
//!   Connected ────────────────────────────────────▶ Degraded
//!       ▲                                            │   │
//!       │  reconnect (replay buffered tail in order) │   │ link_grace
//!       └────────────────────────────────────────────┘   │ exhausted
//!                                                        ▼
//!                                                      Down
//! ```
//!
//! While Degraded, outbound frames buffer in a bounded
//! [`crate::link::FrameQueue`] (high/low watermark hysteresis; frames
//! above the high watermark are shed and counted, never stored).
//! Inbound (reader) disconnects get the same grace: suspicion is
//! deferred `link_grace`, and a predecessor reconnecting under the
//! budget cancels it and feeds [`crate::heartbeat::AdaptiveTimeout::
//! report_false_suspicion`] so the FD's timeout adapts — an
//! under-budget link flap causes zero membership removals. Only an
//! outage exceeding the budget escalates to the ◇P suspicion path.

use crate::codec::{
    encode_frame, is_corrupt_frame, read_handshake, write_encoded_frame, write_handshake,
    FrameReader,
};
use crate::heartbeat::{self, AdaptiveTimeout, FdParams, HeartbeatTable};
use crate::link::{connect_with_retry, BackoffPolicy, FrameQueue, LinkStats, LinkStatsSnapshot};
use allconcur_core::config::Config;
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_core::ServerId;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One completed round, as seen by the application.
///
/// Re-exported from `allconcur-core` so every transport shares one
/// outcome type (it used to be defined here).
pub use allconcur_core::delivery::Delivery;

/// Inputs multiplexed into the protocol thread.
enum NodeInput {
    Net {
        from: ServerId,
        msg: Message,
    },
    Broadcast(Bytes),
    Suspect(ServerId),
    SetWindow(usize),
    SetLinkDrop {
        to: ServerId,
        ppm: u32,
    },
    /// Fault injection: flip one bit per sampled outgoing frame to `to`
    /// (parts-per-million, like [`NodeInput::SetLinkDrop`]).
    SetLinkFlip {
        to: ServerId,
        ppm: u32,
    },
    /// A reconnector re-established the outbound link to `to`; `gen`
    /// stamps the Degraded episode it belongs to (stale ones are
    /// discarded).
    WriterUp {
        to: ServerId,
        gen: u64,
        stream: TcpStream,
    },
    /// A predecessor's inbound connection completed its handshake.
    ReaderUp {
        from: ServerId,
    },
    /// A predecessor's inbound connection dropped (EOF/reset).
    ReaderGone {
        from: ServerId,
    },
    /// Fault injection: hold the outbound link to `to` down until
    /// healed by [`NodeInput::LinkUp`].
    LinkDown {
        to: ServerId,
    },
    /// Fault injection: hold the outbound link down for `down_for`,
    /// then auto-heal.
    LinkFlap {
        to: ServerId,
        down_for: Duration,
    },
    /// Fault injection: heal a held-down link.
    LinkUp {
        to: ServerId,
    },
    Shutdown,
}

/// Drop rates are parts-per-million, matching the simulator's fault
/// layer.
const DROP_PPM_SCALE: u64 = 1_000_000;

/// Runtime tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// FD timing.
    pub fd: FdParams,
    /// Escalate a predecessor's TCP disconnect into a suspicion once
    /// the `link_grace` budget expires without a reconnect (sound under
    /// fail-stop because healthy overlay connections are never closed
    /// for long; much faster than waiting `Δ_to` for genuinely dead
    /// peers).
    pub suspect_on_disconnect: bool,
    /// Retry budget while establishing successor connections.
    pub connect_attempts: u32,
    /// Base delay of the capped-exponential connect/reconnect backoff
    /// (see [`BackoffPolicy`]).
    pub connect_backoff: Duration,
    /// Cap on the exponential backoff component.
    pub connect_backoff_cap: Duration,
    /// How long a disconnected link (either direction) may stay in its
    /// grace period before escalating: a Degraded writer drops to Down
    /// and a reader disconnect becomes a suspicion. Under-budget flaps
    /// heal with zero protocol impact.
    pub link_grace: Duration,
    /// High watermark of each Degraded link's bounded frame queue:
    /// above it, new frames are shed (counted) instead of buffered.
    pub link_queue_high: usize,
    /// Low watermark: a saturated queue resumes accepting only after
    /// draining below this (hysteresis).
    pub link_queue_low: usize,
    /// Capacity of the protocol thread's input channel. Readers block
    /// when it fills (TCP backpressure propagates to senders);
    /// [`NodeRuntime::broadcast`] fails fast instead, surfacing
    /// saturation to the application as a typed `Busy` upstream.
    pub input_queue_depth: usize,
    /// How long the protocol thread holds back peers' `BCAST`s for a
    /// round the application has not submitted a payload for yet.
    ///
    /// Without the gate, a peer's round-`r` broadcast racing ahead of the
    /// local `broadcast()` call makes Algorithm 1 line 15 answer with an
    /// *empty* message and silently defers the application's payload to
    /// round `r+1`. Submitting before or promptly after a round opens
    /// (as [`crate::cluster::LocalCluster::run_round`] and the `Cluster`
    /// facade do) never hits the deadline; a server left without a
    /// submission falls back to the empty broadcast after the grace, so
    /// liveness is preserved.
    ///
    /// The gate is **round-aware**: a `BCAST` is held back only while
    /// its round is genuinely unsubmitted — at or past
    /// [`allconcur_core::server::Server::next_unsubmitted_round`], i.e.
    /// the application has neither broadcast nor queued a payload
    /// covering it. Rounds the application already submitted ahead for
    /// (pipelined submissions under a `round_window > 1`) flow through
    /// undelayed, so the grace costs pipelined workloads nothing.
    pub app_grace: Duration,
    /// Round-pipelining window `W` (default 1 — sequential rounds): how
    /// many consecutive rounds each server keeps in flight. Larger
    /// windows let dissemination of round `r + 1` proceed while round
    /// `r` completes, amortising the network round-trip — rounds/sec
    /// scales with `W` until CPU-bound (see the `tcp_rounds` bench).
    pub round_window: usize,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            fd: FdParams::fast(),
            suspect_on_disconnect: true,
            connect_attempts: 100,
            connect_backoff: Duration::from_millis(10),
            connect_backoff_cap: Duration::from_millis(160),
            link_grace: Duration::from_millis(400),
            link_queue_high: 1024,
            link_queue_low: 256,
            input_queue_depth: 4096,
            app_grace: Duration::from_millis(400),
            round_window: 1,
        }
    }
}

/// Handle to a running AllConcur server on real sockets.
pub struct NodeRuntime {
    id: ServerId,
    input_tx: Sender<NodeInput>,
    delivery_rx: Receiver<Delivery>,
    stop: Arc<AtomicBool>,
    stats: Arc<LinkStats>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl NodeRuntime {
    /// Start server `id`. `listener`/`udp` must already be bound;
    /// `tcp_addrs`/`udp_addrs` give every server's addresses (index =
    /// server id).
    pub fn start(
        id: ServerId,
        cfg: Config,
        listener: TcpListener,
        udp: UdpSocket,
        tcp_addrs: Vec<SocketAddr>,
        udp_addrs: Vec<SocketAddr>,
        opts: RuntimeOptions,
    ) -> std::io::Result<NodeRuntime> {
        let stop = Arc::new(AtomicBool::new(false));
        let (input_tx, input_rx) = bounded::<NodeInput>(opts.input_queue_depth.max(8));
        // Deliveries are consumed by the application at its own pace and
        // must never stall the protocol thread mid-round.
        // lint:allow(bounded_queues): delivery backlog is bounded upstream by rsm admission control; blocking the protocol thread on a slow application consumer would deadlock rounds cluster-wide
        let (delivery_tx, delivery_rx) = unbounded::<Delivery>();
        let stats = Arc::new(LinkStats::default());
        let mut threads = Vec::new();

        let graph = cfg.graph.clone();
        let successors: Vec<ServerId> = graph.successors(id).to_vec();
        let predecessors: Vec<ServerId> = graph.predecessors(id).to_vec();

        // --- accept + reader threads -------------------------------------
        listener.set_nonblocking(true)?;
        // On a startup failure after the first thread is running, raise
        // the stop flag so already-spawned threads wind down instead of
        // leaking — the caller gets the io::Error, not a panic.
        let stop_on_err = {
            let stop = stop.clone();
            move |e: std::io::Error| {
                stop.store(true, Ordering::Relaxed);
                e
            }
        };
        {
            let stop = stop.clone();
            let input_tx = input_tx.clone();
            let stats2 = stats.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ac-accept-{id}"))
                    .spawn(move || {
                        let mut readers = Vec::new();
                        while !stop.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    stream.set_nonblocking(false).ok();
                                    let tx = input_tx.clone();
                                    let stop2 = stop.clone();
                                    // A failed reader spawn (thread
                                    // exhaustion) drops the stream; the
                                    // peer sees a disconnect and its FD
                                    // takes over — never a panic here.
                                    if let Ok(r) =
                                        spawn_reader(id, stream, tx, stop2, stats2.clone())
                                    {
                                        readers.push(r);
                                    }
                                }
                                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(_) => break,
                            }
                        }
                        for r in readers {
                            let _ = r.join();
                        }
                    })
                    .map_err(&stop_on_err)?,
            );
        }

        // --- outgoing connections to successors ---------------------------
        let mut links: HashMap<ServerId, OutboundLink> = HashMap::new();
        for &succ in &successors {
            let addr = tcp_addrs[succ as usize];
            let policy = BackoffPolicy::new(
                opts.connect_backoff,
                opts.connect_backoff_cap,
                link_seed(id, succ),
            );
            let stream = connect_with_retry(addr, opts.connect_attempts, &policy)
                .map_err(std::io::Error::from)
                .map_err(&stop_on_err)?;
            stream.set_nodelay(true).ok();
            let mut w = BufWriter::new(stream);
            write_handshake(&mut w, id).map_err(&stop_on_err)?;
            w.flush().map_err(&stop_on_err)?;
            links.insert(
                succ,
                OutboundLink {
                    state: LinkWriter::Connected(w),
                    deadline: None,
                    hold: None,
                    gen: 0,
                },
            );
        }

        // --- failure detector ----------------------------------------------
        // The ◇P recipe (§3.3.2): the suspicion timeout starts at Δ_to
        // and grows on evidence of false suspicion (a link flap healing
        // under grace), capped so genuinely dead peers are still caught.
        let adaptive_cap = opts.fd.timeout.checked_mul(8).unwrap_or(opts.fd.timeout);
        let adaptive = Arc::new(AdaptiveTimeout::new(opts.fd.timeout, adaptive_cap));

        // --- protocol thread ----------------------------------------------
        {
            let st = ProtocolState {
                id,
                server: Server::new(cfg, id),
                links,
                delivery_tx,
                actions: Vec::new(),
                dirty: Vec::new(),
                deferred: std::collections::VecDeque::new(),
                gate_deadline: None,
                app_grace: opts.app_grace,
                drop_ppm: HashMap::new(),
                drop_rng: 0x9e37_79b9_7f4a_7c15 ^ (id as u64 + 1),
                flip_ppm: HashMap::new(),
                flip_rng: 0x6c62_272e_07bb_0142 ^ (id as u64 + 1),
                link_grace: opts.link_grace,
                link_queue_high: opts.link_queue_high,
                link_queue_low: opts.link_queue_low,
                connect_backoff: opts.connect_backoff,
                connect_backoff_cap: opts.connect_backoff_cap,
                suspect_on_disconnect: opts.suspect_on_disconnect,
                tcp_addrs,
                input_tx: input_tx.clone(),
                stop: stop.clone(),
                stats: stats.clone(),
                adaptive: adaptive.clone(),
                reader_counts: HashMap::new(),
                reader_grace: HashMap::new(),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ac-proto-{id}"))
                    .spawn(move || protocol_loop(st, input_rx))
                    .map_err(&stop_on_err)?,
            );
        }

        let hb_table = HeartbeatTable::new(&predecessors);
        let succ_udp: Vec<SocketAddr> = successors.iter().map(|&s| udp_addrs[s as usize]).collect();
        let hb_send_sock = udp.try_clone()?;
        threads.push(
            heartbeat::spawn_sender(hb_send_sock, id, succ_udp, opts.fd, stop.clone())
                .map_err(&stop_on_err)?,
        );
        threads.push(
            heartbeat::spawn_receiver(udp, id, hb_table.clone(), stop.clone())
                .map_err(&stop_on_err)?,
        );
        {
            let tx = input_tx.clone();
            threads.push(
                heartbeat::spawn_monitor(
                    id,
                    hb_table,
                    opts.fd.heartbeat_period / 2,
                    adaptive,
                    stop.clone(),
                    move |s| {
                        let _ = tx.send(NodeInput::Suspect(s));
                    },
                )
                .map_err(&stop_on_err)?,
            );
        }

        Ok(NodeRuntime { id, input_tx, delivery_rx, stop, stats, threads })
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Submit this round's payload for A-broadcast. Returns `false`
    /// when the protocol input queue is saturated (end-to-end
    /// backpressure) — the caller should back off and retry; the
    /// payload was **not** accepted.
    #[must_use = "a false return means the payload was shed, not submitted"]
    pub fn broadcast(&self, payload: Bytes) -> bool {
        // A short patience window absorbs sub-millisecond bursts without
        // turning them into spurious Busy errors; genuine saturation
        // (protocol thread pinned) still fails fast.
        self.input_tx.send_timeout(NodeInput::Broadcast(payload), Duration::from_millis(5)).is_ok()
    }

    /// Blocking receive of the next delivery, with timeout.
    pub fn recv_delivery(&self, timeout: Duration) -> Option<Delivery> {
        self.delivery_rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive of the next delivery.
    pub fn try_recv_delivery(&self) -> Option<Delivery> {
        self.delivery_rx.try_recv().ok()
    }

    /// Inject a failure suspicion, as if the local FD had raised it.
    /// Used by the `Cluster` facade's lifecycle API and by `◇P` tests.
    pub fn inject_suspicion(&self, suspect: ServerId) {
        let _ = self.input_tx.send(NodeInput::Suspect(suspect));
    }

    /// Adjust the round-pipelining window at runtime (applied by the
    /// protocol thread before its next input).
    pub fn set_round_window(&self, window: usize) {
        let _ = self.input_tx.send(NodeInput::SetWindow(window));
    }

    /// Drop outgoing protocol frames to successor `to` with probability
    /// `ppm / 1e6` (`0` clears the fault). The drop happens in the
    /// protocol thread's writer path — the frame is simply never
    /// written — so the TCP connection stays up and UDP heartbeats keep
    /// flowing: this injects *message loss*, not a disconnect, and the
    /// deployment survives it through the overlay's redundant
    /// dissemination paths.
    pub fn set_link_drop(&self, to: ServerId, ppm: u32) {
        let _ = self.input_tx.send(NodeInput::SetLinkDrop { to, ppm });
    }

    /// Corrupt outgoing protocol frames to successor `to` with
    /// probability `ppm / 1e6` (`0` clears the fault): one bit of the
    /// sampled frame's copy is flipped before it is written. The
    /// receiver's CRC check must reject the frame and heal the link —
    /// the flip must never surface as a delivered payload (the
    /// `SilentCorruption` nemesis property).
    pub fn set_link_flip(&self, to: ServerId, ppm: u32) {
        let _ = self.input_tx.send(NodeInput::SetLinkFlip { to, ppm });
    }

    /// Fault injection: sever the outbound link to `to` and hold it
    /// down until [`NodeRuntime::link_up`]. Pending writes are flushed
    /// first (TCP delivers them with the FIN), then outbound frames
    /// buffer in the bounded Degraded queue for replay on heal.
    pub fn link_down(&self, to: ServerId) {
        let _ = self.input_tx.send(NodeInput::LinkDown { to });
    }

    /// Fault injection: like [`NodeRuntime::link_down`], but the link
    /// auto-heals after `down_for`.
    pub fn link_flap(&self, to: ServerId, down_for: Duration) {
        let _ = self.input_tx.send(NodeInput::LinkFlap { to, down_for });
    }

    /// Fault injection: heal a link held down by
    /// [`NodeRuntime::link_down`]/[`NodeRuntime::link_flap`] and start
    /// reconnecting immediately.
    pub fn link_up(&self, to: ServerId) {
        let _ = self.input_tx.send(NodeInput::LinkUp { to });
    }

    /// Point-in-time copy of this runtime's resilience counters.
    pub fn link_stats(&self) -> LinkStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop all threads and close sockets. Used both for graceful
    /// shutdown and to emulate a crash (peers detect via disconnect/FD).
    pub fn shutdown(self) {
        let _ = self.shutdown_and_drain();
    }

    /// Like [`NodeRuntime::shutdown`], but additionally return every
    /// delivery the server produced that the application had not yet
    /// received. Draining happens *after* the protocol thread has
    /// joined, so no completed round can slip away in the teardown
    /// window.
    pub fn shutdown_and_drain(mut self) -> Vec<Delivery> {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.input_tx.send(NodeInput::Shutdown);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let mut drained = Vec::new();
        while let Some(d) = self.try_recv_delivery() {
            drained.push(d);
        }
        drained
    }
}

/// Jitter seed for the `id → to` link's backoff stream: unique per
/// directed link so reconnect storms de-phase.
fn link_seed(id: ServerId, to: ServerId) -> u64 {
    (u64::from(id) << 32) ^ u64::from(to) ^ 0xA5A5_5A5A_D00D_F00D
}

/// Sleep `total` in short slices, returning early when `stop` rises.
fn sleep_polling(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(5);
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(slice));
    }
}

fn spawn_reader(
    id: ServerId,
    mut stream: TcpStream,
    tx: Sender<NodeInput>,
    stop: Arc<AtomicBool>,
    stats: Arc<LinkStats>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new().name(format!("ac-read-{id}")).spawn(move || {
        stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
        let from = loop {
            match read_handshake(&mut stream) {
                Ok(f) => break f,
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        // Register with the protocol thread so a reconnect under grace
        // cancels the pending disconnect suspicion.
        if tx.send(NodeInput::ReaderUp { from }).is_err() {
            return;
        }
        // Buffered frame parsing: one `read` syscall pulls a whole
        // burst of pipelined frames, and a read timeout mid-frame
        // resumes cleanly instead of desynchronising the stream.
        let mut frames = FrameReader::new();
        while !stop.load(Ordering::Relaxed) {
            match frames.read_frame(&mut stream) {
                Ok(Some(msg)) => {
                    if tx.send(NodeInput::Net { from, msg }).is_err() {
                        return;
                    }
                }
                Ok(None) => {} // read timeout: poll the stop flag
                Err(e) => {
                    // A corrupt frame (CRC/decode failure) is a *link*
                    // fault, not a protocol error: count it, then drop
                    // the connection exactly like an EOF — the stream
                    // past a bad frame cannot be trusted to be framed.
                    // Either way the protocol thread starts the
                    // disconnect grace; the peer's reconnect (or our
                    // writer's) heals the link below the protocol, and
                    // only a grace expiry becomes a suspicion.
                    if is_corrupt_frame(&e) {
                        stats.on_corrupt_frame();
                    }
                    if !stop.load(Ordering::Relaxed) {
                        let _ = tx.send(NodeInput::ReaderGone { from });
                    }
                    return;
                }
            }
        }
    })
}

/// Writer half of one outbound link's state machine.
enum LinkWriter {
    /// Healthy: frames go straight to the buffered socket writer.
    Connected(BufWriter<TcpStream>),
    /// Disconnected, within grace (or held by fault injection):
    /// outbound frames buffer (bounded) for replay on reconnect.
    Degraded(FrameQueue),
    /// Grace exhausted: frames are shed; the FD owns the peer's fate.
    Down,
}

/// Fault-injection hold on a link.
enum Hold {
    /// Held until an explicit `LinkUp`.
    Manual,
    /// Held until the instant passes (a flap's auto-heal).
    Until(Instant),
}

/// One outbound link: writer state plus resilience bookkeeping.
struct OutboundLink {
    state: LinkWriter,
    /// Grace deadline while Degraded and actively reconnecting (`None`
    /// while held down by fault injection — held links heal, they do
    /// not expire).
    deadline: Option<Instant>,
    /// Fault-injection hold, if any.
    hold: Option<Hold>,
    /// Episode counter: bumped on every state transition so a stale
    /// reconnector's `WriterUp` from a previous episode is discarded.
    gen: u64,
}

/// Mutable state of one server's protocol thread.
struct ProtocolState {
    id: ServerId,
    server: Server,
    links: HashMap<ServerId, OutboundLink>,
    delivery_tx: Sender<Delivery>,
    actions: Vec<Action>,
    /// Links holding unflushed bytes. Flushed once per drained input
    /// batch ([`ProtocolState::flush_writers`]), not per frame — with
    /// `d` successors and a burst of forwarded messages this collapses
    /// many small `flush` syscalls into one per writer per batch.
    dirty: Vec<ServerId>,
    /// Peer `BCAST`s held back while their round awaits the
    /// application's submission (see [`RuntimeOptions::app_grace`]),
    /// in arrival order.
    deferred: std::collections::VecDeque<(ServerId, Message)>,
    /// When the gate opened; deferred messages are force-released past
    /// this instant.
    gate_deadline: Option<Instant>,
    app_grace: Duration,
    /// Per-successor send-drop rates (parts-per-million) — the writer
    /// path of the nemesis fault surface. Empty in healthy operation.
    drop_ppm: HashMap<ServerId, u32>,
    /// xorshift64* state for drop sampling: deterministic per node,
    /// cheap, and independent of the `rand` crate.
    drop_rng: u64,
    /// Per-successor bit-flip rates (parts-per-million) — the wire
    /// corruption nemesis surface. A sampled frame is copied, one bit
    /// is flipped, and the corrupted copy is sent; the receiver's CRC
    /// must catch it. Empty in healthy operation.
    flip_ppm: HashMap<ServerId, u32>,
    /// xorshift64* state for flip sampling and bit selection, separate
    /// from `drop_rng` so enabling flips does not perturb drop replay.
    flip_rng: u64,
    link_grace: Duration,
    link_queue_high: usize,
    link_queue_low: usize,
    connect_backoff: Duration,
    connect_backoff_cap: Duration,
    suspect_on_disconnect: bool,
    tcp_addrs: Vec<SocketAddr>,
    /// Clone of the runtime's input sender, handed to reconnector
    /// threads. The protocol thread itself never sends on it (that
    /// could deadlock against its own bounded channel); the loop's
    /// bounded `recv_timeout` keeps shutdown live regardless.
    input_tx: Sender<NodeInput>,
    stop: Arc<AtomicBool>,
    stats: Arc<LinkStats>,
    adaptive: Arc<AdaptiveTimeout>,
    /// Live inbound connections per predecessor. A predecessor can
    /// briefly have two (old socket not yet reaped during a reconnect),
    /// so suspicion bookkeeping counts rather than toggles.
    reader_counts: HashMap<ServerId, u32>,
    /// Predecessors whose last inbound connection dropped: suspicion
    /// fires when the deadline passes without a reconnect.
    reader_grace: HashMap<ServerId, Instant>,
}

impl ProtocolState {
    /// Feed one event and act on the outputs. Returns `false` when the
    /// application side hung up. (Payloads submitted beyond the current
    /// round queue inside the state machine and open later rounds by
    /// themselves — the §5 batching flow.)
    fn process(&mut self, event: Event) -> bool {
        self.actions.clear();
        self.server.handle_into(event, &mut self.actions);
        self.write_actions()
    }

    /// Write out sends (encoding each distinct message **once** and
    /// fanning the same refcounted frame to every destination) and
    /// forward deliveries. Writers are only marked dirty here; the
    /// caller flushes them per input batch. Returns `false` when the
    /// application side hung up.
    fn write_actions(&mut self) -> bool {
        // The state machine emits fan-outs as consecutive `Send`s that
        // clone one message, so a one-entry frame cache captures the
        // whole run; a miss just re-encodes.
        let mut frame: Option<(Message, bytes::Bytes)> = None;
        let mut actions = std::mem::take(&mut self.actions);
        let mut hung_up = false;
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    // Injected send-loss: the frame never leaves the
                    // writer path.
                    if let Some(&ppm) = self.drop_ppm.get(&to) {
                        let mut x = self.drop_rng;
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        self.drop_rng = x;
                        if x.wrapping_mul(0x2545_f491_4f6c_dd1d) % DROP_PPM_SCALE < ppm as u64 {
                            continue;
                        }
                    }
                    if !self.links.contains_key(&to) {
                        continue;
                    }
                    let cached = match &frame {
                        Some((m, f)) if same_message(m, &msg) => f.clone(),
                        _ => match encode_frame(&msg) {
                            Ok(f) => {
                                frame = Some((msg, f.clone()));
                                f
                            }
                            Err(_) => continue, // oversized: drop, FD handles the peer
                        },
                    };
                    let outgoing = self.maybe_flip(&to, cached);
                    self.send_frame(to, outgoing);
                }
                Action::Deliver { round, messages } => {
                    if self.delivery_tx.send(Delivery { round, messages }).is_err() {
                        hung_up = true;
                        break;
                    }
                }
            }
        }
        self.actions = actions; // reuse the allocation
        !hung_up
    }

    /// Injected wire corruption: with probability `flip_ppm[to] / 1e6`,
    /// copy the frame and flip one bit at an rng-chosen offset (header
    /// bytes included — a flipped length or checksum must be caught
    /// just like a flipped payload byte). The shared fan-out frame is
    /// never mutated in place; only this destination sees the damage.
    fn maybe_flip(&mut self, to: &ServerId, frame: Bytes) -> Bytes {
        let Some(&ppm) = self.flip_ppm.get(to) else { return frame };
        let mut x = self.flip_rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.flip_rng = x;
        let sample = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        if sample % DROP_PPM_SCALE >= ppm as u64 || frame.is_empty() {
            return frame;
        }
        let bit = (sample >> 24) as usize % (frame.len() * 8);
        let mut corrupted = frame.to_vec();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        Bytes::from(corrupted)
    }

    /// Route one encoded frame through the link's state machine.
    fn send_frame(&mut self, to: ServerId, frame: Bytes) {
        let mut degrade = false;
        let mut shed = false;
        if let Some(link) = self.links.get_mut(&to) {
            match &mut link.state {
                LinkWriter::Connected(w) => {
                    if write_encoded_frame(w, &frame).is_err() {
                        degrade = true;
                    } else if !self.dirty.contains(&to) {
                        self.dirty.push(to);
                    }
                }
                LinkWriter::Degraded(q) => shed = !q.push(frame.clone()),
                LinkWriter::Down => shed = true,
            }
        }
        if degrade {
            // The frame that hit the error replays from its first byte
            // on the fresh connection (the peer discards the partial
            // tail with the dead socket), so it is queued, not lost.
            self.enter_degraded(to, Some(frame));
        }
        if shed {
            self.stats.on_shed(1);
        }
    }

    /// Transition a link into Degraded after a write/flush failure and
    /// start reconnecting (unless fault-held).
    fn enter_degraded(&mut self, to: ServerId, first: Option<Bytes>) {
        let (high, low, grace) = (self.link_queue_high, self.link_queue_low, self.link_grace);
        let mut spawn = false;
        if let Some(link) = self.links.get_mut(&to) {
            let mut q = FrameQueue::new(high, low);
            if let Some(f) = first {
                let _ = q.push(f);
            }
            // Dropping the old writer closes the socket; its unflushed
            // buffer (if any) is the only loss window, equivalent to a
            // transient Drop fault the overlay's redundancy tolerates.
            link.state = LinkWriter::Degraded(q);
            link.gen += 1;
            let held = link.hold.is_some();
            link.deadline = if held { None } else { Some(Instant::now() + grace) };
            spawn = !held;
        }
        self.dirty.retain(|&d| d != to);
        self.stats.on_degraded();
        if spawn {
            self.spawn_reconnector(to);
        }
    }

    /// Detached reconnector for the current Degraded episode of `to`:
    /// capped-exponential retries with per-link deterministic jitter,
    /// handing the fresh stream back as `WriterUp`. Runs past the grace
    /// deadline by one budget of slack — a late success still heals a
    /// link the membership has not removed.
    fn spawn_reconnector(&mut self, to: ServerId) {
        let Some(link) = self.links.get(&to) else { return };
        let gen = link.gen;
        let Some(&addr) = self.tcp_addrs.get(to as usize) else { return };
        let policy = BackoffPolicy::new(
            self.connect_backoff,
            self.connect_backoff_cap,
            link_seed(self.id, to),
        );
        let tx = self.input_tx.clone();
        let stop = self.stop.clone();
        let give_up = Instant::now() + self.link_grace + self.link_grace;
        let id = self.id;
        let _ = std::thread::Builder::new().name(format!("ac-reconn-{id}-{to}")).spawn(move || {
            let mut attempt = 0u32;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(100)) {
                    stream.set_nodelay(true).ok();
                    if write_handshake(&mut (&stream), id).is_ok() {
                        let _ = tx.send(NodeInput::WriterUp { to, gen, stream });
                    }
                    return;
                }
                if Instant::now() >= give_up {
                    return;
                }
                sleep_polling(policy.delay(attempt), &stop);
                attempt = attempt.saturating_add(1);
            }
        });
    }

    /// A reconnector delivered a fresh stream: replay the buffered tail
    /// in order and return to Connected.
    fn on_writer_up(&mut self, to: ServerId, gen: u64, stream: TcpStream) {
        let mut queue = None;
        if let Some(link) = self.links.get_mut(&to) {
            if link.gen != gen {
                return; // stale episode: drop the stream
            }
            let prev = std::mem::replace(&mut link.state, LinkWriter::Down);
            match prev {
                LinkWriter::Degraded(q) => {
                    queue = Some(q);
                    link.gen += 1;
                    link.deadline = None;
                }
                other => {
                    link.state = other;
                    return;
                }
            }
        }
        let Some(mut q) = queue else { return };
        let mut w = BufWriter::new(stream);
        let mut replayed = 0u64;
        let mut connected = true;
        while let Some(f) = q.pop() {
            if write_encoded_frame(&mut w, &f).is_err() {
                // The new connection died mid-replay: back to Degraded
                // with the unwritten tail (including this frame) and
                // another reconnect episode.
                q.push_front(f);
                connected = false;
                break;
            }
            replayed += 1;
        }
        self.stats.on_replayed(replayed);
        if connected {
            if let Some(link) = self.links.get_mut(&to) {
                link.state = LinkWriter::Connected(w);
            }
            self.stats.on_reconnect();
            if !self.dirty.contains(&to) {
                self.dirty.push(to);
            }
        } else {
            let mut retry_grace = false;
            if let Some(link) = self.links.get_mut(&to) {
                link.state = LinkWriter::Degraded(q);
                link.gen += 1;
                let held = link.hold.is_some();
                link.deadline = if held { None } else { Some(Instant::now() + self.link_grace) };
                retry_grace = !held;
            }
            if retry_grace {
                self.spawn_reconnector(to);
            }
        }
    }

    /// Fault injection: hold the link to `to` down. Flushes first so
    /// everything already written rides out with the FIN — an
    /// under-grace hold is lossless end to end.
    fn fault_hold(&mut self, to: ServerId, hold: Hold) {
        let (high, low) = (self.link_queue_high, self.link_queue_low);
        if let Some(link) = self.links.get_mut(&to) {
            match &mut link.state {
                LinkWriter::Connected(w) => {
                    let _ = w.flush();
                    link.state = LinkWriter::Degraded(FrameQueue::new(high, low));
                    link.gen += 1;
                    self.stats.on_degraded();
                }
                LinkWriter::Down => {
                    link.state = LinkWriter::Degraded(FrameQueue::new(high, low));
                    link.gen += 1;
                    self.stats.on_degraded();
                }
                LinkWriter::Degraded(_) => {} // keep the buffered tail
            }
            link.hold = Some(hold);
            link.deadline = None; // held links heal, they do not expire
        }
        self.dirty.retain(|&d| d != to);
    }

    /// Heal a fault-held link: resume the grace clock and reconnect.
    fn heal_link(&mut self, to: ServerId) {
        let grace = self.link_grace;
        let mut spawn = false;
        if let Some(link) = self.links.get_mut(&to) {
            if link.hold.is_none() {
                return;
            }
            link.hold = None;
            match &mut link.state {
                LinkWriter::Degraded(_) => {
                    link.deadline = Some(Instant::now() + grace);
                    spawn = true;
                }
                LinkWriter::Down => {
                    link.state = LinkWriter::Degraded(FrameQueue::new(
                        self.link_queue_high,
                        self.link_queue_low,
                    ));
                    link.gen += 1;
                    link.deadline = Some(Instant::now() + grace);
                    self.stats.on_degraded();
                    spawn = true;
                }
                LinkWriter::Connected(_) => {}
            }
        }
        if spawn {
            self.spawn_reconnector(to);
        }
    }

    /// A predecessor's inbound connection completed its handshake:
    /// cancel any pending disconnect grace — the flap healed, which is
    /// exactly the §3.3.2 false-suspicion evidence the adaptive FD
    /// timeout feeds on.
    fn on_reader_up(&mut self, from: ServerId) {
        *self.reader_counts.entry(from).or_insert(0) += 1;
        if self.reader_grace.remove(&from).is_some() {
            self.stats.on_healed();
            self.adaptive.report_false_suspicion();
        }
    }

    /// A predecessor's inbound connection dropped: when it was the last
    /// one, start the disconnect grace instead of suspecting
    /// immediately. Returns `false` when the app side hung up.
    fn on_reader_gone(&mut self, from: ServerId) -> bool {
        self.stats.on_reader_disconnect();
        let count = self.reader_counts.entry(from).or_insert(0);
        *count = count.saturating_sub(1);
        if *count > 0 {
            return true;
        }
        if self.link_grace.is_zero() {
            // Degenerate configuration: the pre-resilience immediate
            // suspicion path.
            if self.suspect_on_disconnect {
                self.stats.on_suspicion();
                return self.process(Event::Suspect { suspect: from });
            }
            return true;
        }
        self.reader_grace.entry(from).or_insert_with(|| Instant::now() + self.link_grace);
        true
    }

    /// Earliest pending deadline across all timed state: the app-grace
    /// gate, Degraded links' grace, reader disconnect graces, and flap
    /// auto-heals.
    fn next_deadline(&self) -> Option<Instant> {
        let mut next = self.gate_deadline;
        let mut fold = |d: Instant| {
            next = Some(match next {
                Some(n) if n <= d => n,
                _ => d,
            });
        };
        for link in self.links.values() {
            if let Some(d) = link.deadline {
                fold(d);
            }
            if let Some(Hold::Until(t)) = link.hold {
                fold(t);
            }
        }
        for &d in self.reader_grace.values() {
            fold(d);
        }
        next
    }

    /// Fire every deadline that has passed. Returns `false` when the
    /// app side hung up.
    fn on_tick(&mut self) -> bool {
        let now = Instant::now();
        // Flap auto-heals first: a heal and an expiry racing the same
        // tick resolve in the link's favour.
        let heals: Vec<ServerId> = self
            .links
            .iter()
            .filter(|(_, l)| matches!(l.hold, Some(Hold::Until(t)) if t <= now))
            .map(|(&k, _)| k)
            .collect();
        for to in heals {
            self.heal_link(to);
        }
        // Degraded links whose grace ran out drop to Down.
        let expired: Vec<ServerId> = self
            .links
            .iter()
            .filter(|(_, l)| l.deadline.is_some_and(|d| d <= now))
            .map(|(&k, _)| k)
            .collect();
        for to in expired {
            if let Some(link) = self.links.get_mut(&to) {
                let backlog = match &link.state {
                    LinkWriter::Degraded(q) => q.len() as u64,
                    _ => 0,
                };
                link.state = LinkWriter::Down;
                link.deadline = None;
                link.gen += 1;
                self.stats.on_grace_expired();
                if backlog > 0 {
                    self.stats.on_shed(backlog);
                }
            }
        }
        // Reader graces that ran out escalate to the ◇P suspicion path.
        let suspects: Vec<ServerId> =
            self.reader_grace.iter().filter(|(_, &d)| d <= now).map(|(&k, _)| k).collect();
        for from in suspects {
            self.reader_grace.remove(&from);
            if self.suspect_on_disconnect {
                self.stats.on_suspicion();
                if !self.process(Event::Suspect { suspect: from }) {
                    return false;
                }
            }
        }
        // App-grace gate expiry.
        if self.gate_deadline.is_some_and(|d| d <= now) {
            self.gate_deadline = None;
            if !self.release_deferred(true) {
                return false;
            }
        }
        true
    }

    /// Flush every link that buffered bytes since the last flush.
    fn flush_writers(&mut self) {
        for to in std::mem::take(&mut self.dirty) {
            let failed = match self.links.get_mut(&to) {
                Some(OutboundLink { state: LinkWriter::Connected(w), .. }) => w.flush().is_err(),
                _ => false,
            };
            if failed {
                self.enter_degraded(to, None);
            }
        }
    }

    /// Whether `msg` must wait for the application: a `BCAST` belonging
    /// to a round the application has neither broadcast in nor queued a
    /// payload for. Round-aware, so pipelined submissions ahead of the
    /// delivery frontier are never delayed; only genuinely-unsubmitted
    /// rounds sit out the grace.
    fn gated(&self, msg: &Message) -> bool {
        matches!(msg, Message::Bcast { .. }) && msg.round() >= self.server.next_unsubmitted_round()
    }

    /// Feed one multiplexed input. Returns `false` when the loop should
    /// exit (shutdown, or the application side hung up).
    fn handle_input(&mut self, input: NodeInput) -> bool {
        let ok = match input {
            NodeInput::Net { from, msg } => {
                // Defer a BCAST for a round the application has not
                // submitted to yet — and, to preserve **per-link FIFO**,
                // any message arriving behind a deferred one *from the
                // same sender*: the tracking digraphs' edge refutation
                // assumes a notifier's relayed `BCAST` is processed
                // before its `FAIL` on every link (see
                // `allconcur_core::tracking`), so a `FAIL` must never
                // overtake a gated `BCAST` it arrived behind. Messages
                // on *other* links flow through undelayed.
                if self.deferred.iter().any(|&(f, _)| f == from) || self.gated(&msg) {
                    if self.gate_deadline.is_none() {
                        self.gate_deadline = Some(Instant::now() + self.app_grace);
                    }
                    self.deferred.push_back((from, msg));
                    true
                } else {
                    self.process(Event::Receive { from, msg })
                }
            }
            NodeInput::Broadcast(payload) => self.process(Event::ABroadcast(payload)),
            NodeInput::Suspect(s) => {
                // The monitor and disconnect paths can both report the
                // same suspicion; the state machine dedups via F_i, and a
                // suspicion for an already-removed server is a no-op.
                self.process(Event::Suspect { suspect: s })
            }
            NodeInput::SetWindow(w) => {
                self.server.set_round_window(w);
                true
            }
            NodeInput::SetLinkDrop { to, ppm } => {
                if ppm == 0 {
                    self.drop_ppm.remove(&to);
                } else {
                    self.drop_ppm.insert(to, ppm);
                }
                true
            }
            NodeInput::SetLinkFlip { to, ppm } => {
                if ppm == 0 {
                    self.flip_ppm.remove(&to);
                } else {
                    self.flip_ppm.insert(to, ppm);
                }
                true
            }
            NodeInput::WriterUp { to, gen, stream } => {
                self.on_writer_up(to, gen, stream);
                true
            }
            NodeInput::ReaderUp { from } => {
                self.on_reader_up(from);
                true
            }
            NodeInput::ReaderGone { from } => self.on_reader_gone(from),
            NodeInput::LinkDown { to } => {
                self.fault_hold(to, Hold::Manual);
                true
            }
            NodeInput::LinkFlap { to, down_for } => {
                self.fault_hold(to, Hold::Until(Instant::now() + down_for));
                true
            }
            NodeInput::LinkUp { to } => {
                self.heal_link(to);
                true
            }
            NodeInput::Shutdown => return false,
        };
        ok && self.release_deferred(false)
    }

    /// Process every deferred peer message that may be released: one
    /// that is no longer gated (the application submitted its round, or
    /// the window slid past it) *and* has no earlier deferred message
    /// from the same sender — releases preserve per-link FIFO, the
    /// ordering the tracking digraphs' refutation logic depends on.
    /// `force` releases the oldest still-gated message unconditionally —
    /// the grace expired, so the state machine answers with an empty
    /// broadcast (Algorithm 1 line 15) rather than stalling the cluster.
    fn release_deferred(&mut self, mut force: bool) -> bool {
        let mut i = 0;
        while i < self.deferred.len() {
            let from = self.deferred[i].0;
            // Per-link FIFO: an earlier deferred message from the same
            // sender must go first. (The head, i == 0, is never blocked.)
            if self.deferred.iter().take(i).any(|&(f, _)| f == from) {
                i += 1;
                continue;
            }
            if force || !self.gated(&self.deferred[i].1) {
                force = false; // the grace force-releases exactly one
                let Some((from, msg)) = self.deferred.remove(i) else { break };
                if !self.process(Event::Receive { from, msg }) {
                    return false;
                }
                // Processing can open rounds / advance the frontier and
                // ungate earlier-queued messages: re-scan from the front.
                i = 0;
            } else {
                i += 1;
            }
        }
        if self.deferred.is_empty() {
            self.gate_deadline = None;
        } else if self.gate_deadline.is_none() {
            self.gate_deadline = Some(Instant::now() + self.app_grace);
        }
        true
    }
}

/// Upper bound on the idle wait, so the loop re-checks `stop` even when
/// no deadline is pending (the state holds a clone of its own input
/// sender for reconnectors, so channel disconnection alone cannot be
/// relied on to wake it).
const IDLE_POLL: Duration = Duration::from_millis(250);

fn protocol_loop(mut st: ProtocolState, input_rx: Receiver<NodeInput>) {
    loop {
        let wait = match st.next_deadline() {
            Some(d) => d.saturating_duration_since(Instant::now()).min(IDLE_POLL),
            None => IDLE_POLL,
        };
        let input = match input_rx.recv_timeout(wait) {
            Ok(i) => Some(i),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        if st.stop.load(Ordering::Relaxed) {
            return;
        }
        let mut ok = match input {
            Some(i) => st.handle_input(i),
            None => st.on_tick(),
        };
        // Drain whatever else already queued up before touching the
        // network flush: one flush per writer per *batch* of inputs,
        // not per frame. Bounded so a firehose of input cannot starve
        // the flush (and with it, downstream progress) indefinitely.
        let mut drained = 0;
        while ok && drained < MAX_BATCH_DRAIN {
            match input_rx.try_recv() {
                Ok(input) => {
                    drained += 1;
                    if st.stop.load(Ordering::Relaxed) {
                        st.flush_writers();
                        return;
                    }
                    ok = st.handle_input(input);
                }
                Err(_) => break,
            }
        }
        st.flush_writers();
        if !ok {
            return;
        }
    }
}

/// Upper bound on inputs coalesced into one write-then-flush batch.
const MAX_BATCH_DRAIN: usize = 256;

/// Whether two messages are the *same* fan-out message, cheaply: field
/// equality, with `Bcast` payloads compared by buffer identity instead
/// of contents. The state machine fans a message out by cloning it per
/// successor (refcounted payload), so identity captures exactly those
/// runs; a false negative merely costs one re-encode.
fn same_message(a: &Message, b: &Message) -> bool {
    match (a, b) {
        (
            Message::Bcast { round: r1, origin: o1, payload: p1 },
            Message::Bcast { round: r2, origin: o2, payload: p2 },
        ) => {
            r1 == r2
                && o1 == o2
                && p1.len() == p2.len()
                && (p1.is_empty() || p1.as_ptr() == p2.as_ptr())
        }
        _ => a == b,
    }
}
