//! Per-server TCP runtime.
//!
//! Thread layout per server (mirroring the paper's libev-based event
//! loop, translated to blocking threads):
//!
//! * **accept** — accepts connections from overlay predecessors; each
//!   accepted connection gets a **reader** thread that decodes frames and
//!   forwards them to the protocol thread;
//! * **protocol** — owns the [`Server`] state machine and the buffered
//!   writers to overlay successors; the single consumer of the input
//!   channel, so the state machine needs no locking at all;
//! * **heartbeat sender / receiver / FD monitor** — see
//!   [`crate::heartbeat`].
//!
//! Message flow direction matches the overlay: a server *connects out* to
//! its successors (it sends to them) and *accepts in* from its
//! predecessors.

use crate::codec::{read_frame, read_handshake, write_frame, write_handshake};
use crate::heartbeat::{self, FdParams, HeartbeatTable};
use allconcur_core::config::Config;
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_core::{Round, ServerId};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One completed round, as seen by the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The agreed round.
    pub round: Round,
    /// `(origin, payload)` pairs in deterministic order.
    pub messages: Vec<(ServerId, Bytes)>,
}

/// Inputs multiplexed into the protocol thread.
enum NodeInput {
    Net { from: ServerId, msg: Message },
    Broadcast(Bytes),
    Suspect(ServerId),
    Shutdown,
}

/// Runtime tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// FD timing.
    pub fd: FdParams,
    /// Treat a predecessor's TCP disconnect as an immediate suspicion
    /// (faster than waiting `Δ_to`; sound under fail-stop because healthy
    /// overlay connections are never closed).
    pub suspect_on_disconnect: bool,
    /// Retry budget while establishing successor connections.
    pub connect_attempts: u32,
    /// Delay between connection attempts.
    pub connect_backoff: Duration,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            fd: FdParams::fast(),
            suspect_on_disconnect: true,
            connect_attempts: 100,
            connect_backoff: Duration::from_millis(10),
        }
    }
}

/// Handle to a running AllConcur server on real sockets.
pub struct NodeRuntime {
    id: ServerId,
    input_tx: Sender<NodeInput>,
    delivery_rx: Receiver<Delivery>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl NodeRuntime {
    /// Start server `id`. `listener`/`udp` must already be bound;
    /// `tcp_addrs`/`udp_addrs` give every server's addresses (index =
    /// server id).
    pub fn start(
        id: ServerId,
        cfg: Config,
        listener: TcpListener,
        udp: UdpSocket,
        tcp_addrs: Vec<SocketAddr>,
        udp_addrs: Vec<SocketAddr>,
        opts: RuntimeOptions,
    ) -> std::io::Result<NodeRuntime> {
        let stop = Arc::new(AtomicBool::new(false));
        let (input_tx, input_rx) = unbounded::<NodeInput>();
        let (delivery_tx, delivery_rx) = unbounded::<Delivery>();
        let mut threads = Vec::new();

        let graph = cfg.graph.clone();
        let successors: Vec<ServerId> = graph.successors(id).to_vec();
        let predecessors: Vec<ServerId> = graph.predecessors(id).to_vec();

        // --- accept + reader threads -------------------------------------
        listener.set_nonblocking(true)?;
        {
            let stop = stop.clone();
            let input_tx = input_tx.clone();
            let suspect_on_disconnect = opts.suspect_on_disconnect;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ac-accept-{id}"))
                    .spawn(move || {
                        let mut readers = Vec::new();
                        while !stop.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    stream.set_nonblocking(false).ok();
                                    let tx = input_tx.clone();
                                    let stop2 = stop.clone();
                                    readers.push(spawn_reader(
                                        id,
                                        stream,
                                        tx,
                                        stop2,
                                        suspect_on_disconnect,
                                    ));
                                }
                                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(_) => break,
                            }
                        }
                        for r in readers {
                            let _ = r.join();
                        }
                    })
                    .expect("spawn accept thread"),
            );
        }

        // --- outgoing connections to successors ---------------------------
        let mut writers: HashMap<ServerId, BufWriter<TcpStream>> = HashMap::new();
        for &succ in &successors {
            let addr = tcp_addrs[succ as usize];
            let stream = connect_with_retry(addr, opts.connect_attempts, opts.connect_backoff)?;
            stream.set_nodelay(true).ok();
            let mut w = BufWriter::new(stream);
            write_handshake(&mut w, id)?;
            w.flush()?;
            writers.insert(succ, w);
        }

        // --- protocol thread ----------------------------------------------
        {
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ac-proto-{id}"))
                    .spawn(move || {
                        protocol_loop(id, cfg, writers, input_rx, delivery_tx, stop);
                    })
                    .expect("spawn protocol thread"),
            );
        }

        // --- failure detector ----------------------------------------------
        let hb_table = HeartbeatTable::new(&predecessors);
        let succ_udp: Vec<SocketAddr> =
            successors.iter().map(|&s| udp_addrs[s as usize]).collect();
        let hb_send_sock = udp.try_clone()?;
        threads.push(heartbeat::spawn_sender(hb_send_sock, id, succ_udp, opts.fd, stop.clone()));
        threads.push(heartbeat::spawn_receiver(udp, id, hb_table.clone(), stop.clone()));
        {
            let tx = input_tx.clone();
            threads.push(heartbeat::spawn_monitor(id, hb_table, opts.fd, stop.clone(), move |s| {
                let _ = tx.send(NodeInput::Suspect(s));
            }));
        }

        Ok(NodeRuntime { id, input_tx, delivery_rx, stop, threads })
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Submit this round's payload for A-broadcast.
    pub fn broadcast(&self, payload: Bytes) {
        let _ = self.input_tx.send(NodeInput::Broadcast(payload));
    }

    /// Blocking receive of the next delivery, with timeout.
    pub fn recv_delivery(&self, timeout: Duration) -> Option<Delivery> {
        self.delivery_rx.recv_timeout(timeout).ok()
    }

    /// Stop all threads and close sockets. Used both for graceful
    /// shutdown and to emulate a crash (peers detect via disconnect/FD).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.input_tx.send(NodeInput::Shutdown);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn connect_with_retry(
    addr: SocketAddr,
    attempts: u32,
    backoff: Duration,
) -> std::io::Result<TcpStream> {
    let mut last_err = None;
    for _ in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(backoff);
            }
        }
    }
    Err(last_err.expect("at least one attempt"))
}

fn spawn_reader(
    id: ServerId,
    mut stream: TcpStream,
    tx: Sender<NodeInput>,
    stop: Arc<AtomicBool>,
    suspect_on_disconnect: bool,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ac-read-{id}"))
        .spawn(move || {
            stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
            let from = loop {
                match read_handshake(&mut stream) {
                    Ok(f) => break f,
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            };
            while !stop.load(Ordering::Relaxed) {
                match read_frame(&mut stream) {
                    Ok(msg) => {
                        if tx.send(NodeInput::Net { from, msg }).is_err() {
                            return;
                        }
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => {
                        // EOF or reset: the predecessor is gone.
                        if suspect_on_disconnect && !stop.load(Ordering::Relaxed) {
                            let _ = tx.send(NodeInput::Suspect(from));
                        }
                        return;
                    }
                }
            }
        })
        .expect("spawn reader thread")
}

fn protocol_loop(
    id: ServerId,
    cfg: Config,
    mut writers: HashMap<ServerId, BufWriter<TcpStream>>,
    input_rx: Receiver<NodeInput>,
    delivery_tx: Sender<Delivery>,
    stop: Arc<AtomicBool>,
) {
    let mut server = Server::new(cfg, id);
    let mut actions = Vec::new();
    // Payloads that arrived after this round's message already went out
    // (e.g. the server reacted to a peer's BCAST with an empty message —
    // Algorithm 1 line 15). They ride in subsequent rounds, exactly the
    // paper's request-batching flow (§5).
    let mut pending: std::collections::VecDeque<Bytes> = std::collections::VecDeque::new();
    while let Ok(input) = input_rx.recv() {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let event = match input {
            NodeInput::Net { from, msg } => Event::Receive { from, msg },
            NodeInput::Broadcast(payload) => {
                if server.has_broadcast() {
                    pending.push_back(payload);
                    continue;
                }
                Event::ABroadcast(payload)
            }
            NodeInput::Suspect(s) => {
                // The monitor and disconnect paths can both report the
                // same suspicion; the state machine dedups via F_i, and a
                // suspicion for an already-removed server is a no-op.
                Event::Suspect { suspect: s }
            }
            NodeInput::Shutdown => return,
        };
        actions.clear();
        server.handle_into(event, &mut actions);
        if !flush_actions(&mut actions, &mut writers, &delivery_tx) {
            return;
        }
        // If the round advanced and payloads are queued, open the new
        // round with the oldest one (repeat if that completes a round
        // whose peers' messages were already buffered).
        while !server.has_broadcast() {
            let Some(p) = pending.pop_front() else { break };
            actions.clear();
            server.handle_into(Event::ABroadcast(p), &mut actions);
            if !flush_actions(&mut actions, &mut writers, &delivery_tx) {
                return;
            }
        }
    }
}

/// Write out sends (removing broken peers) and forward deliveries.
/// Returns false when the application side hung up.
fn flush_actions(
    actions: &mut Vec<Action>,
    writers: &mut HashMap<ServerId, BufWriter<TcpStream>>,
    delivery_tx: &Sender<Delivery>,
) -> bool {
    let mut dirty: Vec<ServerId> = Vec::new();
    for action in actions.drain(..) {
        match action {
            Action::Send { to, msg } => {
                if let Some(w) = writers.get_mut(&to) {
                    if write_frame(w, &msg).is_err() {
                        writers.remove(&to); // peer gone; FD handles the rest
                    } else if !dirty.contains(&to) {
                        dirty.push(to);
                    }
                }
            }
            Action::Deliver { round, messages } => {
                if delivery_tx.send(Delivery { round, messages }).is_err() {
                    return false;
                }
            }
        }
    }
    for to in &dirty {
        if let Some(w) = writers.get_mut(to) {
            if w.flush().is_err() {
                writers.remove(to);
            }
        }
    }
    true
}
