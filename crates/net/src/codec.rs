//! TCP framing: 4-byte little-endian length prefix + the message encoding
//! from [`allconcur_core::message`], plus the connection handshake (the
//! connecting side announces its server id so the receiver can attribute
//! frames).

use allconcur_core::message::Message;
use allconcur_core::ServerId;
use bytes::Bytes;
use std::io::{self, Read, Write};

/// Maximum accepted frame, guarding against corrupt length prefixes.
/// Large enough for Fig. 10's biggest batch (2¹⁵ × 8 B) with room to
/// spare.
pub const MAX_FRAME: usize = 64 << 20;

/// Encode one message into its wire frame, bounds-checked.
///
/// The frame is refcounted [`Bytes`]: encode once, then hand the same
/// frame to every successor's writer ([`write_encoded_frame`]) — the
/// fan-out path of the protocol loop never re-encodes per destination.
pub fn encode_frame(msg: &Message) -> io::Result<Bytes> {
    if msg.encoded_len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    Ok(msg.to_frame())
}

/// Write one already-encoded frame (from [`encode_frame`]).
pub fn write_encoded_frame<W: Write>(w: &mut W, frame: &Bytes) -> io::Result<()> {
    w.write_all(frame)
}

/// Write one framed message (encode + write in one step; the fan-out
/// hot path uses [`encode_frame`] + [`write_encoded_frame`] instead so
/// one encoding serves all `d` successors).
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    write_encoded_frame(w, &encode_frame(msg)?)
}

/// Read one framed message (blocking).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized frame"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let mut bytes = Bytes::from(buf);
    Message::decode(&mut bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Buffered frame reader for the runtime's per-connection reader
/// threads.
///
/// [`read_frame`] costs two `read` syscalls (length, body) per message;
/// under pipelined rounds a predecessor's link carries dense bursts of
/// small frames, so this reader pulls whole bursts into one buffer with
/// a single syscall and parses frames out of it. It is also safe under
/// read *timeouts*: a `WouldBlock`/`TimedOut` mid-frame keeps the
/// partial bytes buffered and resumes cleanly on the next call —
/// `read_frame` + `read_exact` would desynchronise the stream instead.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

impl FrameReader {
    /// A reader with the default 64 KiB burst buffer.
    pub fn new() -> FrameReader {
        FrameReader { buf: vec![0u8; 64 * 1024], start: 0, end: 0 }
    }

    /// Bytes buffered but not yet parsed.
    fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Read the next frame from `r`. `Ok(Some(msg))` on a complete
    /// frame, `Ok(None)` when the underlying read timed out or would
    /// block (call again later — partial frames stay buffered), `Err`
    /// on EOF, I/O failure, or a corrupt frame.
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> io::Result<Option<Message>> {
        loop {
            if self.buffered() >= 4 {
                // Infallible 4-byte header read: `buffered() >= 4`
                // guarantees the indices, no fallible conversion needed.
                let s = self.start;
                let len_buf = [self.buf[s], self.buf[s + 1], self.buf[s + 2], self.buf[s + 3]];
                let len = u32::from_le_bytes(len_buf) as usize;
                if len > MAX_FRAME {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized frame"));
                }
                if self.buffered() >= 4 + len {
                    let body = &self.buf[self.start + 4..self.start + 4 + len];
                    let mut bytes = Bytes::copy_from_slice(body);
                    self.start += 4 + len;
                    let msg = Message::decode(&mut bytes)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    return Ok(Some(msg));
                }
                // Incomplete frame: make sure it can ever fit.
                if 4 + len > self.buf.len() {
                    self.compact();
                    self.buf.resize(4 + len, 0);
                }
            }
            if self.end == self.buf.len() {
                self.compact();
            }
            match r.read(&mut self.buf[self.end..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))
                }
                Ok(k) => self.end += k,
                Err(ref e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Slide the unparsed tail to the front of the buffer.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
    }
}

/// Handshake sent by the connecting (predecessor) side.
pub fn write_handshake<W: Write>(w: &mut W, id: ServerId) -> io::Result<()> {
    w.write_all(&id.to_le_bytes())
}

/// Handshake read by the accepting (successor) side.
pub fn read_handshake<R: Read>(r: &mut R) -> io::Result<ServerId> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(ServerId::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let msgs = vec![
            Message::Bcast { round: 9, origin: 2, payload: Bytes::from(vec![7u8; 1000]) },
            Message::Fail { round: 9, failed: 1, detector: 3 },
            Message::Fwd { round: 9, origin: 0 },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for m in &msgs {
            assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn encoded_frame_fans_out_identically() {
        // One encode_frame, written to several writers, must decode to
        // the same message on every stream.
        let msg = Message::Bcast { round: 2, origin: 7, payload: Bytes::from(vec![9u8; 128]) };
        let frame = encode_frame(&msg).unwrap();
        let mut wires: Vec<Vec<u8>> = vec![Vec::new(); 3];
        for w in &mut wires {
            write_encoded_frame(w, &frame).unwrap();
        }
        for wire in wires {
            assert_eq!(read_frame(&mut Cursor::new(wire)).unwrap(), msg);
        }
    }

    #[test]
    fn handshake_roundtrip() {
        let mut wire = Vec::new();
        write_handshake(&mut wire, 42).unwrap();
        assert_eq!(read_handshake(&mut Cursor::new(wire)).unwrap(), 42);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut Cursor::new(wire)).is_err());
    }

    /// A reader that hands out bytes in dribbles and injects timeouts,
    /// for the buffered reader's resume-mid-frame path.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        timeout_every: usize,
        reads: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.reads += 1;
            if self.timeout_every > 0 && self.reads.is_multiple_of(self.timeout_every) {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "dribble timeout"));
            }
            let k = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..k].copy_from_slice(&self.data[self.pos..self.pos + k]);
            self.pos += k;
            Ok(k)
        }
    }

    #[test]
    fn frame_reader_parses_bursts_and_survives_midframe_timeouts() {
        let msgs: Vec<Message> = (0..50)
            .map(|i| Message::Bcast {
                round: i,
                origin: (i % 5) as u32,
                payload: Bytes::from(vec![i as u8; (i as usize * 7) % 300]),
            })
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        // 3-byte chunks with a timeout every 4th read: every frame is
        // split mid-length or mid-body many times over.
        let mut src = Dribble { data: wire, pos: 0, chunk: 3, timeout_every: 4, reads: 0 };
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        while out.len() < msgs.len() {
            match reader.read_frame(&mut src).unwrap() {
                Some(m) => out.push(m),
                None => continue, // timeout: partial frame stays buffered
            }
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn frame_reader_grows_for_oversized_payloads() {
        let big = Message::Bcast { round: 1, origin: 0, payload: Bytes::from(vec![3u8; 200_000]) };
        let mut wire = Vec::new();
        write_frame(&mut wire, &big).unwrap();
        let mut cursor = Cursor::new(wire);
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), Some(big));
    }

    #[test]
    fn frame_reader_reports_eof_and_corrupt_lengths() {
        let mut reader = FrameReader::new();
        let mut empty = Cursor::new(Vec::new());
        assert!(reader.read_frame(&mut empty).is_err(), "EOF is an error");
        let mut corrupt = Cursor::new((u32::MAX).to_le_bytes().to_vec());
        let mut reader = FrameReader::new();
        assert!(reader.read_frame(&mut corrupt).is_err(), "oversized length rejected");
    }

    #[test]
    fn truncated_stream_errors() {
        let msg = Message::Bcast { round: 1, origin: 0, payload: Bytes::from(vec![1u8; 64]) };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        wire.truncate(wire.len() - 10);
        assert!(read_frame(&mut Cursor::new(wire)).is_err());
    }
}
