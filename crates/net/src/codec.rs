//! TCP framing: 4-byte little-endian length prefix + the message encoding
//! from [`allconcur_core::message`], plus the connection handshake (the
//! connecting side announces its server id so the receiver can attribute
//! frames).

use allconcur_core::message::Message;
use allconcur_core::ServerId;
use bytes::Bytes;
use std::io::{self, Read, Write};

/// Maximum accepted frame, guarding against corrupt length prefixes.
/// Large enough for Fig. 10's biggest batch (2¹⁵ × 8 B) with room to
/// spare.
pub const MAX_FRAME: usize = 64 << 20;

/// Encode one message into its wire frame, bounds-checked.
///
/// The frame is refcounted [`Bytes`]: encode once, then hand the same
/// frame to every successor's writer ([`write_encoded_frame`]) — the
/// fan-out path of the protocol loop never re-encodes per destination.
pub fn encode_frame(msg: &Message) -> io::Result<Bytes> {
    if msg.encoded_len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    Ok(msg.to_frame())
}

/// Write one already-encoded frame (from [`encode_frame`]).
pub fn write_encoded_frame<W: Write>(w: &mut W, frame: &Bytes) -> io::Result<()> {
    w.write_all(frame)
}

/// Write one framed message (encode + write in one step; the fan-out
/// hot path uses [`encode_frame`] + [`write_encoded_frame`] instead so
/// one encoding serves all `d` successors).
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    write_encoded_frame(w, &encode_frame(msg)?)
}

/// Read one framed message (blocking).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized frame"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let mut bytes = Bytes::from(buf);
    Message::decode(&mut bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Handshake sent by the connecting (predecessor) side.
pub fn write_handshake<W: Write>(w: &mut W, id: ServerId) -> io::Result<()> {
    w.write_all(&id.to_le_bytes())
}

/// Handshake read by the accepting (successor) side.
pub fn read_handshake<R: Read>(r: &mut R) -> io::Result<ServerId> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(ServerId::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let msgs = vec![
            Message::Bcast { round: 9, origin: 2, payload: Bytes::from(vec![7u8; 1000]) },
            Message::Fail { round: 9, failed: 1, detector: 3 },
            Message::Fwd { round: 9, origin: 0 },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for m in &msgs {
            assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn encoded_frame_fans_out_identically() {
        // One encode_frame, written to several writers, must decode to
        // the same message on every stream.
        let msg = Message::Bcast { round: 2, origin: 7, payload: Bytes::from(vec![9u8; 128]) };
        let frame = encode_frame(&msg).unwrap();
        let mut wires: Vec<Vec<u8>> = vec![Vec::new(); 3];
        for w in &mut wires {
            write_encoded_frame(w, &frame).unwrap();
        }
        for wire in wires {
            assert_eq!(read_frame(&mut Cursor::new(wire)).unwrap(), msg);
        }
    }

    #[test]
    fn handshake_roundtrip() {
        let mut wire = Vec::new();
        write_handshake(&mut wire, 42).unwrap();
        assert_eq!(read_handshake(&mut Cursor::new(wire)).unwrap(), 42);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut Cursor::new(wire)).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let msg = Message::Bcast { round: 1, origin: 0, payload: Bytes::from(vec![1u8; 64]) };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        wire.truncate(wire.len() - 10);
        assert!(read_frame(&mut Cursor::new(wire)).is_err());
    }
}
