//! TCP framing, format v2: `len: u32 le`, `crc32(body): u32 le`, then
//! the message encoding from [`allconcur_core::message`] — the same
//! checksummed frame grammar the WAL speaks
//! ([`allconcur_core::wire::put_frame`]) — plus the versioned
//! connection handshake (the connecting side announces the wire format
//! version and its server id so the receiver can attribute frames).
//!
//! The CRC turns a flipped bit on the wire into a *detected* fault: the
//! reader rejects the frame with a typed [`FrameFault`] (distinct from
//! EOF), the runtime counts it in `LinkStats` and drops the connection,
//! and the reader-grace/reconnect path heals the link — the corrupted
//! payload is never delivered to the protocol.

use allconcur_core::message::{CodecError, Message};
use allconcur_core::wire::crc32;
use allconcur_core::ServerId;
use bytes::Bytes;
use std::io::{self, Read, Write};

/// Maximum accepted frame, guarding against corrupt length prefixes.
/// One constant for every checksummed framing path — re-exported from
/// [`allconcur_core::wire`] so the TCP transport and the WAL cannot
/// drift apart.
pub use allconcur_core::wire::MAX_FRAME;

/// Wire format version spoken by this build, carried in the handshake.
/// v1 was the unchecksummed `[len][body]` framing with a bare-id
/// handshake; v2 adds the CRC32 header field and this versioned
/// handshake. There is no v1 interop path — a v1 peer fails the magic
/// check and the connection is retried until both sides run v2.
pub const WIRE_VERSION: u8 = 2;

/// Handshake magic, so a stray (or corrupted) connection cannot be
/// mistaken for a peer speaking an unknown older format.
pub const HANDSHAKE_MAGIC: [u8; 2] = *b"AC";

/// Why an inbound frame (or handshake) was rejected — the typed payload
/// of an `InvalidData` [`io::Error`], distinct from `UnexpectedEof`.
/// Classify with [`frame_fault`] / [`is_corrupt_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameFault {
    /// The body's CRC32 does not match the header — a flipped bit on
    /// the wire (or a desynchronised stream).
    CrcMismatch {
        /// Checksum the header claimed.
        expected: u32,
        /// Checksum the received body actually has.
        actual: u32,
    },
    /// The body passed its CRC but is not a valid message encoding —
    /// a sender-side corruption (flipped before the checksum was
    /// computed) or a protocol bug.
    Decode(CodecError),
    /// The length prefix exceeds [`MAX_FRAME`] — a corrupt header.
    Oversize {
        /// The claimed payload length.
        len: usize,
    },
    /// The connection preamble is not a v2 handshake (bad magic or an
    /// unsupported version byte).
    Handshake {
        /// The 3 preamble bytes received (magic + version).
        got: [u8; 3],
    },
}

impl std::fmt::Display for FrameFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameFault::CrcMismatch { expected, actual } => {
                write!(f, "frame checksum mismatch (header {expected:#010x}, body {actual:#010x})")
            }
            FrameFault::Decode(e) => write!(f, "frame body undecodable: {e}"),
            FrameFault::Oversize { len } => {
                write!(f, "oversized frame ({len} bytes > {MAX_FRAME})")
            }
            FrameFault::Handshake { got } => {
                write!(f, "bad handshake preamble {got:02x?} (want magic {HANDSHAKE_MAGIC:02x?} version {WIRE_VERSION})")
            }
        }
    }
}

impl std::error::Error for FrameFault {}

impl From<FrameFault> for io::Error {
    fn from(fault: FrameFault) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, fault)
    }
}

/// Extract the typed [`FrameFault`] from an I/O error, if it carries
/// one. EOF and transport errors return `None`.
pub fn frame_fault(e: &io::Error) -> Option<&FrameFault> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<FrameFault>())
}

/// Was this read error a *corrupt frame* (CRC mismatch, undecodable
/// body, corrupt length prefix) as opposed to EOF or a transport
/// failure? The runtime feeds these into `LinkStats::corrupt_frames`
/// and heals the link through the reader-grace/reconnect path.
pub fn is_corrupt_frame(e: &io::Error) -> bool {
    frame_fault(e).is_some()
}

/// Encode one message into its wire frame, bounds-checked.
///
/// The frame is refcounted [`Bytes`]: encode once, then hand the same
/// frame to every successor's writer ([`write_encoded_frame`]) — the
/// fan-out path of the protocol loop never re-encodes per destination.
pub fn encode_frame(msg: &Message) -> io::Result<Bytes> {
    if msg.encoded_len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    Ok(msg.to_frame())
}

/// Write one already-encoded frame (from [`encode_frame`]).
pub fn write_encoded_frame<W: Write>(w: &mut W, frame: &Bytes) -> io::Result<()> {
    w.write_all(frame)
}

/// Write one framed message (encode + write in one step; the fan-out
/// hot path uses [`encode_frame`] + [`write_encoded_frame`] instead so
/// one encoding serves all `d` successors).
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    write_encoded_frame(w, &encode_frame(msg)?)
}

/// Verify and decode one complete frame body against its header CRC.
fn decode_checked(body: &[u8], sum: u32) -> io::Result<Message> {
    let actual = crc32(body);
    if actual != sum {
        return Err(FrameFault::CrcMismatch { expected: sum, actual }.into());
    }
    let mut bytes = Bytes::copy_from_slice(body);
    Message::decode(&mut bytes).map_err(|e| FrameFault::Decode(e).into())
}

/// Read one framed message (blocking).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Message> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let sum = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Err(FrameFault::Oversize { len }.into());
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    decode_checked(&buf, sum)
}

/// Buffered frame reader for the runtime's per-connection reader
/// threads.
///
/// [`read_frame`] costs two `read` syscalls (header, body) per message;
/// under pipelined rounds a predecessor's link carries dense bursts of
/// small frames, so this reader pulls whole bursts into one buffer with
/// a single syscall and parses frames out of it. It is also safe under
/// read *timeouts*: a `WouldBlock`/`TimedOut` mid-frame keeps the
/// partial bytes buffered and resumes cleanly on the next call —
/// `read_frame` + `read_exact` would desynchronise the stream instead.
/// Every parsed frame is CRC-checked before its body is decoded.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

/// Wire frame header bytes: length + CRC32.
const HEADER: usize = 8;

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

impl FrameReader {
    /// A reader with the default 64 KiB burst buffer.
    pub fn new() -> FrameReader {
        FrameReader { buf: vec![0u8; 64 * 1024], start: 0, end: 0 }
    }

    /// Bytes buffered but not yet parsed.
    fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Read the next frame from `r`. `Ok(Some(msg))` on a complete,
    /// checksum-verified frame, `Ok(None)` when the underlying read
    /// timed out or would block (call again later — partial frames stay
    /// buffered), `Err` on EOF, I/O failure, or a corrupt frame (the
    /// latter carrying a typed [`FrameFault`]; see [`is_corrupt_frame`]).
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> io::Result<Option<Message>> {
        loop {
            if self.buffered() >= HEADER {
                // Infallible 8-byte header read: `buffered() >= HEADER`
                // guarantees the indices, no fallible conversion needed.
                let s = self.start;
                let len_buf = [self.buf[s], self.buf[s + 1], self.buf[s + 2], self.buf[s + 3]];
                let len = u32::from_le_bytes(len_buf) as usize;
                let sum_buf = [self.buf[s + 4], self.buf[s + 5], self.buf[s + 6], self.buf[s + 7]];
                let sum = u32::from_le_bytes(sum_buf);
                if len > MAX_FRAME {
                    return Err(FrameFault::Oversize { len }.into());
                }
                if self.buffered() >= HEADER + len {
                    let body = &self.buf[self.start + HEADER..self.start + HEADER + len];
                    let msg = decode_checked(body, sum);
                    self.start += HEADER + len;
                    return msg.map(Some);
                }
                // Incomplete frame: make sure it can ever fit.
                if HEADER + len > self.buf.len() {
                    self.compact();
                    self.buf.resize(HEADER + len, 0);
                }
            }
            if self.end == self.buf.len() {
                self.compact();
            }
            match r.read(&mut self.buf[self.end..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))
                }
                Ok(k) => self.end += k,
                Err(ref e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Slide the unparsed tail to the front of the buffer.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
    }
}

/// Handshake sent by the connecting (predecessor) side: magic,
/// wire-format version, then the sender's id. Versioned so a future v3
/// can negotiate instead of desyncing against an old peer.
pub fn write_handshake<W: Write>(w: &mut W, id: ServerId) -> io::Result<()> {
    let mut buf = [0u8; 7];
    buf[..2].copy_from_slice(&HANDSHAKE_MAGIC);
    buf[2] = WIRE_VERSION;
    buf[3..].copy_from_slice(&id.to_le_bytes());
    w.write_all(&buf)
}

/// Handshake read by the accepting (successor) side. Rejects a bad
/// magic or an unsupported version with a typed
/// [`FrameFault::Handshake`].
pub fn read_handshake<R: Read>(r: &mut R) -> io::Result<ServerId> {
    let mut buf = [0u8; 7];
    r.read_exact(&mut buf)?;
    if buf[..2] != HANDSHAKE_MAGIC || buf[2] != WIRE_VERSION {
        return Err(FrameFault::Handshake { got: [buf[0], buf[1], buf[2]] }.into());
    }
    Ok(ServerId::from_le_bytes([buf[3], buf[4], buf[5], buf[6]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let msgs = vec![
            Message::Bcast { round: 9, origin: 2, payload: Bytes::from(vec![7u8; 1000]) },
            Message::Fail { round: 9, failed: 1, detector: 3 },
            Message::Fwd { round: 9, origin: 0 },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for m in &msgs {
            assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn encoded_frame_fans_out_identically() {
        // One encode_frame, written to several writers, must decode to
        // the same message on every stream.
        let msg = Message::Bcast { round: 2, origin: 7, payload: Bytes::from(vec![9u8; 128]) };
        let frame = encode_frame(&msg).unwrap();
        let mut wires: Vec<Vec<u8>> = vec![Vec::new(); 3];
        for w in &mut wires {
            write_encoded_frame(w, &frame).unwrap();
        }
        for wire in wires {
            assert_eq!(read_frame(&mut Cursor::new(wire)).unwrap(), msg);
        }
    }

    #[test]
    fn handshake_roundtrip() {
        let mut wire = Vec::new();
        write_handshake(&mut wire, 42).unwrap();
        assert_eq!(read_handshake(&mut Cursor::new(wire)).unwrap(), 42);
    }

    #[test]
    fn handshake_rejects_v1_and_garbage() {
        // A v1 peer sent a bare 4-byte id; whatever those bytes are,
        // they cannot pass the magic check. (7 zero bytes stands in for
        // the prefix of any v1 stream plus padding.)
        let v1 = [0u8; 7];
        let err = read_handshake(&mut Cursor::new(v1.to_vec())).unwrap_err();
        assert!(matches!(frame_fault(&err), Some(FrameFault::Handshake { .. })));
        // Right magic, wrong version.
        let mut wrong_ver = Vec::new();
        write_handshake(&mut wrong_ver, 3).unwrap();
        wrong_ver[2] = 99;
        let err = read_handshake(&mut Cursor::new(wrong_ver)).unwrap_err();
        assert!(matches!(frame_fault(&err), Some(FrameFault::Handshake { got }) if got[2] == 99));
    }

    #[test]
    fn oversized_frame_rejected_with_typed_fault() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(frame_fault(&err), Some(FrameFault::Oversize { .. })));
        assert!(is_corrupt_frame(&err));
    }

    #[test]
    fn corrupt_body_is_typed_and_distinct_from_eof() {
        let msg = Message::Bcast { round: 4, origin: 1, payload: Bytes::from(vec![5u8; 32]) };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(frame_fault(&err), Some(FrameFault::CrcMismatch { .. })));
        assert!(is_corrupt_frame(&err));
        // EOF carries no FrameFault.
        let eof = read_frame(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(eof.kind(), io::ErrorKind::UnexpectedEof);
        assert!(!is_corrupt_frame(&eof));
    }

    /// A reader that hands out bytes in dribbles and injects timeouts,
    /// for the buffered reader's resume-mid-frame path.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        timeout_every: usize,
        reads: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.reads += 1;
            if self.timeout_every > 0 && self.reads.is_multiple_of(self.timeout_every) {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "dribble timeout"));
            }
            let k = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..k].copy_from_slice(&self.data[self.pos..self.pos + k]);
            self.pos += k;
            Ok(k)
        }
    }

    #[test]
    fn frame_reader_parses_bursts_and_survives_midframe_timeouts() {
        let msgs: Vec<Message> = (0..50)
            .map(|i| Message::Bcast {
                round: i,
                origin: (i % 5) as u32,
                payload: Bytes::from(vec![i as u8; (i as usize * 7) % 300]),
            })
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        // 3-byte chunks with a timeout every 4th read: every frame is
        // split mid-header or mid-body many times over.
        let mut src = Dribble { data: wire, pos: 0, chunk: 3, timeout_every: 4, reads: 0 };
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        while out.len() < msgs.len() {
            match reader.read_frame(&mut src).unwrap() {
                Some(m) => out.push(m),
                None => continue, // timeout: partial frame stays buffered
            }
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn frame_reader_grows_for_oversized_payloads() {
        let big = Message::Bcast { round: 1, origin: 0, payload: Bytes::from(vec![3u8; 200_000]) };
        let mut wire = Vec::new();
        write_frame(&mut wire, &big).unwrap();
        let mut cursor = Cursor::new(wire);
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), Some(big));
    }

    #[test]
    fn frame_reader_reports_eof_and_corrupt_lengths() {
        let mut reader = FrameReader::new();
        let mut empty = Cursor::new(Vec::new());
        assert!(reader.read_frame(&mut empty).is_err(), "EOF is an error");
        let mut corrupt = Cursor::new([0xFFu8; 8].to_vec());
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut corrupt).unwrap_err();
        assert!(matches!(frame_fault(&err), Some(FrameFault::Oversize { .. })));
    }

    #[test]
    fn frame_reader_detects_flipped_bit() {
        let msg = Message::Bcast { round: 6, origin: 2, payload: Bytes::from(vec![1u8; 48]) };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x10;
        let mut reader = FrameReader::new();
        let err = reader.read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert!(is_corrupt_frame(&err), "flipped bit must classify as corrupt, got {err}");
    }

    #[test]
    fn truncated_stream_errors() {
        let msg = Message::Bcast { round: 1, origin: 0, payload: Bytes::from(vec![1u8; 64]) };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        wire.truncate(wire.len() - 10);
        assert!(read_frame(&mut Cursor::new(wire)).is_err());
    }
}
