//! TCP framing: 4-byte little-endian length prefix + the message encoding
//! from [`allconcur_core::message`], plus the connection handshake (the
//! connecting side announces its server id so the receiver can attribute
//! frames).

use allconcur_core::message::Message;
use allconcur_core::ServerId;
use bytes::{Bytes, BytesMut};
use std::io::{self, Read, Write};

/// Maximum accepted frame, guarding against corrupt length prefixes.
/// Large enough for Fig. 10's biggest batch (2¹⁵ × 8 B) with room to
/// spare.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one framed message.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    let len = msg.encoded_len();
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    let mut buf = BytesMut::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    msg.encode(&mut buf);
    w.write_all(&buf)
}

/// Read one framed message (blocking).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized frame"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let mut bytes = Bytes::from(buf);
    Message::decode(&mut bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Handshake sent by the connecting (predecessor) side.
pub fn write_handshake<W: Write>(w: &mut W, id: ServerId) -> io::Result<()> {
    w.write_all(&id.to_le_bytes())
}

/// Handshake read by the accepting (successor) side.
pub fn read_handshake<R: Read>(r: &mut R) -> io::Result<ServerId> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(ServerId::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let msgs = vec![
            Message::Bcast { round: 9, origin: 2, payload: Bytes::from(vec![7u8; 1000]) },
            Message::Fail { round: 9, failed: 1, detector: 3 },
            Message::Fwd { round: 9, origin: 0 },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for m in &msgs {
            assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn handshake_roundtrip() {
        let mut wire = Vec::new();
        write_handshake(&mut wire, 42).unwrap();
        assert_eq!(read_handshake(&mut Cursor::new(wire)).unwrap(), 42);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut Cursor::new(wire)).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let msg = Message::Bcast { round: 1, origin: 0, payload: Bytes::from(vec![1u8; 64]) };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        wire.truncate(wire.len() - 10);
        assert!(read_frame(&mut Cursor::new(wire)).is_err());
    }
}
